"""Benchmark: regenerate Figure 8 — limiting application characteristics."""

from repro.analysis.experiments import run_figure8
from repro.core.taxonomy import (
    EVALUATED_SCHEMES,
    MULTI_T_MV_FMM,
    limiting_characteristics,
)


def test_figure8(benchmark, save_output):
    result = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    save_output("figure8", result.render())
    assert all(limiting_characteristics(s) for s in EVALUATED_SCHEMES
               if s is not None)
    assert len(limiting_characteristics(MULTI_T_MV_FMM)) == 1
