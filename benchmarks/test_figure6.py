"""Benchmark: regenerate Figure 6 — execution vs commit wavefronts."""

from repro.analysis.experiments import run_figure6


def test_figure6(benchmark, save_output):
    result = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    save_output("figure6", result.render())

    def total(name):
        _i, t, _n = result.timelines[name]
        return t

    # Laziness removes the commit wavefront from the critical path.
    assert total("MultiT&MV Lazy AMM") < total("MultiT&MV Eager AMM")
    assert total("SingleT Lazy AMM") < total("SingleT Eager AMM")
