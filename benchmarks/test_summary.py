"""Benchmark: regenerate the Section 5.4 headline averages."""

from repro.analysis.experiments import run_summary


def test_summary(benchmark, ctx, save_output):
    result = benchmark.pedantic(run_summary, args=(ctx,),
                                rounds=1, iterations=1)
    save_output("summary", result.render())
    measured = {claim: value for claim, _paper, value in result.rows}
    # Upgrade-path headline: multiple tasks&versions is the biggest single
    # win on both machines.
    assert measured["NUMA: MultiT&MV vs SingleT (Eager)"] > 0.25
    assert measured["CMP: MultiT&MV vs SingleT (Eager)"] > 0.15
    # Laziness matters on the NUMA machine, much less on the CMP.
    assert measured["NUMA: laziness for MultiT&MV"] > 0.12
    assert (measured["CMP: laziness for MultiT&MV"]
            < measured["NUMA: laziness for MultiT&MV"] / 2)
    # Software logging costs a few percent (paper: 6%).
    assert 0.02 < measured["NUMA: FMM.Sw overhead over FMM"] < 0.12
