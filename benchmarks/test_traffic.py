"""Benchmark: protocol traffic per committed task under each merge policy.

Beyond the paper's figures: quantifies how the merge policy redistributes
memory-system traffic. Eager pushes every dirty line through the
token-holding commit; Lazy combines superseded versions through the VCL
(fewer, larger merge transactions); FMM displaces freely under MTID.
"""

from repro.analysis.experiments import run_traffic


def test_traffic(benchmark, ctx, save_output):
    result = benchmark.pedantic(run_traffic, args=(ctx,),
                                rounds=1, iterations=1)
    save_output("traffic", result.render())

    def cell(app, scheme_name):
        for row in result.rows:
            if row[0] == app and row[1] == scheme_name:
                return row
        raise AssertionError(f"missing {app}/{scheme_name}")

    for app in ("Bdna", "Apsi"):
        eager = cell(app, "MultiT&MV Eager AMM")
        lazy = cell(app, "MultiT&MV Lazy AMM")
        # The VCL only exists under Lazy AMM...
        assert lazy[5] > 0 and eager[5] == 0
        # ...and its combining makes Lazy move fewer write-back messages
        # than Eager for multi-version (privatization) footprints.
        assert lazy[4] + lazy[5] < eager[4]
