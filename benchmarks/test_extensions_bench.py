"""Benchmarks for the extension features beyond the paper's base protocol.

* **Contention sweep** — memory-bank occupancy vs runtime: the latency-only
  model (the default) is the zero-service point of a continuum.
* **ORB vs write-back eager commit** — the Section 4.1 footnote's
  alternative merge mechanism: ownership requests shrink the commit
  wavefront and thus the Eager/Lazy gap.
* **High-Level Access Patterns** — [16]'s compiler-assisted support that
  the paper's base protocol deliberately omits: declared-private writes
  skip the stale-version fetch, which mostly benefits the
  privatization-heavy applications.
* **Chunk-size sweep** — iterations per task trade commit amortization
  against load imbalance and squash cost.
"""

from dataclasses import replace

from repro.analysis.report import render_table
from repro.core.config import NUMA_16
from repro.core.engine import Simulation, simulate
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_LAZY,
)
from repro.workloads.apps import APPLICATION_ORDER, APPLICATIONS

SCALE = 0.5


def _hotspot_workload(n_tasks: int = 48, reads: int = 24):
    """Every task streams reads through lines homed on node 0 — the
    worst case for a single memory/directory bank."""
    from repro.tls.task import OP_COMPUTE, OP_READ, TaskSpec
    from repro.workloads.base import Workload

    tasks = []
    for tid in range(n_tasks):
        ops = [(OP_COMPUTE, 400)]
        for j in range(reads):
            # Distinct lines, all with line_addr % 16 == 0 (home node 0).
            line = (tid * reads + j) * 16
            ops.append((OP_READ, line * 16))
            ops.append((OP_COMPUTE, 200))
        tasks.append(TaskSpec(task_id=tid, ops=tuple(ops)))
    return Workload(name="hotspot", tasks=tuple(tasks))


def test_contention_sweep(benchmark, save_output):
    services = (0, 30, 90)

    def sweep():
        hotspot = _hotspot_workload()
        bdna = APPLICATIONS["Bdna"].generate(scale=SCALE)
        rows = []
        for service in services:
            machine = NUMA_16.with_costs(
                replace(NUMA_16.costs, memory_bank_service=service))
            hot = simulate(machine, MULTI_T_MV_LAZY, hotspot)
            spread = simulate(machine, MULTI_T_MV_LAZY, bdna)
            rows.append((service, hot.total_cycles, spread.total_cycles))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_contention", render_table(
        ["bank service (cyc)", "hotspot workload (cyc)",
         "Bdna, 16-bank spread (cyc)"],
        rows,
        title=("Ablation: memory-bank contention — a single-bank hotspot "
               "queues hard; real applications spread over 16 banks"),
    ))
    hotspot_times = [row[1] for row in rows]
    spread_times = [row[2] for row in rows]
    assert hotspot_times == sorted(hotspot_times)
    assert hotspot_times[-1] > 1.3 * hotspot_times[0]
    # Interleaved (16-bank) traffic barely notices the same service time.
    spread_change = abs(spread_times[-1] / spread_times[0] - 1)
    hot_change = hotspot_times[-1] / hotspot_times[0] - 1
    assert spread_change < hot_change / 3


def test_orb_commit(benchmark, save_output):
    def sweep():
        rows = []
        orb_machine = NUMA_16.with_costs(
            replace(NUMA_16.costs, eager_commit_mode="orb"))
        for app in ("Apsi", "Track", "Euler"):
            workload = APPLICATIONS[app].generate(scale=SCALE)
            writeback = simulate(NUMA_16, MULTI_T_MV_EAGER, workload)
            orb = simulate(orb_machine, MULTI_T_MV_EAGER, workload)
            lazy = simulate(NUMA_16, MULTI_T_MV_LAZY, workload)
            rows.append((app, writeback.total_cycles, orb.total_cycles,
                         lazy.total_cycles,
                         1 - orb.total_cycles / writeback.total_cycles))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_orb", render_table(
        ["App", "Eager write-back", "Eager ORB", "Lazy", "ORB gain"],
        rows,
        title=("Ablation: ORB ownership-request commit vs write-back "
               "(MultiT&MV)"),
    ))
    for _app, writeback, orb, lazy, _gain in rows:
        # ORB sits between plain eager write-back and full laziness.
        assert lazy <= orb <= writeback


def test_high_level_patterns(benchmark, save_output):
    def sweep():
        rows = []
        for app in APPLICATION_ORDER:
            workload = APPLICATIONS[app].generate(scale=SCALE)
            base = Simulation(NUMA_16, MULTI_T_MV_LAZY, workload).run()
            hlap = Simulation(NUMA_16, MULTI_T_MV_LAZY, workload,
                              high_level_patterns=True).run()
            rows.append((app, base.total_cycles, hlap.total_cycles,
                         1 - hlap.total_cycles / base.total_cycles,
                         f"{base.priv_footprint_fraction:.0%}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_hlap", render_table(
        ["App", "base (cyc)", "HLAP (cyc)", "gain", "priv share"],
        rows,
        title=("Ablation: High-Level Access Patterns support "
               "(MultiT&MV Lazy AMM)"),
    ))
    gains = {row[0]: row[3] for row in rows}
    # HLAP pays off on the privatization applications...
    for app in ("Tree", "Bdna", "Apsi"):
        assert gains[app] > 0.03
    # ...and is near-neutral where there is nothing to declare private.
    for app in ("Track", "Dsmc3d", "Euler"):
        assert abs(gains[app]) < 0.05


def test_chunk_size_sweep(benchmark, save_output):
    chunk_factors = (0.5, 1.0, 2.0, 4.0)

    def sweep():
        rows = []
        for factor in chunk_factors:
            workload = APPLICATIONS["Euler"].generate(
                scale=SCALE, iterations_per_task=factor)
            result = simulate(NUMA_16, MULTI_T_MV_EAGER, workload)
            rows.append((factor, workload.n_tasks,
                         result.total_cycles,
                         result.commit_exec_ratio(),
                         result.squashed_executions))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_chunking", render_table(
        ["iterations/task (rel)", "tasks", "total cycles",
         "commit/exec", "squashed"],
        rows,
        title="Ablation: task chunking on Euler (MultiT&MV Eager)",
    ))
    # Bigger chunks amortize per-task commit overheads: the end-to-end
    # commit token traffic shrinks with the task count.
    assert rows[0][1] > rows[-1][1]
