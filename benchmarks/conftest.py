"""Shared context for the benchmark suite.

Each benchmark regenerates one table or figure of the paper at full
workload scale, prints the rendered rows/series, and saves them under
``benchmarks/output/``. Simulation results are cached in a session-scoped
:class:`~repro.analysis.experiments.ExperimentContext`, so composite
figures (9, 10, 11, summary) share runs instead of repeating them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentContext

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """Full-scale experiment context shared by all benchmarks."""
    return ExperimentContext(scale=1.0, seed=0)


@pytest.fixture(scope="session")
def save_output():
    """Persist a rendered table/figure and echo it to stdout."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def save_svg_figure():
    """Render a SchemeBarsResult to an SVG artifact in the output dir."""
    from repro.analysis.svgplot import save_svg, scheme_bars_to_svg

    OUTPUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, bars_result) -> None:
        save_svg(scheme_bars_to_svg(bars_result),
                 str(OUTPUT_DIR / f"{name}.svg"))

    return _save
