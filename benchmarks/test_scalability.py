"""Benchmark: scheme scalability with processor count.

Extends the paper's two machine sizes to a sweep: the value of the
taxonomy's upgrades grows with the machine, because the serialized commit
wavefront and the SingleT token wait both scale with the processor count
while Lazy MultiT&MV removes them from the critical path.
"""

from repro.analysis.experiments import run_scalability
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_LAZY,
    SINGLE_T_EAGER,
)


def test_scalability(benchmark, ctx, save_output):
    result = benchmark.pedantic(run_scalability, args=(ctx,),
                                rounds=1, iterations=1)
    save_output("scalability", result.render())
    singlet = result.curves[SINGLE_T_EAGER.name]
    mv_eager = result.curves[MULTI_T_MV_EAGER.name]
    mv_lazy = result.curves[MULTI_T_MV_LAZY.name]

    # At every size, the upgrade path is ordered.
    for s, e, l in zip(singlet, mv_eager, mv_lazy):
        assert s <= e * 1.05
        assert e <= l * 1.05

    # Lazy MultiT&MV keeps gaining from 8 to 32 processors...
    assert mv_lazy[-1] > 1.3 * mv_lazy[1]
    # ...while SingleT has saturated (commit token serialization).
    assert singlet[-1] < 1.3 * singlet[1]
    # The gap widens with machine size (the paper's NUMA>CMP observation).
    assert (mv_lazy[-1] / singlet[-1]) > (mv_lazy[0] / singlet[0])
