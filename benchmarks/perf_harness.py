#!/usr/bin/env python
"""Perf harness wrapper: ``python benchmarks/perf_harness.py [--smoke]``.

Thin front-end over :mod:`repro.runner.bench` (the same harness exposed
as ``repro-tls bench``): measures engine events/second and the canonical
Figure-9 sweep wall-clock (serial cold, parallel cold, warm cache),
probes cross-mode determinism, and writes ``BENCH_sweep.json``.

``--check-floor`` turns the run into the CI perf gate: the process exits
non-zero when engine throughput falls below the committed regression
floor (seed baseline minus 10%). ``--profile`` skips the bench and
writes a cProfile listing of one representative cell instead.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runner.bench import (  # noqa: E402
    profile_engine,
    render_report,
    run_bench,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small workloads; finishes in well under 30s")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: os.cpu_count())")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default="BENCH_sweep.json")
    parser.add_argument("--check-floor", action="store_true",
                        help="exit non-zero if engine events/sec falls "
                             "below the committed regression floor")
    parser.add_argument("--compare-kernel", action="store_true",
                        help="also run the engine grid on both drain-loop "
                             "legs (reference vs REPRO_TLS_KERNEL) and exit "
                             "non-zero unless they are byte-identical")
    parser.add_argument("--profile", action="store_true",
                        help="skip the bench; cProfile one representative "
                             "cell and write the top-30 listings "
                             "(cumulative and tottime)")
    parser.add_argument("--profile-output", default="docs/report/profile.txt")
    args = parser.parse_args()

    if args.profile:
        listing = profile_engine(output=args.profile_output)
        print(listing.splitlines()[0])
        print(f"profile written to {args.profile_output}")
        return 0

    report = run_bench(smoke=args.smoke, jobs=args.jobs, seed=args.seed,
                       output=args.output,
                       kernel_compare=args.compare_kernel)
    print(render_report(report))
    if not report["determinism"]["bit_identical"]:
        return 1
    if args.check_floor and not report["floor"]["passed"]:
        return 1
    if (args.compare_kernel
            and not report["kernel_compare"]["byte_identical"]):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
