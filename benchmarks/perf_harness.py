#!/usr/bin/env python
"""Perf harness wrapper: ``python benchmarks/perf_harness.py [--smoke]``.

Thin front-end over :mod:`repro.runner.bench` (the same harness exposed
as ``repro-tls bench``): measures engine events/second and the canonical
Figure-9 sweep wall-clock (serial cold, parallel cold, warm cache),
probes cross-mode determinism, and writes ``BENCH_sweep.json``.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runner.bench import render_report, run_bench  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small workloads; finishes in well under 30s")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: os.cpu_count())")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default="BENCH_sweep.json")
    args = parser.parse_args()

    report = run_bench(smoke=args.smoke, jobs=args.jobs, seed=args.seed,
                       output=args.output)
    print(render_report(report))
    return 0 if report["determinism"]["bit_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
