"""Benchmark: seed robustness of the headline conclusions.

The paper reports single (deterministic) simulations; our workloads are
synthetic, so the reproduction additionally checks that the headline
directions survive regenerating every reference stream from different
seeds — i.e., the conclusions are properties of the calibrated
characteristics, not of one particular random stream.
"""

from repro.analysis.report import render_table
from repro.analysis.stats import reduction_over_seeds
from repro.core.config import NUMA_16
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_LAZY,
    SINGLE_T_EAGER,
    SINGLE_T_LAZY,
)

SEEDS = (0, 1, 2)
SCALE = 0.5

#: (claim, app, faster scheme, reference scheme) — per-app headline
#: directions that must hold for every seed.
CLAIMS = (
    ("MultiT&MV beats SingleT on P3m", "P3m",
     MULTI_T_MV_EAGER, SINGLE_T_EAGER),
    ("MultiT&MV beats SingleT on Tree", "Tree",
     MULTI_T_MV_EAGER, SINGLE_T_EAGER),
    ("Laziness helps SingleT on Apsi", "Apsi",
     SINGLE_T_LAZY, SINGLE_T_EAGER),
    ("Laziness helps SingleT on Track", "Track",
     SINGLE_T_LAZY, SINGLE_T_EAGER),
    ("Laziness helps MultiT&MV on Euler", "Euler",
     MULTI_T_MV_LAZY, MULTI_T_MV_EAGER),
)


def test_seed_robustness(benchmark, save_output):
    def sweep():
        rows = []
        for claim, app, faster, reference in CLAIMS:
            stats = reduction_over_seeds(NUMA_16, faster, reference, app,
                                         seeds=SEEDS, scale=SCALE)
            rows.append((claim, f"{stats.mean:.1%}", f"{stats.std:.1%}",
                         f"{stats.minimum:.1%}", stats))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("robustness", render_table(
        ["Claim", "mean reduction", "std", "min over seeds"],
        [row[:4] for row in rows],
        title=(f"Seed robustness of headline directions "
               f"(seeds {SEEDS}, scale {SCALE})"),
    ))
    for claim, _mean, _std, _min, stats in rows:
        assert stats.all_positive(), f"{claim} flipped sign for some seed"
