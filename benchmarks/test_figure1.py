"""Benchmark: regenerate Figure 1-(a) — application buffering behaviour."""

from repro.analysis.experiments import run_figure1


def test_figure1(benchmark, ctx, save_output):
    result = benchmark.pedantic(run_figure1, args=(ctx,),
                                rounds=1, iterations=1)
    save_output("figure1", result.render())
    by_app = {row[0]: row for row in result.rows}
    # P3m buffers by far the most speculative tasks (paper: 800 vs 17-29).
    others = [row[1] for app, row in by_app.items() if app != "P3m"]
    assert by_app["P3m"][1] > 2 * max(others)
    # Privatization dominates Tree/Bdna footprints, is absent in Track.
    assert by_app["Tree"][4] > 0.95 and by_app["Bdna"][4] > 0.95
    assert by_app["Track"][4] < 0.05
