"""Benchmark: regenerate Figure 9 — the six AMM schemes on the CC-NUMA.

Shape assertions follow Section 5.1/5.2: MultiT&MV beats SingleT (most for
the imbalanced P3m), MultiT&SV forfeits the gain on privatization-heavy
applications, and laziness helps exactly where the commit wavefront sits in
the critical path.
"""

from repro.analysis.experiments import run_figure9
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_LAZY,
    MULTI_T_SV_EAGER,
    MULTI_T_SV_LAZY,
    SINGLE_T_EAGER,
    SINGLE_T_LAZY,
)


def test_figure9(benchmark, ctx, save_output, save_svg_figure):
    result = benchmark.pedantic(run_figure9, args=(ctx,),
                                rounds=1, iterations=1)
    save_output("figure9", result.render())
    save_svg_figure("figure9", result)

    def norm(app, scheme):
        return result.cells[app][scheme.name][0]

    # MultiT&MV's biggest win is the load-imbalanced P3m (paper: 1.6->3.4).
    assert norm("P3m", MULTI_T_MV_EAGER) < 0.7

    # MultiT&SV ~= MultiT&MV without privatization patterns.
    for app in ("Track", "Dsmc3d", "Euler"):
        ratio = norm(app, MULTI_T_SV_EAGER) / norm(app, MULTI_T_MV_EAGER)
        assert 0.9 < ratio < 1.1

    # MultiT&SV is no better than SingleT when privatization dominates
    # (the paper even measures it slower for Tree, Bdna, Apsi).
    for app in ("Tree", "Bdna", "Apsi"):
        assert norm(app, MULTI_T_SV_EAGER) > 1.2 * norm(app, MULTI_T_MV_EAGER)

    # Laziness speeds up SingleT for the significant-C/E applications...
    for app in ("Bdna", "Apsi", "Track", "Euler"):
        assert norm(app, SINGLE_T_LAZY) < norm(app, SINGLE_T_EAGER)
    # ...and MultiT&MV for the high-C/E ones (Apsi, Track, Euler).
    for app in ("Apsi", "Track", "Euler"):
        assert norm(app, MULTI_T_MV_LAZY) < 0.92 * norm(app, MULTI_T_MV_EAGER)

    # Paper headline: MultiT&MV cuts average time ~32% vs SingleT Eager.
    mv_gain = result.average_reduction(MULTI_T_MV_EAGER, SINGLE_T_EAGER)
    assert 0.25 < mv_gain < 0.50

    # Laziness for the simpler schemes averages ~30%.
    simple_gain = (result.average_reduction(SINGLE_T_LAZY, SINGLE_T_EAGER)
                   + result.average_reduction(MULTI_T_SV_LAZY,
                                              MULTI_T_SV_EAGER)) / 2
    assert 0.20 < simple_gain < 0.42

    # Laziness on top of MultiT&MV averages ~24% (nearly additive).
    lazy_gain = result.average_reduction(MULTI_T_MV_LAZY, MULTI_T_MV_EAGER)
    assert 0.12 < lazy_gain < 0.35
