"""Benchmark: regenerate Figure 5 — SingleT vs MultiT&SV vs MultiT&MV."""

from repro.analysis.experiments import run_figure5


def test_figure5(benchmark, save_output):
    result = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    save_output("figure5", result.render())
    totals = result.total_cycles
    # The paper's ordering: MV finishes first, SingleT last or tied with SV.
    assert totals["MultiT&MV Eager AMM"] < totals["MultiT&SV Eager AMM"]
    assert totals["MultiT&MV Eager AMM"] < totals["SingleT Eager AMM"]
