"""Benchmark: word- vs line-granularity violation detection.

The paper's base protocol "triggers squashes only on out-of-order RAWs to
the same word". This ablation quantifies what that buys: under
line-granularity tracking (the cheaper hardware most early TLS designs
used), false sharing inside the privatization lines causes spurious
squashes that word-level tracking avoids entirely.
"""

from repro.analysis.report import render_table
from repro.core.config import NUMA_16
from repro.core.engine import Simulation
from repro.core.taxonomy import MULTI_T_MV_LAZY
from repro.workloads.apps import APPLICATION_ORDER, APPLICATIONS

SCALE = 0.5


def test_granularity(benchmark, save_output):
    def sweep():
        rows = []
        for app in APPLICATION_ORDER:
            workload = APPLICATIONS[app].generate(scale=SCALE)
            word = Simulation(NUMA_16, MULTI_T_MV_LAZY, workload,
                              violation_granularity="word").run()
            line = Simulation(NUMA_16, MULTI_T_MV_LAZY, workload,
                              violation_granularity="line").run()
            rows.append((
                app,
                word.violation_events, line.violation_events,
                word.squashed_executions, line.squashed_executions,
                line.total_cycles / word.total_cycles,
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_granularity", render_table(
        ["App", "violations (word)", "violations (line)",
         "squashed (word)", "squashed (line)", "line/word time"],
        rows,
        title=("Ablation: word- vs line-granularity violation detection "
               "(MultiT&MV Lazy AMM)"),
    ))
    # Line granularity never detects fewer violations than word.
    for _app, word_v, line_v, _ws, _ls, _ratio in rows:
        assert line_v >= word_v
    # Across the suite, line granularity costs extra squashes somewhere.
    assert sum(r[4] for r in rows) >= sum(r[3] for r in rows)
