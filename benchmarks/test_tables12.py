"""Benchmark: regenerate Tables 1 and 2 — supports and upgrade path."""

from repro.analysis.experiments import run_tables12
from repro.core.supports import complexity_score
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_FMM,
    MULTI_T_MV_LAZY,
    SINGLE_T_EAGER,
    SINGLE_T_LAZY,
)


def test_tables12(benchmark, save_output):
    result = benchmark.pedantic(run_tables12, rounds=1, iterations=1)
    save_output("tables12", result.render())
    # Section 3.3.5's ordering claims.
    assert complexity_score(MULTI_T_MV_EAGER) < complexity_score(SINGLE_T_LAZY)
    assert complexity_score(MULTI_T_MV_LAZY) < complexity_score(MULTI_T_MV_FMM)
    assert complexity_score(SINGLE_T_EAGER) == 0
