"""Benchmark: regenerate Figure 4 — prior schemes mapped to the taxonomy."""

from repro.analysis.experiments import run_figure4
from repro.core.taxonomy import PRIOR_SCHEMES


def test_figure4(benchmark, save_output):
    result = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    save_output("figure4", result.render())
    assert len(PRIOR_SCHEMES) >= 14
