"""Benchmark: regenerate Figure 10 — AMM vs FMM under MultiT&MV.

Shape assertions follow Section 5.2: Lazy AMM and FMM perform similarly
overall; FMM wins under buffer pressure (P3m) while Lazy AMM wins under
frequent squashes (Euler); Lazy.L2 closes the P3m gap; FMM.Sw costs a few
percent over hardware-logged FMM.
"""

from repro.analysis.experiments import run_figure10
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_FMM,
    MULTI_T_MV_FMM_SW,
    MULTI_T_MV_LAZY,
)
from repro.workloads.apps import APPLICATION_ORDER


def test_figure10(benchmark, ctx, save_output, save_svg_figure):
    result = benchmark.pedantic(run_figure10, args=(ctx,),
                                rounds=1, iterations=1)
    save_output("figure10", result.render())
    save_svg_figure("figure10", result.bars)

    def norm(app, scheme):
        return result.bars.cells[app][scheme.name][0]

    # Lazy AMM ~= FMM in general (within 10% for most applications).
    close = sum(
        abs(norm(app, MULTI_T_MV_LAZY) - norm(app, MULTI_T_MV_FMM)) < 0.10
        for app in APPLICATION_ORDER
    )
    assert close >= 5

    # FMM tolerates P3m's buffer pressure better than Lazy AMM.
    assert norm("P3m", MULTI_T_MV_FMM) <= norm("P3m", MULTI_T_MV_LAZY)

    # Lazy AMM recovers faster: Euler (frequent squashes) favours it.
    assert norm("Euler", MULTI_T_MV_LAZY) < norm("Euler", MULTI_T_MV_FMM)

    # Lazy.L2 brings AMM to within ~10% of FMM on P3m.
    lazy_l2 = result.lazy_l2["P3m"][0]
    assert lazy_l2 <= norm("P3m", MULTI_T_MV_LAZY)
    assert abs(lazy_l2 - norm("P3m", MULTI_T_MV_FMM)) < 0.10

    # FMM.Sw averages a few percent over FMM (paper: 6%).
    overheads = [norm(app, MULTI_T_MV_FMM_SW) / norm(app, MULTI_T_MV_FMM)
                 for app in APPLICATION_ORDER]
    average = sum(overheads) / len(overheads)
    assert 1.02 < average < 1.12
