"""Ablation benchmarks on the design choices DESIGN.md calls out.

These go beyond the paper's figures: each sweep isolates one cost/geometry
knob and confirms the mechanism behind a Section 5 conclusion.

* **Squash-rate sweep** — Lazy AMM vs FMM as dependence violations grow:
  the FMM recovery penalty scales with squash frequency (the Euler effect,
  generalized to a crossover curve).
* **L2 associativity sweep** — P3m under Lazy AMM as ways grow: version
  pile-up pressure falls, generalizing the Lazy.L2 bar.
* **Commit-cost sweep** — eager commit write-back cost vs the Eager/Lazy
  gap: the gap is proportional to the commit wavefront's weight.
* **Recovery-cost sweep** — FMM software-handler cost vs Euler runtime.
"""

from dataclasses import replace

import pytest

from repro.analysis.report import render_table
from repro.core.config import CacheGeometry, NUMA_16
from repro.core.engine import simulate
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_FMM,
    MULTI_T_MV_LAZY,
    SINGLE_T_EAGER,
    SINGLE_T_LAZY,
)
from repro.workloads.apps import APPLICATIONS

SCALE = 0.5


def test_squash_rate_sweep(benchmark, save_output):
    """FMM's disadvantage vs Lazy AMM grows with the violation rate."""
    base = APPLICATIONS["Euler"]
    rates = (0.0, 0.01, 0.03, 0.06)

    def sweep():
        rows = []
        for rate in rates:
            profile = replace(base, name=f"Euler@{rate}",
                              dep_victim_rate=rate)
            workload = profile.generate(scale=SCALE)
            lazy = simulate(NUMA_16, MULTI_T_MV_LAZY, workload)
            fmm = simulate(NUMA_16, MULTI_T_MV_FMM, workload)
            rows.append((rate, lazy.total_cycles, fmm.total_cycles,
                         fmm.total_cycles / lazy.total_cycles,
                         fmm.violation_events))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_squash_rate", render_table(
        ["dep rate", "Lazy AMM (cyc)", "FMM (cyc)", "FMM/Lazy",
         "violations"],
        rows,
        title="Ablation: Lazy AMM vs FMM as squash frequency grows",
    ))
    penalties = [row[3] for row in rows]
    # Without squashes FMM is at least as good; with frequent squashes the
    # log-replay recovery makes it clearly worse.
    assert penalties[0] <= 1.05
    assert penalties[-1] > penalties[0]
    assert penalties[-1] > 1.05


def test_l2_associativity_sweep(benchmark, save_output):
    """More ways absorb P3m's same-set version pile-up under Lazy AMM."""
    ways_list = (4, 8, 16)

    def sweep():
        workload = APPLICATIONS["P3m"].generate(scale=SCALE)
        fmm = simulate(NUMA_16, MULTI_T_MV_FMM, workload)
        rows = []
        for ways in ways_list:
            machine = NUMA_16.with_l2(
                CacheGeometry(size_bytes=ways * 2048 * 64, assoc=ways))
            lazy = simulate(machine, MULTI_T_MV_LAZY, workload)
            rows.append((ways, lazy.total_cycles,
                         lazy.total_cycles / fmm.total_cycles,
                         lazy.peak_overflow_lines))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_l2_ways", render_table(
        ["L2 ways", "Lazy AMM (cyc)", "vs FMM", "peak overflow lines"],
        rows,
        title="Ablation: P3m buffer pressure vs L2 associativity",
    ))
    times = [row[1] for row in rows]
    overflow = [row[3] for row in rows]
    assert times[-1] <= times[0]
    assert overflow[-1] < overflow[0]
    # With 16 ways, Lazy AMM lands within 10% of FMM (the Lazy.L2 result).
    assert rows[-1][2] < 1.10


def test_commit_cost_sweep(benchmark, save_output):
    """The Eager/Lazy gap tracks the per-line commit write-back cost."""
    costs_list = (15, 60, 120)

    def sweep():
        workload = APPLICATIONS["Apsi"].generate(scale=SCALE)
        rows = []
        for per_line in costs_list:
            machine = NUMA_16.with_costs(
                replace(NUMA_16.costs, commit_writeback_per_line=per_line))
            eager = simulate(machine, SINGLE_T_EAGER, workload)
            lazy = simulate(machine, SINGLE_T_LAZY, workload)
            rows.append((per_line, eager.total_cycles, lazy.total_cycles,
                         1 - lazy.total_cycles / eager.total_cycles))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_commit_cost", render_table(
        ["wb/line (cyc)", "SingleT Eager", "SingleT Lazy", "lazy gain"],
        rows,
        title="Ablation: laziness gain vs eager commit cost (Apsi)",
    ))
    gains = [row[3] for row in rows]
    assert gains == sorted(gains)
    assert gains[-1] > gains[0] + 0.1


def test_recovery_cost_sweep(benchmark, save_output):
    """FMM runtime under squashes scales with the recovery handler cost."""
    handler_instrs = (10, 60, 240)

    def sweep():
        workload = APPLICATIONS["Euler"].generate(scale=SCALE)
        rows = []
        for instr in handler_instrs:
            machine = NUMA_16.with_costs(replace(
                NUMA_16.costs, fmm_recovery_instructions_per_entry=instr))
            fmm = simulate(machine, MULTI_T_MV_FMM, workload)
            rows.append((instr, fmm.total_cycles, fmm.violation_events))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output("ablation_recovery_cost", render_table(
        ["handler instr/entry", "FMM total (cyc)", "violations"],
        rows,
        title="Ablation: Euler under FMM vs recovery handler cost",
    ))
    times = [row[1] for row in rows]
    assert times[0] < times[-1]
