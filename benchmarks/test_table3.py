"""Benchmark: regenerate Table 3 — application characteristics."""

from repro.analysis.experiments import run_table3


def test_table3(benchmark, ctx, save_output):
    result = benchmark.pedantic(run_table3, args=(ctx,),
                                rounds=1, iterations=1)
    save_output("table3", result.render())
    ce_numa = {row[0]: row[2] for row in result.rows}
    ce_cmp = {row[0]: row[3] for row in result.rows}
    # Ranking of commit/execution ratios matches the paper's classes:
    # P3m and Tree low; Apsi/Track/Euler high.
    for low in ("P3m", "Tree"):
        for high in ("Apsi", "Track", "Euler"):
            assert ce_numa[low] < ce_numa[high]
    # CMP ratios are consistently below NUMA ratios (Table 3 columns).
    for app in ce_numa:
        assert ce_cmp[app] < ce_numa[app]
    # Euler is the only frequently-squashing application.
    squash = {row[0]: row[6] for row in result.rows}
    assert squash["Euler"] == max(squash.values())
    for app in ("P3m", "Tree", "Bdna", "Apsi"):
        assert squash[app] == 0
