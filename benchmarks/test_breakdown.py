"""Benchmark: disaggregated cycle breakdown (Figure 9's bar anatomy).

The paper folds everything but Busy into one Stall segment; this table
separates memory stalls, task/version-support stalls (the SingleT commit
wait and the MultiT&SV version conflict), recovery, and end-of-loop idle —
and asserts that each category appears exactly under the schemes whose
mechanism produces it.
"""

from repro.analysis.experiments import run_breakdown


def test_breakdown(benchmark, ctx, save_output):
    result = benchmark.pedantic(run_breakdown, args=(ctx,),
                                rounds=1, iterations=1)
    save_output("breakdown", result.render())

    def frac(app, scheme, category):
        return result.cells[app][scheme][category]

    # SingleT's signature stall: waiting for the commit token.
    assert frac("P3m", "SingleT Eager AMM", "commit-stall") > 0.10
    # MultiT&MV never waits on task/version support.
    for app in result.cells:
        assert frac(app, "MultiT&MV Eager AMM", "sv-stall") == 0
        assert frac(app, "MultiT&MV Eager AMM", "commit-stall") == 0
    # MultiT&SV's signature stall appears exactly on privatization apps.
    assert frac("Bdna", "MultiT&SV Eager AMM", "sv-stall") > 0.10
    assert frac("Euler", "MultiT&SV Eager AMM", "sv-stall") == 0
    # Recovery time appears only where squashes happen.
    assert frac("Euler", "MultiT&MV Eager AMM", "recovery") > 0
    assert frac("Tree", "MultiT&MV Eager AMM", "recovery") == 0
