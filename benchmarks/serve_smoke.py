"""CI smoke driver for the ``repro-tls serve`` frontend.

Boots a real service (``ServiceThread``) in-process against a temporary
sharded cache directory and drives it through the blocking
``ServiceClient`` exactly as an external consumer would:

1. liveness + cache-stats shape;
2. a smoke sweep (2 apps x 2 schemes, scale 0.1) streamed to completion;
3. digest identity: every cell fetched over HTTP is bit-identical to a
   direct ``SweepRunner`` execution of the same job;
4. stampede protection: two concurrent identical sweeps store each cell
   exactly once;
5. the warm path: median ``GET /v1/jobs/{key}`` latency over keep-alive,
   gated against ``--latency-limit`` (default 1 ms — the acceptance
   target on an idle host; CI passes a looser bound for runner noise).

Writes the honest numbers to ``SERVE_smoke.json`` and exits non-zero on
any failed check.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py [--latency-limit MS]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import threading
import time

from repro.analysis.serialization import canonical_result_bytes
from repro.service import ServiceClient, ServiceThread, SimulationService
from repro.runner import SimJob, SweepRunner, WorkloadSpec
from repro.core.config import MACHINES
from repro.core.taxonomy import scheme_from_name

SCALE = 0.1
APPS = ("Euler", "Apsi")
SCHEMES = ("MultiT&MV Lazy AMM", "SingleT Eager AMM")
SWEEP_BODY = {"apps": list(APPS), "schemes": list(SCHEMES),
              "seed": 0, "scale": SCALE, "machine": "numa16"}
WARM_SAMPLES = 200


def check(passed: bool, label: str, failures: list[str]) -> None:
    """Record one named pass/fail check."""
    print(f"  {'ok  ' if passed else 'FAIL'} {label}")
    if not passed:
        failures.append(label)


def run_smoke(latency_limit_ms: float, output: str) -> int:
    """Execute every serve-smoke check; returns the exit status."""
    failures: list[str] = []
    report: dict = {"scale": SCALE, "apps": APPS, "schemes": SCHEMES}

    cache_dir = tempfile.mkdtemp(prefix="serve-smoke-cache-")
    service = SimulationService(cache_dir=cache_dir, jobs=4)
    server = ServiceThread(service).start()
    client = ServiceClient(server.base_url)
    try:
        print("serve-smoke: frontend at", server.base_url)
        check(client.health().get("status") == "ok", "healthz", failures)

        # -- sweep submission + streamed completion --------------------
        started = time.perf_counter()
        sweep = client.submit_sweep(SWEEP_BODY)
        events = list(client.stream_events(sweep["sweep_id"]))
        sweep_seconds = time.perf_counter() - started
        terminal = events[-1]
        landed = {e["key"] for e in events if e.get("event") == "result"}
        check(terminal.get("status") == "done",
              "sweep reaches 'done'", failures)
        check(landed == set(sweep["keys"]),
              "every cell streams a completion event", failures)
        report["sweep"] = {
            "cells": sweep["total"], "seconds": round(sweep_seconds, 3),
            "sources": sorted({e["source"] for e in events
                               if e.get("event") == "result"}),
        }

        # -- which dispatcher served the sweep -------------------------
        # Recorded so service benchmarks stay comparable across compute
        # backends (local pool today, a worker fleet behind --dispatch
        # fleet): a latency or wall-clock number is meaningless without
        # knowing what executed the cells.
        dispatch = client.cache_stats().get("dispatch")
        check(isinstance(dispatch, dict) and bool(dispatch.get("backend")),
              "cache stats name the dispatch backend", failures)
        report["dispatcher"] = dispatch
        report["sweep"]["dispatcher"] = (
            dispatch.get("backend") if isinstance(dispatch, dict) else None)

        # -- digest identity against direct execution ------------------
        direct_runner = SweepRunner(jobs=1, cache=None)
        identical = 0
        for app in APPS:
            for scheme_name in SCHEMES:
                job = SimJob(
                    machine=MACHINES["numa16"],
                    workload=WorkloadSpec(app, seed=0, scale=SCALE),
                    scheme=scheme_from_name(scheme_name),
                )
                envelope = client.get_job(job.cache_key())
                served = ServiceClient.result_from_envelope(envelope)
                direct = direct_runner.run(job)
                if (canonical_result_bytes(served)
                        == canonical_result_bytes(direct)):
                    identical += 1
        check(identical == len(APPS) * len(SCHEMES),
              "served results bit-identical to direct execution",
              failures)
        report["digest_identity"] = {
            "cells": len(APPS) * len(SCHEMES), "identical": identical,
        }

        # -- concurrent identical sweeps compute once ------------------
        body = dict(SWEEP_BODY, seed=4242)
        before = client.cache_stats()["shared"]["stores"]
        outcomes: list[str] = []

        def drain() -> None:
            c = ServiceClient(server.base_url)
            try:
                s = c.submit_sweep(body)
                outcomes.append(
                    list(c.stream_events(s["sweep_id"]))[-1]["status"])
            finally:
                c.close()

        threads = [threading.Thread(target=drain) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stores = client.cache_stats()["shared"]["stores"] - before
        cells = len(APPS) * len(SCHEMES)
        check(outcomes == ["done", "done"] and stores == cells,
              f"concurrent identical sweeps store {cells} cells once "
              f"(stored {stores})", failures)
        report["single_flight"] = {"cells": cells, "stores": stores,
                                   "singleflight":
                                   client.cache_stats()["singleflight"]}

        # -- warm-path latency -----------------------------------------
        key = sweep["keys"][0]
        client.get_job(key)  # prime the connection and the memory tier
        samples = []
        for _ in range(WARM_SAMPLES):
            t0 = time.perf_counter()
            envelope = client.get_job(key)
            samples.append((time.perf_counter() - t0) * 1e3)
        median = statistics.median(samples)
        p95 = sorted(samples)[int(len(samples) * 0.95)]
        check(envelope["source"] == "memory",
              "warm lookups served from the memory tier", failures)
        check(median < latency_limit_ms,
              f"warm GET median {median:.3f} ms < {latency_limit_ms} ms",
              failures)
        report["warm_latency_ms"] = {
            "median": round(median, 3), "p95": round(p95, 3),
            "samples": WARM_SAMPLES, "limit": latency_limit_ms,
        }

        report["cache_stats"] = client.cache_stats()
        report["cache_stats"].pop("_status", None)
    finally:
        client.close()
        server.stop()

    report["passed"] = not failures
    report["failures"] = failures
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"serve-smoke report written to {output}")
    if failures:
        print(f"serve-smoke FAILED: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("serve-smoke passed")
    return 0


def main() -> int:
    """Parse arguments and run the smoke checks."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--latency-limit", type=float, default=1.0,
                        metavar="MS",
                        help="warm-GET median gate in milliseconds "
                             "(default 1.0; CI uses a looser bound)")
    parser.add_argument("--output", default="SERVE_smoke.json",
                        help="report path (default SERVE_smoke.json)")
    args = parser.parse_args()
    return run_smoke(args.latency_limit, args.output)


if __name__ == "__main__":
    sys.exit(main())
