"""Benchmark: regenerate Figure 11 — the AMM schemes on the CMP.

Shape assertions follow Section 5.3: trends match the NUMA machine but the
relative differences shrink, because the CMP's lower memory latencies leave
less memory stall time for buffering to influence.
"""

from repro.analysis.experiments import run_figure9, run_figure11
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_LAZY,
    MULTI_T_SV_EAGER,
    MULTI_T_SV_LAZY,
    SINGLE_T_EAGER,
    SINGLE_T_LAZY,
)


def test_figure11(benchmark, ctx, save_output, save_svg_figure):
    result = benchmark.pedantic(run_figure11, args=(ctx,),
                                rounds=1, iterations=1)
    save_output("figure11", result.render())
    save_svg_figure("figure11", result)
    numa = run_figure9(ctx)

    # Multiple tasks&versions still pays on the CMP (paper: 23% vs 32%).
    cmp_gain = result.average_reduction(MULTI_T_MV_EAGER, SINGLE_T_EAGER)
    assert 0.15 < cmp_gain < 0.45

    # Laziness gains shrink on the CMP (paper: 9% and 3% vs 30% and 24%).
    def simple_lazy(fig):
        return (fig.average_reduction(SINGLE_T_LAZY, SINGLE_T_EAGER)
                + fig.average_reduction(MULTI_T_SV_LAZY,
                                        MULTI_T_SV_EAGER)) / 2

    assert simple_lazy(result) < simple_lazy(numa) / 2
    cmp_mv_lazy = result.average_reduction(MULTI_T_MV_LAZY, MULTI_T_MV_EAGER)
    numa_mv_lazy = numa.average_reduction(MULTI_T_MV_LAZY, MULTI_T_MV_EAGER)
    assert cmp_mv_lazy < numa_mv_lazy / 2

    # Busy fractions are higher on the CMP (less memory stall).
    higher = 0
    for app, per_scheme in result.cells.items():
        cmp_busy = per_scheme[MULTI_T_MV_EAGER.name][1]
        numa_busy = numa.cells[app][MULTI_T_MV_EAGER.name][1]
        higher += cmp_busy > numa_busy
    assert higher >= 5
