"""Legacy setup shim.

The environment has no `wheel` package (offline), so PEP 660 editable
installs fail; `pip install -e . --no-use-pep517 --no-build-isolation`
falls back to this shim. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
