"""Relative-link checker for the repository's Markdown documentation.

Scans every tracked Markdown file for inline links and validates the
*relative* ones (external ``http(s)://`` and ``mailto:`` targets are
out of scope — CI must not depend on the network):

* the target file must exist, resolved against the linking file's
  directory; and
* a ``#fragment`` must name a real heading in the target (GitHub-style
  slugs: lowercased, punctuation stripped, spaces to hyphens).

Exit status is the number of dead links, so CI fails on any. Run it
from the repository root::

    python tools/check_doc_links.py [files...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: The documentation surface checked by default (repo-root relative).
DEFAULT_DOC_GLOBS = ("*.md", "docs/*.md")

#: Generated artifacts excluded from checking (they are build outputs,
#: not tracked documentation).
EXCLUDED_PARTS = ("docs/report/",)

_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """The GitHub anchor slug for a Markdown heading."""
    text = re.sub(r"[*_`]|\[|\]|\(.*?\)", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """Every anchor a Markdown file defines (headings, GitHub slugs)."""
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for match in _HEADING.finditer(text):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(path: Path, root: Path) -> list[str]:
    """Dead-link descriptions for one Markdown file."""
    problems: list[str] = []
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        ref, _, fragment = target.partition("#")
        if ref:
            resolved = (path.parent / ref).resolve()
            if not resolved.exists():
                problems.append(f"{path.relative_to(root)}: broken link "
                                f"-> {target}")
                continue
        else:
            resolved = path  # pure-fragment link into the same file
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_slugs(resolved):
                problems.append(f"{path.relative_to(root)}: dead anchor "
                                f"-> {target}")
    return problems


def main(argv: list[str]) -> int:
    """Check the given files (default: the tracked documentation set)."""
    root = Path.cwd()
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = sorted(
            path for glob in DEFAULT_DOC_GLOBS for path in root.glob(glob)
            if not any(part in str(path) for part in EXCLUDED_PARTS)
        )
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path, root))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} files: "
          f"{len(problems)} dead link(s)")
    return min(len(problems), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
