"""Main memory with optional Memory Task-ID (MTID) tags.

Memory stores, per word, the producer task of the version it currently
holds (:data:`~repro.memsys.cache.ARCH_TASK_ID` before the speculative
section writes it). Under FMM — where even uncommitted versions may be
written back — the MTID support compares the producer ID of an incoming
write-back against the resident one and discards stale write-backs, so
memory always keeps the latest future state (Section 3.3.4). Under Lazy
AMM the same in-order guarantee is provided by the VCL, which the engine
models by routing write-backs through :meth:`writeback_words` as well; the
check is then merely an assertion that the VCL picked the right version.

The word-level producer map doubles as the simulator's value model: the
"value" of a word is the ID of the task that produced it, which lets the
test suite compare the final image against sequential execution exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.memsys.cache import ARCH_TASK_ID


@dataclass
class MemoryStats:
    """Counters for write-back traffic reaching main memory."""

    writebacks: int = 0
    words_updated: int = 0
    rejected_words: int = 0
    rejected_lines: int = 0


class MainMemory:
    """The machine's coherent main-memory image at word granularity."""

    def __init__(self, mtid_enabled: bool = False) -> None:
        self.mtid_enabled = mtid_enabled
        self._words: dict[int, int] = {}
        self.stats = MemoryStats()

    def producer_of(self, word_addr: int) -> int:
        """Producer task ID of the version memory holds for ``word_addr``."""
        return self._words.get(word_addr, ARCH_TASK_ID)

    def writeback_words(self, words: Mapping[int, int]) -> int:
        """Merge ``{word_addr: producer_task}`` into memory, newest wins.

        Returns the number of words actually updated. A word whose incoming
        producer is not newer than the resident one is discarded — this is
        the MTID rejection under FMM, and a no-op consistency check for the
        VCL-ordered write-backs of Lazy AMM.
        """
        updated = 0
        rejected = 0
        for word_addr, producer in words.items():
            if producer > self._words.get(word_addr, ARCH_TASK_ID):
                self._words[word_addr] = producer
                updated += 1
            else:
                rejected += 1
        self.stats.writebacks += 1
        self.stats.words_updated += updated
        self.stats.rejected_words += rejected
        if updated == 0 and rejected:
            self.stats.rejected_lines += 1
        return updated

    def restore_words(self, words: Mapping[int, int]) -> None:
        """Forcibly restore ``{word_addr: producer}`` (FMM undo-log replay).

        Unlike :meth:`writeback_words` this moves memory *backwards*: it is
        only legal during recovery, replaying MHB entries in strict reverse
        task order.
        """
        for word_addr, producer in words.items():
            if producer == ARCH_TASK_ID:
                self._words.pop(word_addr, None)
            else:
                self._words[word_addr] = producer

    def items(self):
        """Read-only view of the word -> producer map.

        Unlike :meth:`image` this does not copy, so the invariant checker
        can sweep memory after every event without allocation.
        """
        return self._words.items()

    def image(self) -> dict[int, int]:
        """A copy of the full word → producer image (for invariant checks)."""
        return dict(self._words)

    def written_words(self) -> Iterable[int]:
        return self._words.keys()
