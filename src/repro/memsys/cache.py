"""Set-associative version cache with per-line task-ID tags (CTID).

This is the paper's buffering substrate: a cache whose lines are tagged with
the producer task's ID, so that one cache can hold state from several
speculative tasks and — under MultiT&MV — several versions of the same line
(same address tag, different task ID, occupying different ways of the same
set, as in Cintra00 and Steffan97&00).

The cache is a *timing and capacity* model: which versions exist and which
one a reader must receive is decided by the global
:class:`~repro.tls.versions.VersionDirectory`; this class answers whether a
given version is locally resident, and applies LRU replacement so that
version pressure on a set produces displacements (the effect that hurts P3m
under AMM in Figure 10).

Storage layout (engine-core v3): resident state lives in flat parallel
*slot columns*, preallocated to the cache's line capacity —

* ``_key_slot`` — one dict from the packed ``(line_addr, task_id)`` tag
  (see :data:`KEY_SHIFT`) to the slot index: the single probe behind
  :meth:`find` and the engine's inlined L1 fast paths;
* ``_dirty`` / ``_committed`` — ``bytearray`` flag columns;
* ``_touch`` — the LRU timestamp column (what a hit actually writes);
* ``_line`` / ``_task`` / ``_view`` — the reverse mapping from a slot to
  its address tag and its :class:`CacheLine` view object.

:class:`CacheLine` doubles as the *view*: while resident, its ``dirty`` /
``committed`` / ``last_touch`` properties read and write the columns of the
owning cache, so hooks, invariant checkers, and the engine's slow paths
keep mutating entry objects exactly as before; on displacement the column
values are copied back and the object detaches, which makes victims stable
snapshots even after their slot is reused. Object identity is preserved:
:meth:`insert` interns the caller's instance, and :meth:`find` returns that
same instance until it is removed.

The per-set insertion-ordered lists (LRU tie-break by list position) and
``_by_task`` (per-task bulk-op index) survive from v2 — they organize the
*views*; the columns carry the hot fields. The v2 per-address version map
is gone: all versions of a line live in one set, so :meth:`entries` and
:meth:`version_count` scan at most ``assoc`` elements instead of paying
a third index on every link/unlink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.config import CacheGeometry
from repro.errors import SimulationError

#: Task ID used to tag architectural (committed-to-memory) data fetched into
#: a cache in its traditional role as an extension of main memory.
ARCH_TASK_ID = -1

#: Packed residency key: ``(line_addr << KEY_SHIFT) + task_id + KEY_BIAS``.
#: The bias maps :data:`ARCH_TASK_ID` (-1) to a non-negative field; the
#: shift bounds task IDs at ``2**KEY_SHIFT - KEY_BIAS`` (~4.2M, far above
#: any workload's task count). Python ints are unbounded, so large line
#: addresses cannot collide with the task field.
KEY_SHIFT = 22
KEY_BIAS = 2


class CacheLine:
    """One line version: a resident *view* or a detached snapshot.

    ``task_id`` is the CTID tag: the producer task of this version, or
    :data:`ARCH_TASK_ID` for architectural data. ``committed`` is set when
    the producer commits (Lazy AMM keeps such lines resident and incoherent
    until merged). ``dirty`` lines carry state that must not be silently
    dropped unless the scheme says so.

    While interned in a :class:`VersionCache` the mutable fields live in
    that cache's slot columns and the properties delegate; detached
    instances (freshly constructed, or displaced victims) carry their own
    values.
    """

    __slots__ = ("line_addr", "task_id", "_dirty", "_committed", "_touch",
                 "_cache", "_slot")

    def __init__(self, line_addr: int, task_id: int, dirty: bool = False,
                 committed: bool = False, last_touch: float = 0.0) -> None:
        self.line_addr = line_addr
        self.task_id = task_id
        self._dirty = dirty
        self._committed = committed
        self._touch = last_touch
        self._cache: VersionCache | None = None
        self._slot = -1

    @property
    def dirty(self) -> bool:
        cache = self._cache
        if cache is not None:
            return bool(cache._dirty[self._slot])
        return self._dirty

    @dirty.setter
    def dirty(self, value: bool) -> None:
        cache = self._cache
        if cache is not None:
            cache._dirty[self._slot] = 1 if value else 0
        else:
            self._dirty = value

    @property
    def committed(self) -> bool:
        cache = self._cache
        if cache is not None:
            return bool(cache._committed[self._slot])
        return self._committed

    @committed.setter
    def committed(self, value: bool) -> None:
        cache = self._cache
        if cache is not None:
            cache._committed[self._slot] = 1 if value else 0
        else:
            self._committed = value

    @property
    def last_touch(self) -> float:
        cache = self._cache
        if cache is not None:
            return cache._touch[self._slot]
        return self._touch

    @last_touch.setter
    def last_touch(self, value: float) -> None:
        cache = self._cache
        if cache is not None:
            cache._touch[self._slot] = value
        else:
            self._touch = value

    @property
    def speculative(self) -> bool:
        """True while the line holds uncommitted, non-architectural state."""
        return self.task_id != ARCH_TASK_ID and not self.committed

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheLine):
            return NotImplemented
        return (self.line_addr == other.line_addr
                and self.task_id == other.task_id
                and self.dirty == other.dirty
                and self.committed == other.committed
                and self.last_touch == other.last_touch)

    def __repr__(self) -> str:
        return (f"CacheLine(line_addr={self.line_addr}, "
                f"task_id={self.task_id}, dirty={self.dirty}, "
                f"committed={self.committed}, last_touch={self.last_touch})")


@dataclass
class CacheStats:
    """Aggregate counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    displacements: int = 0
    speculative_displacements: int = 0
    committed_dirty_displacements: int = 0
    peak_resident_lines: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


_EMPTY: dict = {}


class VersionCache:
    """A set-associative cache of :class:`CacheLine` versions.

    ``multi_version`` controls whether two versions of the same line address
    (different task IDs) may be resident simultaneously; MultiT&MV schemes
    enable it, SingleT/MultiT&SV schemes disable it for *speculative*
    versions (a committed version and one speculative version may still
    coexist, as in the Speculative Versioning Cache).
    """

    def __init__(self, geometry: CacheGeometry, name: str = "cache") -> None:
        self.geometry = geometry
        self.name = name
        self._set_mask = geometry.n_sets - 1
        #: Per-set LRU lists, allocated on a set's first use: geometries
        #: with thousands of sets would otherwise pay for thousands of
        #: empty lists per construction (384 caches per 12-run bench).
        self._sets: list[list[CacheLine] | None] = [None] * geometry.n_sets
        #: task_id -> {line_addr: entry}; a task has at most one version
        #: of a line per cache, so the line address is a unique key.
        self._by_task: dict[int, dict[int, CacheLine]] = {}
        # Flat slot columns (engine-core v3). They grow on demand up to
        # the peak residency, which the set capacities bound at
        # n_sets * assoc; freed slots are recycled through the free list.
        self._key_slot: dict[int, int] = {}
        self._dirty = bytearray()
        self._committed = bytearray()
        self._touch: list[float] = []
        self._view: list[CacheLine | None] = []
        self._free: list[int] = []
        self._resident = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _link(self, entry: CacheLine, cache_set: list[CacheLine]) -> None:
        """Intern a new resident entry: claim a slot, join all indexes."""
        free = self._free
        if free:
            slot = free.pop()
            self._dirty[slot] = 1 if entry._dirty else 0
            self._committed[slot] = 1 if entry._committed else 0
            self._touch[slot] = entry._touch
            self._view[slot] = entry
        else:
            slot = len(self._view)
            self._dirty.append(1 if entry._dirty else 0)
            self._committed.append(1 if entry._committed else 0)
            self._touch.append(entry._touch)
            self._view.append(entry)
        entry._cache = self
        entry._slot = slot
        self._key_slot[
            (entry.line_addr << KEY_SHIFT) + entry.task_id + KEY_BIAS] = slot
        cache_set.append(entry)
        task_lines = self._by_task.get(entry.task_id)
        if task_lines is None:
            self._by_task[entry.task_id] = {entry.line_addr: entry}
        else:
            task_lines[entry.line_addr] = entry
        self._resident += 1

    def _unlink(self, entry: CacheLine, cache_set: list[CacheLine]) -> None:
        """Detach a resident entry: snapshot its columns, free its slot."""
        slot = entry._slot
        entry._dirty = bool(self._dirty[slot])
        entry._committed = bool(self._committed[slot])
        entry._touch = self._touch[slot]
        entry._cache = None
        entry._slot = -1
        self._view[slot] = None
        self._free.append(slot)
        del self._key_slot[
            (entry.line_addr << KEY_SHIFT) + entry.task_id + KEY_BIAS]
        # Remove by identity: __eq__ is value-based and reads the columns,
        # so list.remove would cost several property reads per element.
        for index, resident in enumerate(cache_set):
            if resident is entry:
                del cache_set[index]
                break
        task_lines = self._by_task[entry.task_id]
        del task_lines[entry.line_addr]
        if not task_lines:
            del self._by_task[entry.task_id]
        self._resident -= 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    def entries(self, line_addr: int) -> list[CacheLine]:
        """All resident versions of ``line_addr`` (any task ID).

        Scans the line's set — at most ``assoc`` elements — preserving
        the per-line insertion order (both a dedicated per-line index and
        the set list append on link, so their relative orders coincide).
        """
        cache_set = self._sets[line_addr & self._set_mask]
        if not cache_set:
            return []
        return [e for e in cache_set if e.line_addr == line_addr]

    def version_count(self, line_addr: int) -> int:
        """How many versions of ``line_addr`` are resident (O(assoc))."""
        cache_set = self._sets[line_addr & self._set_mask]
        if not cache_set:
            return 0
        count = 0
        for e in cache_set:
            if e.line_addr == line_addr:
                count += 1
        return count

    def find(self, line_addr: int, task_id: int) -> CacheLine | None:
        """The exact (address, task-ID) version, or ``None``."""
        slot = self._key_slot.get(
            (line_addr << KEY_SHIFT) + task_id + KEY_BIAS)
        if slot is None:
            return None
        return self._view[slot]

    def find_speculative(self, line_addr: int) -> list[CacheLine]:
        """All resident *speculative* versions of ``line_addr``."""
        return [e for e in self.entries(line_addr) if e.speculative]

    def touch(self, entry: CacheLine, now: float) -> None:
        """Refresh LRU state after a hit."""
        entry.last_touch = now
        self.stats.hits += 1

    def record_miss(self) -> None:
        self.stats.misses += 1

    # ------------------------------------------------------------------
    # Insertion / replacement
    # ------------------------------------------------------------------
    def insert(self, line: CacheLine, now: float,
               victim_filter: Callable[[CacheLine], bool] | None = None,
               ) -> CacheLine | None:
        """Insert ``line``, returning the displaced victim if the set is full.

        An existing entry with the same (address, task-ID) is overwritten in
        place (no displacement). The victim is the least-recently-used entry
        for which ``victim_filter`` (if given) returns True; entries the
        filter rejects are unevictable (e.g. the line currently being
        written). If every entry is unevictable a :class:`SimulationError`
        is raised — associativity must exceed the number of pinned lines.
        """
        slot = self._key_slot.get(
            (line.line_addr << KEY_SHIFT) + line.task_id + KEY_BIAS)
        if slot is not None:
            if line._dirty:
                self._dirty[slot] = 1
            # A version, once committed, never reverts to speculative.
            if line._committed:
                self._committed[slot] = 1
            self._touch[slot] = now
            return None

        line._touch = now
        set_index = line.line_addr & self._set_mask
        cache_set = self._sets[set_index]
        if cache_set is None:
            cache_set = self._sets[set_index] = []
        victim: CacheLine | None = None
        if len(cache_set) >= self.geometry.assoc:
            touch = self._touch
            if victim_filter is None:
                candidates = cache_set
            else:
                candidates = [e for e in cache_set if victim_filter(e)]
                if not candidates:
                    raise SimulationError(
                        f"{self.name}: no evictable line in set "
                        f"{self.set_index(line.line_addr)}"
                    )
            victim = min(candidates, key=lambda e: touch[e._slot])
            speculative = victim.speculative
            dirty = victim.dirty
            self._unlink(victim, cache_set)
            self.stats.displacements += 1
            if speculative and dirty:
                self.stats.speculative_displacements += 1
            if victim._committed and dirty:
                self.stats.committed_dirty_displacements += 1
        self._link(line, cache_set)
        if self._resident > self.stats.peak_resident_lines:
            self.stats.peak_resident_lines = self._resident
        return victim

    def install(self, line_addr: int, task_id: int, *, dirty: bool,
                committed: bool, now: float) -> CacheLine | None:
        """Fused :meth:`insert` for the engine's hot paths.

        Behaves exactly like ``insert(CacheLine(line_addr, task_id, ...),
        now)`` — same flag merging, LRU victim choice, statistics and
        return value — but only constructs the :class:`CacheLine` view
        when a new entry is actually linked, and runs probe, link and
        victim selection in one body.
        """
        key = (line_addr << KEY_SHIFT) + task_id + KEY_BIAS
        key_slot = self._key_slot
        slot = key_slot.get(key)
        if slot is not None:
            if dirty:
                self._dirty[slot] = 1
            # A version, once committed, never reverts to speculative.
            if committed:
                self._committed[slot] = 1
            self._touch[slot] = now
            return None

        set_index = line_addr & self._set_mask
        cache_set = self._sets[set_index]
        if cache_set is None:
            cache_set = self._sets[set_index] = []
        touch = self._touch
        victim: CacheLine | None = None
        if len(cache_set) >= self.geometry.assoc:
            victim = min(cache_set, key=lambda e: touch[e._slot])
            speculative = victim.speculative
            was_dirty = victim.dirty
            self._unlink(victim, cache_set)
            stats = self.stats
            stats.displacements += 1
            if speculative and was_dirty:
                stats.speculative_displacements += 1
            if victim._committed and was_dirty:
                stats.committed_dirty_displacements += 1
        entry = CacheLine(line_addr, task_id, dirty, committed, now)
        # Inline _link.
        free = self._free
        if free:
            slot = free.pop()
            self._dirty[slot] = 1 if dirty else 0
            self._committed[slot] = 1 if committed else 0
            touch[slot] = now
            self._view[slot] = entry
        else:
            slot = len(self._view)
            self._dirty.append(1 if dirty else 0)
            self._committed.append(1 if committed else 0)
            touch.append(now)
            self._view.append(entry)
        entry._cache = self
        entry._slot = slot
        key_slot[key] = slot
        cache_set.append(entry)
        task_lines = self._by_task.get(task_id)
        if task_lines is None:
            self._by_task[task_id] = {line_addr: entry}
        else:
            task_lines[line_addr] = entry
        resident = self._resident + 1
        self._resident = resident
        if resident > self.stats.peak_resident_lines:
            self.stats.peak_resident_lines = resident
        return victim

    def remove(self, entry: CacheLine) -> None:
        """Remove a specific resident entry."""
        cache_set = self._sets[entry.line_addr & self._set_mask]
        resident = self.find(entry.line_addr, entry.task_id)
        if resident is not entry:
            raise SimulationError(
                f"{self.name}: removing non-resident line "
                f"{entry.line_addr:#x} task {entry.task_id}"
            )
        self._unlink(entry, cache_set)

    # ------------------------------------------------------------------
    # Bulk operations used by commit / squash / merge
    # ------------------------------------------------------------------
    def invalidate_task(self, task_id: int) -> int:
        """Drop every line owned by ``task_id`` (AMM squash recovery).

        Returns the number of lines invalidated. O(resident lines of the
        task): the per-task index hands us exactly the entries to drop,
        where the original implementation swept every set in the cache.
        """
        task_lines = self._by_task.get(task_id)
        if not task_lines:
            return 0
        dropped = 0
        for entry in list(task_lines.values()):
            self._unlink(entry, self._sets[entry.line_addr & self._set_mask])
            dropped += 1
        return dropped

    def mark_committed(self, task_id: int) -> list[CacheLine]:
        """Flip all lines of ``task_id`` to committed (Lazy AMM commit).

        Returns the lines affected so the caller can account for them.
        """
        task_lines = self._by_task.get(task_id)
        if not task_lines:
            return []
        committed = self._committed
        marked = []
        for entry in task_lines.values():
            if not committed[entry._slot]:
                committed[entry._slot] = 1
                marked.append(entry)
        return marked

    def drain_task(self, task_id: int, *, clean: bool) -> list[CacheLine]:
        """Collect all dirty lines of ``task_id`` (Eager AMM commit merge).

        With ``clean=True`` the lines stay resident but become clean
        architectural data (they were just written back to memory); with
        ``clean=False`` they are removed.
        """
        task_lines = self._by_task.get(task_id)
        if not task_lines:
            return []
        dirty = self._dirty
        drained = []
        for entry in list(task_lines.values()):
            if dirty[entry._slot]:
                drained.append(entry)
                if clean:
                    dirty[entry._slot] = 0
                    self._committed[entry._slot] = 1
                else:
                    self._unlink(
                        entry, self._sets[entry.line_addr & self._set_mask]
                    )
        return drained

    def committed_dirty(self) -> list[CacheLine]:
        """All committed-but-unmerged dirty lines (Lazy AMM final merge)."""
        dirty = self._dirty
        committed = self._committed
        return [e for s in self._sets if s for e in s
                if committed[e._slot] and dirty[e._slot]]

    def lines_of_task(self, task_id: int) -> list[CacheLine]:
        return list(self._by_task.get(task_id, _EMPTY).values())

    def __iter__(self) -> Iterator[CacheLine]:
        for cache_set in self._sets:
            if cache_set:
                yield from cache_set

    def __len__(self) -> int:
        return self._resident

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"VersionCache({self.name}, {self.geometry.size_bytes}B "
                f"{self.geometry.assoc}-way, resident={self._resident})")
