"""Set-associative version cache with per-line task-ID tags (CTID).

This is the paper's buffering substrate: a cache whose lines are tagged with
the producer task's ID, so that one cache can hold state from several
speculative tasks and — under MultiT&MV — several versions of the same line
(same address tag, different task ID, occupying different ways of the same
set, as in Cintra00 and Steffan97&00).

The cache is a *timing and capacity* model: which versions exist and which
one a reader must receive is decided by the global
:class:`~repro.tls.versions.VersionDirectory`; this class answers whether a
given version is locally resident, and applies LRU replacement so that
version pressure on a set produces displacements (the effect that hurts P3m
under AMM in Figure 10).

Storage layout (engine-core v2): resident lines are *interned* in three
coherent indexes —

* ``_sets`` — per-set insertion-ordered lists, the source of truth for LRU
  victim selection (ties on ``last_touch`` break by list position, exactly
  as the original single-structure implementation did);
* ``_by_line`` — ``line_addr -> {task_id: entry}``, making :meth:`find` /
  :meth:`entries` / :meth:`version_count` O(1) instead of a set scan;
* ``_by_task`` — ``task_id -> {line_addr: entry}``, making the bulk
  commit/squash operations (:meth:`invalidate_task`, :meth:`drain_task`,
  :meth:`mark_committed`, :meth:`lines_of_task`) proportional to the
  task's resident footprint instead of the whole cache geometry. Squash
  recovery previously swept every set of every cache per victim task and
  dominated the engine profile.

A ``(line_addr, task_id)`` pair is resident at most once, so the three
indexes stay in lock-step through the single :meth:`_link` /
:meth:`_unlink` pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.config import CacheGeometry
from repro.errors import SimulationError

#: Task ID used to tag architectural (committed-to-memory) data fetched into
#: a cache in its traditional role as an extension of main memory.
ARCH_TASK_ID = -1


@dataclass(slots=True)
class CacheLine:
    """One resident line version.

    ``task_id`` is the CTID tag: the producer task of this version, or
    :data:`ARCH_TASK_ID` for architectural data. ``committed`` is set when
    the producer commits (Lazy AMM keeps such lines resident and incoherent
    until merged). ``dirty`` lines carry state that must not be silently
    dropped unless the scheme says so.
    """

    line_addr: int
    task_id: int
    dirty: bool = False
    committed: bool = False
    last_touch: float = 0.0

    @property
    def speculative(self) -> bool:
        """True while the line holds uncommitted, non-architectural state."""
        return self.task_id != ARCH_TASK_ID and not self.committed


@dataclass
class CacheStats:
    """Aggregate counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    displacements: int = 0
    speculative_displacements: int = 0
    committed_dirty_displacements: int = 0
    peak_resident_lines: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


_EMPTY: dict = {}


class VersionCache:
    """A set-associative cache of :class:`CacheLine` versions.

    ``multi_version`` controls whether two versions of the same line address
    (different task IDs) may be resident simultaneously; MultiT&MV schemes
    enable it, SingleT/MultiT&SV schemes disable it for *speculative*
    versions (a committed version and one speculative version may still
    coexist, as in the Speculative Versioning Cache).
    """

    def __init__(self, geometry: CacheGeometry, name: str = "cache") -> None:
        self.geometry = geometry
        self.name = name
        self._set_mask = geometry.n_sets - 1
        self._sets: list[list[CacheLine]] = [[] for _ in range(geometry.n_sets)]
        #: line_addr -> {task_id: entry}, insertion-ordered like the sets.
        self._by_line: dict[int, dict[int, CacheLine]] = {}
        #: task_id -> {line_addr: entry}; a task has at most one version
        #: of a line per cache, so the line address is a unique key.
        self._by_task: dict[int, dict[int, CacheLine]] = {}
        self._resident = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _link(self, entry: CacheLine, cache_set: list[CacheLine]) -> None:
        """Intern a new resident entry into all three indexes."""
        cache_set.append(entry)
        line_versions = self._by_line.get(entry.line_addr)
        if line_versions is None:
            self._by_line[entry.line_addr] = {entry.task_id: entry}
        else:
            line_versions[entry.task_id] = entry
        task_lines = self._by_task.get(entry.task_id)
        if task_lines is None:
            self._by_task[entry.task_id] = {entry.line_addr: entry}
        else:
            task_lines[entry.line_addr] = entry
        self._resident += 1

    def _unlink(self, entry: CacheLine, cache_set: list[CacheLine]) -> None:
        """Remove a resident entry from all three indexes."""
        cache_set.remove(entry)
        line_versions = self._by_line[entry.line_addr]
        del line_versions[entry.task_id]
        if not line_versions:
            del self._by_line[entry.line_addr]
        task_lines = self._by_task[entry.task_id]
        del task_lines[entry.line_addr]
        if not task_lines:
            del self._by_task[entry.task_id]
        self._resident -= 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    def entries(self, line_addr: int) -> list[CacheLine]:
        """All resident versions of ``line_addr`` (any task ID)."""
        versions = self._by_line.get(line_addr)
        return list(versions.values()) if versions else []

    def version_count(self, line_addr: int) -> int:
        """How many versions of ``line_addr`` are resident (O(1))."""
        versions = self._by_line.get(line_addr)
        return len(versions) if versions else 0

    def find(self, line_addr: int, task_id: int) -> CacheLine | None:
        """The exact (address, task-ID) version, or ``None``."""
        versions = self._by_line.get(line_addr)
        if versions is None:
            return None
        return versions.get(task_id)

    def find_speculative(self, line_addr: int) -> list[CacheLine]:
        """All resident *speculative* versions of ``line_addr``."""
        return [e for e in self.entries(line_addr) if e.speculative]

    def touch(self, entry: CacheLine, now: float) -> None:
        """Refresh LRU state after a hit."""
        entry.last_touch = now
        self.stats.hits += 1

    def record_miss(self) -> None:
        self.stats.misses += 1

    # ------------------------------------------------------------------
    # Insertion / replacement
    # ------------------------------------------------------------------
    def insert(self, line: CacheLine, now: float,
               victim_filter: Callable[[CacheLine], bool] | None = None,
               ) -> CacheLine | None:
        """Insert ``line``, returning the displaced victim if the set is full.

        An existing entry with the same (address, task-ID) is overwritten in
        place (no displacement). The victim is the least-recently-used entry
        for which ``victim_filter`` (if given) returns True; entries the
        filter rejects are unevictable (e.g. the line currently being
        written). If every entry is unevictable a :class:`SimulationError`
        is raised — associativity must exceed the number of pinned lines.
        """
        versions = self._by_line.get(line.line_addr)
        existing = versions.get(line.task_id) if versions is not None else None
        if existing is not None:
            existing.dirty = existing.dirty or line.dirty
            # A version, once committed, never reverts to speculative.
            existing.committed = existing.committed or line.committed
            existing.last_touch = now
            return None

        line.last_touch = now
        cache_set = self._sets[line.line_addr & self._set_mask]
        victim: CacheLine | None = None
        if len(cache_set) >= self.geometry.assoc:
            candidates = [e for e in cache_set
                          if victim_filter is None or victim_filter(e)]
            if not candidates:
                raise SimulationError(
                    f"{self.name}: no evictable line in set "
                    f"{self.set_index(line.line_addr)}"
                )
            victim = min(candidates, key=lambda e: e.last_touch)
            self._unlink(victim, cache_set)
            self.stats.displacements += 1
            if victim.speculative and victim.dirty:
                self.stats.speculative_displacements += 1
            if victim.committed and victim.dirty:
                self.stats.committed_dirty_displacements += 1
        self._link(line, cache_set)
        if self._resident > self.stats.peak_resident_lines:
            self.stats.peak_resident_lines = self._resident
        return victim

    def remove(self, entry: CacheLine) -> None:
        """Remove a specific resident entry."""
        cache_set = self._sets[entry.line_addr & self._set_mask]
        resident = self.find(entry.line_addr, entry.task_id)
        if resident is not entry:
            raise SimulationError(
                f"{self.name}: removing non-resident line "
                f"{entry.line_addr:#x} task {entry.task_id}"
            )
        self._unlink(entry, cache_set)

    # ------------------------------------------------------------------
    # Bulk operations used by commit / squash / merge
    # ------------------------------------------------------------------
    def invalidate_task(self, task_id: int) -> int:
        """Drop every line owned by ``task_id`` (AMM squash recovery).

        Returns the number of lines invalidated. O(resident lines of the
        task): the per-task index hands us exactly the entries to drop,
        where the original implementation swept every set in the cache.
        """
        task_lines = self._by_task.get(task_id)
        if not task_lines:
            return 0
        dropped = 0
        for entry in list(task_lines.values()):
            self._unlink(entry, self._sets[entry.line_addr & self._set_mask])
            dropped += 1
        return dropped

    def mark_committed(self, task_id: int) -> list[CacheLine]:
        """Flip all lines of ``task_id`` to committed (Lazy AMM commit).

        Returns the lines affected so the caller can account for them.
        """
        task_lines = self._by_task.get(task_id)
        if not task_lines:
            return []
        marked = []
        for entry in task_lines.values():
            if not entry.committed:
                entry.committed = True
                marked.append(entry)
        return marked

    def drain_task(self, task_id: int, *, clean: bool) -> list[CacheLine]:
        """Collect all dirty lines of ``task_id`` (Eager AMM commit merge).

        With ``clean=True`` the lines stay resident but become clean
        architectural data (they were just written back to memory); with
        ``clean=False`` they are removed.
        """
        task_lines = self._by_task.get(task_id)
        if not task_lines:
            return []
        drained = []
        for entry in list(task_lines.values()):
            if entry.dirty:
                drained.append(entry)
                if clean:
                    entry.dirty = False
                    entry.committed = True
                else:
                    self._unlink(
                        entry, self._sets[entry.line_addr & self._set_mask]
                    )
        return drained

    def committed_dirty(self) -> list[CacheLine]:
        """All committed-but-unmerged dirty lines (Lazy AMM final merge)."""
        return [e for s in self._sets for e in s if e.committed and e.dirty]

    def lines_of_task(self, task_id: int) -> list[CacheLine]:
        return list(self._by_task.get(task_id, _EMPTY).values())

    def __iter__(self) -> Iterator[CacheLine]:
        for cache_set in self._sets:
            yield from cache_set

    def __len__(self) -> int:
        return self._resident

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"VersionCache({self.name}, {self.geometry.size_bytes}B "
                f"{self.geometry.assoc}-way, resident={self._resident})")
