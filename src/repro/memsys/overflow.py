"""Per-processor overflow memory area for AMM schemes.

Under AMM, a speculative dirty line displaced from the L2 cannot be written
to main memory (it would corrupt the architectural state), so — following
Prvulovic01, which the paper's base protocol adopts — it overflows into a
special per-processor memory area. Versions living there remain part of the
distributed MROB: they must eventually be accessed again, at the latest when
their task commits (Eager) or when they are merged on demand (Lazy), and
every such access pays memory-class latency plus a penalty.

This is the mechanism that makes AMM lose to FMM on P3m in Figure 10: under
FMM the *old* versions retire into the MHB and are "hopefully never accessed
again", while under AMM every overflowed version is on the program's path.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class OverflowStats:
    """Counters for one processor's overflow area."""

    spills: int = 0
    fetches: int = 0
    peak_lines: int = 0


class OverflowArea:
    """Holds displaced speculative (and lazily-committed) line versions."""

    def __init__(self, proc_id: int) -> None:
        self.proc_id = proc_id
        self._lines: dict[tuple[int, int], bool] = {}
        self.stats = OverflowStats()

    def spill(self, line_addr: int, task_id: int, committed: bool) -> None:
        """Accept a displaced dirty version of (``line_addr``, ``task_id``)."""
        self._lines[(line_addr, task_id)] = committed
        self.stats.spills += 1
        self.stats.peak_lines = max(self.stats.peak_lines, len(self._lines))

    def holds(self, line_addr: int, task_id: int) -> bool:
        return (line_addr, task_id) in self._lines

    def fetch(self, line_addr: int, task_id: int) -> bool:
        """Remove and return whether the version was present (refetch)."""
        present = self._lines.pop((line_addr, task_id), None) is not None
        if present:
            self.stats.fetches += 1
        return present

    def mark_committed(self, task_id: int) -> int:
        """Flip all of ``task_id``'s overflowed versions to committed."""
        flipped = 0
        for key in self._lines:
            if key[1] == task_id and not self._lines[key]:
                self._lines[key] = True
                flipped += 1
        return flipped

    def lines_of_task(self, task_id: int) -> list[int]:
        """Line addresses of all of ``task_id``'s overflowed versions."""
        return [line for (line, task) in self._lines if task == task_id]

    def drain_task(self, task_id: int) -> list[int]:
        """Remove and return line addresses of all of ``task_id``'s versions.

        Used by the Eager AMM commit merge (every overflowed line must be
        written back) and by AMM squash recovery (versions are discarded).
        """
        keys = [k for k in self._lines if k[1] == task_id]
        for key in keys:
            del self._lines[key]
        return [line for line, _task in keys]

    def items(self) -> list[tuple[int, int, bool]]:
        """Every resident version as ``(line, task, committed)`` triples
        (read-only snapshot for the invariant checker)."""
        return [(line, task, committed)
                for (line, task), committed in self._lines.items()]

    def committed_lines(self) -> list[tuple[int, int]]:
        """(line, task) pairs still awaiting a lazy merge."""
        return [k for k, committed in self._lines.items() if committed]

    def discard(self, line_addr: int, task_id: int) -> None:
        self._lines.pop((line_addr, task_id), None)

    def __len__(self) -> int:
        return len(self._lines)
