"""Address arithmetic shared by the memory-system components.

The simulator addresses memory at word granularity (violation detection is
word-granular, per the paper's base protocol) and buffers state at cache-line
granularity (a single task-ID tag per line). These helpers convert between
the two.
"""

from __future__ import annotations

from repro.core.config import WORDS_PER_LINE


def line_of(word_addr: int) -> int:
    """Cache-line address containing ``word_addr``."""
    return word_addr // WORDS_PER_LINE


def word_in_line(word_addr: int) -> int:
    """Offset of ``word_addr`` within its line (0..WORDS_PER_LINE-1)."""
    return word_addr % WORDS_PER_LINE


def words_of_line(line_addr: int) -> range:
    """All word addresses contained in ``line_addr``."""
    start = line_addr * WORDS_PER_LINE
    return range(start, start + WORDS_PER_LINE)
