"""Per-processor undo log implementing the Memory-System History Buffer.

Under FMM, before a task creates its own version of a line, the previous
version (from an earlier local task, or the architectural/future state
fetched from memory) is saved here. Each entry is tagged with the
*producer* task ID of the saved version and the *overwriting* task ID
(Figure 7-(c)); both are needed to reconstruct the total version order of a
variable across the distributed MHB during recovery.

Entries are appended sequentially (the log is a sequentially-accessed
structure, per Section 3.3.4), freed in bulk when the overwriting task
commits, and replayed in strict reverse task order on a squash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProtocolError


@dataclass(frozen=True)
class LogEntry:
    """One saved (pre-overwrite) line version.

    ``words`` maps each word address of the saved version to the producer
    task that wrote it (``ARCH_TASK_ID`` for words never written in the
    speculative section). Restoring the entry rewrites exactly these words.
    """

    line_addr: int
    producer_task: int
    overwriting_task: int
    words: tuple[tuple[int, int], ...]

    def words_dict(self) -> dict[int, int]:
        """The saved words as a plain address->value dict."""
        return dict(self.words)


@dataclass
class UndoLogStats:
    """Counters for undo-log (MHB) activity."""
    appends: int = 0
    frees: int = 0
    restores: int = 0
    peak_entries: int = 0


class UndoLog:
    """The MHB of one processor (hardware ULOG or the software FMM.Sw log)."""

    def __init__(self, proc_id: int) -> None:
        self.proc_id = proc_id
        self._entries: list[LogEntry] = []
        #: (overwriting_task, line_addr) pairs already logged, to enforce
        #: the one-entry-per-first-write rule.
        self._logged: set[tuple[int, int]] = set()
        self.stats = UndoLogStats()

    def needs_entry(self, overwriting_task: int, line_addr: int) -> bool:
        """True if ``overwriting_task`` has not yet logged ``line_addr``."""
        return (overwriting_task, line_addr) not in self._logged

    def append(self, entry: LogEntry) -> None:
        """Log the overwritten version of a line before memory is updated."""
        key = (entry.overwriting_task, entry.line_addr)
        if key in self._logged:
            raise ProtocolError(
                f"proc {self.proc_id}: duplicate log entry for task "
                f"{entry.overwriting_task} line {entry.line_addr:#x}"
            )
        if entry.producer_task >= entry.overwriting_task:
            raise ProtocolError(
                f"proc {self.proc_id}: log entry saves version "
                f"{entry.producer_task} overwritten by non-later task "
                f"{entry.overwriting_task}"
            )
        self._logged.add(key)
        self._entries.append(entry)
        self.stats.appends += 1
        self.stats.peak_entries = max(self.stats.peak_entries, len(self._entries))

    def free_task(self, committed_task: int) -> int:
        """Free all entries created by ``committed_task`` (commit-time).

        Returns the number of entries freed.
        """
        keep = [e for e in self._entries if e.overwriting_task != committed_task]
        freed = len(self._entries) - len(keep)
        self._entries = keep
        self._logged = {k for k in self._logged if k[0] != committed_task}
        self.stats.frees += freed
        return freed

    def pop_entries_of(self, squashed_task: int) -> list[LogEntry]:
        """Remove and return ``squashed_task``'s entries, newest first.

        The engine replays the returned entries (across all processors, in
        strict reverse task order) to revert the future state to the point
        before the squashed task ran.
        """
        mine = [e for e in self._entries if e.overwriting_task == squashed_task]
        if mine:
            self._entries = [e for e in self._entries
                             if e.overwriting_task != squashed_task]
            self._logged = {k for k in self._logged if k[0] != squashed_task}
            self.stats.restores += len(mine)
        return list(reversed(mine))

    def entries(self) -> tuple[LogEntry, ...]:
        """All live entries in append order (read-only snapshot)."""
        return tuple(self._entries)

    def entries_of(self, task_id: int) -> list[LogEntry]:
        """Live log entries belonging to ``task_id``, oldest first."""
        return [e for e in self._entries if e.overwriting_task == task_id]

    def __len__(self) -> int:
        return len(self._entries)
