"""Memory system substrate: version caches, main memory, overflow, undo log."""

from repro.memsys.address import line_of, word_in_line, words_of_line
from repro.memsys.cache import ARCH_TASK_ID, CacheLine, CacheStats, VersionCache
from repro.memsys.mainmem import MainMemory, MemoryStats
from repro.memsys.overflow import OverflowArea, OverflowStats
from repro.memsys.undolog import LogEntry, UndoLog, UndoLogStats

__all__ = [
    "ARCH_TASK_ID",
    "CacheLine",
    "CacheStats",
    "LogEntry",
    "MainMemory",
    "MemoryStats",
    "OverflowArea",
    "OverflowStats",
    "UndoLog",
    "UndoLogStats",
    "VersionCache",
    "line_of",
    "word_in_line",
    "words_of_line",
]
