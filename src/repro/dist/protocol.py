"""Wire protocol of the distributed sweep fleet.

One frame format, both directions, over plain TCP: an 8-byte preamble of
two big-endian ``u32`` lengths (header, blob), a compact-JSON *header*
object carrying the frame type and its metadata, and an opaque binary
*blob* — zlib-compressed pickled job chunks on the way out, concatenated
zlib-compressed result payloads on the way back. The framing is the same
length-prefixed style the service's chunked JSONL stream uses, kept
deliberately tiny so a worker can be implemented in a page of blocking
socket code (:mod:`repro.dist.worker`) and the coordinator in one
asyncio handler (:mod:`repro.dist.coordinator`).

Frame types (full contract in ``docs/distributed.md``):

===============  =========  ===========================================
Type             Direction  Meaning
===============  =========  ===========================================
``register``     w -> c     hello + :func:`worker_fingerprint`
``registered``   c -> w     accepted; worker id + heartbeat interval
``refused``      c -> w     fingerprint rejected (engine mismatch)
``pull``         w -> c     ready for the next chunk
``chunk``        c -> w     a chunk assignment; blob = pickled jobs
``result``       w -> c     chunk finished; blob = packed payloads
``error``        w -> c     chunk failed; coordinator requeues it
``heartbeat``    w -> c     liveness (any frame also refreshes it)
``bye``          w -> c     graceful drain; in-flight work requeues
``shutdown``     c -> w     no more work ever; worker exits
===============  =========  ===========================================

Trust model: the fleet protocol carries *pickled* job objects, so a
coordinator and its workers must live in one trust domain (your own
hosts, your own CI runner) — exactly like the ``ProcessPoolExecutor``
path it replaces, and unlike the hardened public HTTP API in
:mod:`repro.service`. Never point a worker at an untrusted coordinator.
"""

from __future__ import annotations

import json
import pickle
import platform
import socket
import struct
import zlib
from typing import Any, Iterable, Sequence

from repro.errors import ReproError

#: Protocol revision, carried in ``register``/``registered`` frames.
#: Bumped on any incompatible frame change; a coordinator refuses
#: workers speaking a different revision.
PROTOCOL_VERSION = 1

#: Hard bound on one frame (header + blob). A full result chunk of
#: compressed payloads is a few hundred KB; 64 MiB is generosity, and
#: anything beyond it means a corrupt or hostile peer.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: The 8-byte frame preamble: header length, blob length (big-endian).
_PREAMBLE = struct.Struct("!II")


class ProtocolError(ReproError):
    """A malformed, oversized, or out-of-contract fleet frame."""


def worker_fingerprint() -> dict[str, Any]:
    """The identity a worker registers with (and results carry).

    Captures everything that could make two hosts compute different
    bytes for the same job: the engine version (refused outright on
    mismatch) plus the python version and platform (recorded, and
    surfaced in any digest-divergence refusal so the operator can see
    *which* host disagreed).
    """
    from repro.core.engine import ENGINE_VERSION

    return {
        "engine_version": ENGINE_VERSION,
        "protocol_version": PROTOCOL_VERSION,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host": socket.gethostname(),
    }


# ----------------------------------------------------------------------
# Frame encode/decode (transport-independent)
# ----------------------------------------------------------------------
def encode_frame(header: dict[str, Any], blob: bytes = b"") -> bytes:
    """Serialize one frame to its wire bytes."""
    head = json.dumps(header, separators=(",", ":")).encode()
    if len(head) + len(blob) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(head) + len(blob)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return _PREAMBLE.pack(len(head), len(blob)) + head + blob


def decode_preamble(preamble: bytes) -> tuple[int, int]:
    """Split the 8-byte preamble into (header length, blob length)."""
    if len(preamble) != _PREAMBLE.size:
        raise ProtocolError(
            f"truncated frame preamble ({len(preamble)} bytes)")
    head_len, blob_len = _PREAMBLE.unpack(preamble)
    if head_len + blob_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {head_len + blob_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return head_len, blob_len


def decode_header(raw: bytes) -> dict[str, Any]:
    """Decode a frame header; anything but a JSON object with a string
    ``type`` is a protocol error."""
    try:
        header = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame header is not valid JSON: {exc}")
    if not isinstance(header, dict) or not isinstance(
            header.get("type"), str):
        raise ProtocolError("frame header must be an object with a "
                            "string 'type'")
    return header


# ----------------------------------------------------------------------
# Async transport (coordinator side)
# ----------------------------------------------------------------------
async def read_frame(reader: "Any") -> tuple[dict[str, Any], bytes]:
    """Read one frame off an :class:`asyncio.StreamReader`.

    Raises :class:`asyncio.IncompleteReadError` on a clean or abrupt
    close (the coordinator treats both as worker death) and
    :class:`ProtocolError` on malformed framing.
    """
    head_len, blob_len = decode_preamble(
        await reader.readexactly(_PREAMBLE.size))
    header = decode_header(await reader.readexactly(head_len))
    blob = await reader.readexactly(blob_len) if blob_len else b""
    return header, blob


async def write_frame(writer: "Any", header: dict[str, Any],
                      blob: bytes = b"") -> None:
    """Write one frame to an :class:`asyncio.StreamWriter` and drain."""
    writer.write(encode_frame(header, blob))
    await writer.drain()


# ----------------------------------------------------------------------
# Blocking transport (worker side)
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, header: dict[str, Any],
               blob: bytes = b"") -> None:
    """Send one frame on a blocking socket."""
    sock.sendall(encode_frame(header, blob))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes, riding out socket timeouts mid-read.

    A timeout with *zero* bytes consumed raises :class:`TimeoutError`
    (the caller's idle tick); once any byte of a frame has arrived the
    read keeps going until the frame completes, so an idle-timeout can
    never desynchronize the stream. A peer close mid-read raises
    :class:`ConnectionError`.
    """
    parts: list[bytes] = []
    got = 0
    while got < n:
        try:
            piece = sock.recv(n - got)
        except (socket.timeout, TimeoutError):
            if got == 0:
                raise TimeoutError("idle")
            continue
        if not piece:
            raise ConnectionError("connection closed mid-frame")
        parts.append(piece)
        got += len(piece)
    return b"".join(parts)


def recv_frame(sock: socket.socket) -> tuple[dict[str, Any], bytes]:
    """Read one frame from a blocking socket.

    Raises :class:`TimeoutError` if the socket's timeout elapses with no
    frame started (so a draining worker can poll its stop flag), and
    :class:`ConnectionError` once the peer is gone.
    """
    head_len, blob_len = decode_preamble(
        _recv_exact(sock, _PREAMBLE.size))
    header = decode_header(_recv_exact(sock, head_len))
    blob = _recv_exact(sock, blob_len) if blob_len else b""
    return header, blob


# ----------------------------------------------------------------------
# Chunk and result payload packing
# ----------------------------------------------------------------------
def pack_jobs(jobs: Sequence[Any]) -> bytes:
    """A chunk's blob: the pickled job list, zlib-compressed.

    The same picklability contract the process-pool path relies on; the
    compression level matches the runner's worker payloads (speed over
    ratio — the jobs are small).
    """
    return zlib.compress(pickle.dumps(list(jobs)), 1)


def unpack_jobs(blob: bytes) -> list[Any]:
    """Decode a chunk blob back into its job list."""
    try:
        jobs = pickle.loads(zlib.decompress(blob))
    except Exception as exc:  # noqa: BLE001 - any corruption is protocol
        raise ProtocolError(f"undecodable job chunk: {exc}")
    if not isinstance(jobs, list):
        raise ProtocolError("job chunk did not decode to a list")
    return jobs


def pack_results(
    results: Iterable[tuple[str, str, str, bytes]],
) -> tuple[list[dict[str, Any]], bytes]:
    """Pack per-job result envelopes into (header entries, blob).

    ``results`` yields ``(key, digest, source, zraw)`` with ``zraw`` the
    zlib-compressed canonical payload bytes. The header entry carries
    the key, the :func:`~repro.runner.runner.canonical_payload_digest`
    of the *decompressed* payload, where the bytes came from
    (``computed`` or ``cache``), and the compressed length; the blob is
    the concatenation, split back apart by those lengths.
    """
    entries: list[dict[str, Any]] = []
    blobs: list[bytes] = []
    for key, digest, source, zraw in results:
        entries.append({"key": key, "digest": digest, "source": source,
                        "length": len(zraw)})
        blobs.append(zraw)
    return entries, b"".join(blobs)


def unpack_results(
    entries: Sequence[dict[str, Any]], blob: bytes,
) -> list[tuple[str, str, str, bytes]]:
    """Split a result frame back into ``(key, digest, source, zraw)``."""
    out: list[tuple[str, str, str, bytes]] = []
    offset = 0
    for entry in entries:
        try:
            key = entry["key"]
            digest = entry["digest"]
            source = entry["source"]
            length = int(entry["length"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed result entry {entry!r}: {exc}")
        if length < 0 or offset + length > len(blob):
            raise ProtocolError(
                f"result entry for {key!r} overruns the frame blob")
        out.append((key, digest, source, blob[offset:offset + length]))
        offset += length
    if offset != len(blob):
        raise ProtocolError(
            f"{len(blob) - offset} trailing bytes after the last result")
    return out
