"""The dispatch seam: how a batch of cache-miss jobs gets computed.

:class:`~repro.runner.runner.SweepRunner` resolves every job through its
cache tiers and single-flight registry, then hands the residue — the
jobs that actually need computing — to a :class:`Dispatcher`. The
dispatcher decides *where* the compute happens:

* :class:`LocalPoolDispatcher` — today's path, extracted verbatim: a
  chunked :class:`~concurrent.futures.ProcessPoolExecutor` fan-out with
  a serial in-process fallback for small batches, ``jobs=1``, or
  sandboxes where pools cannot start.
* :class:`~repro.dist.coordinator.FleetDispatcher` — the distributed
  backend: the same zlib-compressed chunks shipped to a fleet of
  remote workers over the TCP work-queue protocol
  (:mod:`repro.dist.protocol`).

The contract is deliberately the same one the runner's ``_compute``
always had: ``compute(pending, on_result)`` delivers ``(key, payload
bytes)`` pairs as they land, at most once per key, and the payload bytes
are the canonical JSON serialization — so any dispatcher is
bit-identical with any other by construction, and the runner's cache
stores and progress streams work unchanged.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

#: ``(key, job)`` pairs the runner asks a dispatcher to compute.
PendingJobs = Sequence[tuple[str, Any]]
#: Delivery callback: ``on_result(key, payload_bytes)``.
ResultSink = Callable[[str, bytes], None]


@runtime_checkable
class Dispatcher(Protocol):
    """Backend protocol for computing a batch of cache-miss jobs.

    Implementations must call ``on_result`` at most once per distinct
    key, from the calling thread, with the *uncompressed* canonical
    payload bytes — the same bytes
    :func:`repro.runner.runner.payload_from_result` +
    ``json.dumps`` produce in-process.
    """

    def compute(self, pending: PendingJobs,
                on_result: ResultSink) -> None:
        """Execute every pending job, delivering payloads as they land."""
        ...

    def describe(self) -> str:
        """Human-readable backend description (for stats endpoints)."""
        ...


@dataclass
class LocalPoolStats:
    """Counters for the in-process/pool dispatch path."""

    #: Batches that went through the process pool.
    pool_batches: int = 0
    #: Chunks submitted to the pool.
    chunks: int = 0
    #: Jobs computed (pool and serial combined).
    jobs: int = 0
    #: Batches that ran serially (small batch, ``jobs=1``, or fallback).
    serial_batches: int = 0
    #: Pool startups that failed and degraded to the serial path.
    pool_failures: int = 0

    def to_dict(self) -> dict[str, int]:
        """JSON-ready counter snapshot (for ``/v1/cache/stats``)."""
        return {"pool_batches": self.pool_batches, "chunks": self.chunks,
                "jobs": self.jobs, "serial_batches": self.serial_batches,
                "pool_failures": self.pool_failures}


class LocalPoolDispatcher:
    """The single-host dispatcher: chunked process pool, serial fallback.

    This is the execution path :class:`~repro.runner.runner.SweepRunner`
    has always had, lifted behind the :class:`Dispatcher` seam so the
    fleet backend can slot in beside it. Behavior is unchanged: batches
    larger than one chunk (and ``jobs > 1``) fan out across a
    :class:`~concurrent.futures.ProcessPoolExecutor` in chunks of
    ``chunk_size`` jobs, everything else — including a pool that fails
    to start in a constrained sandbox — runs serially in-process.
    """

    def __init__(self, jobs: int | None = None,
                 chunk_size: int | None = None) -> None:
        from repro.runner.runner import DEFAULT_CHUNK_SIZE, default_jobs

        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            self.jobs = 1
        self.chunk_size = (chunk_size if chunk_size is not None
                           else DEFAULT_CHUNK_SIZE)
        if self.chunk_size < 1:
            self.chunk_size = 1
        self.stats = LocalPoolStats()

    def describe(self) -> str:
        """``local-pool:<workers>x<chunk_size>``."""
        return f"local-pool:{self.jobs}x{self.chunk_size}"

    def compute(self, pending: PendingJobs,
                on_result: ResultSink) -> None:
        """Execute the batch: chunked pool when it pays, else serial.

        ``on_result`` is called at most once per key: if the pool dies
        part-way through collection and the serial fallback re-runs the
        batch, already delivered keys are skipped.
        """
        from repro.runner.runner import (
            _encode_payload,
            _worker_chunk,
            execute_job,
            payload_from_result,
        )

        delivered: set[str] = set()

        def _deliver(key: str, raw: bytes) -> None:
            if key not in delivered:
                delivered.add(key)
                self.stats.jobs += 1
                on_result(key, raw)

        if self.jobs > 1 and len(pending) > self.chunk_size:
            chunk_size = self.chunk_size
            job_list = [job for _key, job in pending]
            chunks = [job_list[i:i + chunk_size]
                      for i in range(0, len(job_list), chunk_size)]
            try:
                with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(chunks))
                ) as pool:
                    self.stats.pool_batches += 1
                    self.stats.chunks += len(chunks)
                    for chunk_result in pool.map(_worker_chunk, chunks):
                        for key, raw in chunk_result:
                            _deliver(key, zlib.decompress(raw))
                return
            except (OSError, ImportError):
                # Pool creation can fail in constrained sandboxes
                # (no /dev/shm, fork limits); fall back to serial.
                self.stats.pool_failures += 1
        self.stats.serial_batches += 1
        for key, job in pending:
            if key in delivered:
                continue
            _deliver(
                key, _encode_payload(payload_from_result(execute_job(job)))
            )
