"""Distributed sweep dispatch: a worker fleet behind the result cache.

The package splits along the wire:

* :mod:`repro.dist.protocol` — the length-prefixed TCP frame format,
  job/result packing, and the worker fingerprint.
* :mod:`repro.dist.dispatch` — the :class:`Dispatcher` seam the
  :class:`~repro.runner.runner.SweepRunner` computes through, plus the
  extracted single-host :class:`LocalPoolDispatcher`.
* :mod:`repro.dist.coordinator` — the asyncio work-queue server
  (:class:`FleetCoordinator`) and its runner-facing adapter
  (:class:`FleetDispatcher`): requeue-on-death, heartbeat eviction,
  capped backoff, fleet-wide single-compute, digest cross-checks.
* :mod:`repro.dist.worker` — the blocking pull/compute/push agent
  behind ``repro-tls worker --connect``, with cache short-circuiting
  and graceful SIGTERM drain.

See ``docs/distributed.md`` for the full protocol and fault contract.
"""

from repro.dist.coordinator import (
    FleetCoordinator,
    FleetDispatcher,
    FleetDivergenceError,
    FleetError,
    FleetStats,
)
from repro.dist.dispatch import (
    Dispatcher,
    LocalPoolDispatcher,
    LocalPoolStats,
)
from repro.dist.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    worker_fingerprint,
)
from repro.dist.worker import (
    WorkerAgent,
    WorkerRefusedError,
    parse_address,
    spawn_local_workers,
)

__all__ = [
    "Dispatcher",
    "FleetCoordinator",
    "FleetDispatcher",
    "FleetDivergenceError",
    "FleetError",
    "FleetStats",
    "LocalPoolDispatcher",
    "LocalPoolStats",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "WorkerAgent",
    "WorkerRefusedError",
    "parse_address",
    "spawn_local_workers",
    "worker_fingerprint",
]
