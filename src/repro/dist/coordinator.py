"""Fleet coordinator: a TCP work-queue over the content-addressed cache.

:class:`FleetCoordinator` is the server half of the distributed sweep
subsystem. It runs an asyncio TCP server on a background thread (the
same shape as :class:`repro.service.http.ServiceThread`), accepts
:mod:`repro.dist.worker` registrations, and feeds them chunks of
simulation jobs pulled from a shared ready-queue. Robustness is the
point, not an afterthought:

* **Worker death and missed heartbeats requeue work.** Every frame a
  worker sends refreshes its liveness; a worker holding a chunk that
  goes silent past the heartbeat timeout — or whose connection drops —
  has its chunk requeued with capped exponential backoff. Chunks also
  carry a per-assignment timeout, so a wedged (but chatty) worker
  cannot pin a cell forever.
* **Identical keys compute once fleet-wide.** The coordinator keys all
  bookkeeping by the job's content address: if two concurrent sweeps
  (or a requeue race) want the same cell, one computation feeds every
  waiter, and late duplicate results are discarded — after the digest
  cross-check below.
* **Silently-divergent fleets are refused.** Every result envelope
  carries the canonical-result digest and the worker's fingerprint
  (python version, platform, ``ENGINE_VERSION``). Registration already
  refuses engine-version mismatches outright; beyond that, whenever two
  workers ever compute the *same* key, their digests are cross-checked
  — a mismatch poisons the coordinator, fails every active sweep with
  :class:`FleetDivergenceError` naming both hosts, and refuses all
  further work. A heterogeneous fleet must prove bit-identity to stay.

:class:`FleetDispatcher` is the runner-facing adapter: it implements
the :class:`~repro.dist.dispatch.Dispatcher` protocol over a
coordinator it owns, so ``SweepRunner(dispatcher=FleetDispatcher(...))``
swaps multiprocess fan-out for fleet fan-out with no other change —
results stay bit-identical by construction because workers run the very
same ``execute_job`` + canonical serialization the serial path runs.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.dist.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    pack_jobs,
    read_frame,
    unpack_results,
    worker_fingerprint,
    write_frame,
)
from repro.errors import ReproError

#: Default seconds between required worker heartbeats (sent to workers
#: in the ``registered`` frame).
DEFAULT_HEARTBEAT_INTERVAL = 1.0
#: Default seconds of silence after which a worker holding a chunk is
#: presumed dead and evicted.
DEFAULT_HEARTBEAT_TIMEOUT = 10.0
#: Default per-assignment bound on one chunk's execution.
DEFAULT_CHUNK_TIMEOUT = 600.0
#: Default cap on how many times one chunk may be (re)attempted before
#: the sweep is failed.
DEFAULT_MAX_ATTEMPTS = 4
#: Exponential requeue backoff: ``base * 2**(attempt-1)`` seconds,
#: capped at ``DEFAULT_BACKOFF_CAP``.
DEFAULT_BACKOFF_BASE = 0.25
DEFAULT_BACKOFF_CAP = 5.0
#: Bound on the fleet-wide key -> digest registry (entries are ~100
#: bytes; the bound only matters for very long-lived coordinators).
MAX_DIGEST_REGISTRY = 65536


class FleetError(ReproError):
    """A fleet-level dispatch failure (no workers, exhausted retries)."""


class FleetDivergenceError(FleetError):
    """Two workers produced different bytes for the same job.

    Raised to every active sweep and latched: a coordinator that has
    observed divergence refuses all further work, because any result
    from such a fleet could be the wrong one.
    """


@dataclass
class FleetStats:
    """Counters describing the fleet's lifetime activity."""

    #: Workers accepted through registration.
    workers_registered: int = 0
    #: Registrations refused (engine/protocol version mismatch).
    workers_refused: int = 0
    #: Workers evicted (connection lost or heartbeat missed) while
    #: holding work.
    workers_lost: int = 0
    #: Chunk assignments sent to workers (requeues assign again).
    chunks_dispatched: int = 0
    #: Chunks requeued after a failure/timeout/death.
    chunks_requeued: int = 0
    #: Chunks abandoned after exhausting their attempts.
    chunks_failed: int = 0
    #: Result envelopes accepted and delivered to waiters.
    results_received: int = 0
    #: Late results for keys that were already delivered (requeue races).
    duplicate_results: int = 0
    #: Results a worker served from its local cache tier instead of
    #: computing (the warm-key short circuit).
    cache_short_circuits: int = 0
    #: Keys that joined an already in-flight computation instead of
    #: dispatching again (fleet-wide single-compute).
    keys_joined: int = 0
    #: Digest cross-check failures (each one poisons the coordinator).
    digest_mismatches: int = 0

    def to_dict(self) -> dict[str, int]:
        """JSON-ready counter snapshot (for ``/v1/cache/stats``)."""
        return {
            "workers_registered": self.workers_registered,
            "workers_refused": self.workers_refused,
            "workers_lost": self.workers_lost,
            "chunks_dispatched": self.chunks_dispatched,
            "chunks_requeued": self.chunks_requeued,
            "chunks_failed": self.chunks_failed,
            "results_received": self.results_received,
            "duplicate_results": self.duplicate_results,
            "cache_short_circuits": self.cache_short_circuits,
            "keys_joined": self.keys_joined,
            "digest_mismatches": self.digest_mismatches,
        }


class _Chunk:
    """One dispatchable unit of work: a few (key, job) pairs."""

    __slots__ = ("chunk_id", "items", "pending", "attempts",
                 "assigned_to", "assigned_at", "dead")

    def __init__(self, chunk_id: int,
                 items: list[tuple[str, Any]]) -> None:
        self.chunk_id = chunk_id
        self.items = items
        #: Keys of this chunk not yet delivered anywhere.
        self.pending = {key for key, _job in items}
        self.attempts = 0
        self.assigned_to: "_Worker | None" = None
        self.assigned_at: float | None = None
        #: Set when the chunk's sweep failed; skipped on dequeue.
        self.dead = False


class _Worker:
    """Coordinator-side state for one registered worker connection."""

    __slots__ = ("worker_id", "writer", "fingerprint", "last_seen",
                 "inflight")

    def __init__(self, worker_id: str, writer: asyncio.StreamWriter,
                 fingerprint: dict[str, Any], now: float) -> None:
        self.worker_id = worker_id
        self.writer = writer
        self.fingerprint = fingerprint
        self.last_seen = now
        self.inflight: _Chunk | None = None

    @property
    def name(self) -> str:
        """``w3@host (py 3.12.1)`` — the label divergence reports use."""
        return (f"{self.worker_id}@{self.fingerprint.get('host', '?')} "
                f"(py {self.fingerprint.get('python', '?')})")


class _ComputeCall:
    """One blocking ``execute`` call waiting on a set of keys.

    The loop thread feeds ``(kind, key, payload)`` tuples into the
    thread-safe queue; the calling thread drains it. ``fail`` is
    idempotent so a poisoned fleet and a chunk failure cannot race into
    delivering two exceptions.
    """

    __slots__ = ("keys", "queue", "failed")

    def __init__(self, keys: Sequence[str]) -> None:
        self.keys = list(keys)
        self.queue: "queue.Queue[tuple[str, str | None, Any]]" = (
            queue.Queue())
        self.failed = False

    def offer(self, key: str, zraw: bytes) -> None:
        """Deliver one key's compressed payload (loop thread)."""
        self.queue.put(("result", key, zraw))

    def fail(self, error: BaseException) -> None:
        """Deliver a terminal failure once (loop thread)."""
        if not self.failed:
            self.failed = True
            self.queue.put(("fail", None, error))


class FleetCoordinator:
    """The work-queue server a worker fleet connects to."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 chunk_size: int | None = None,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                 chunk_timeout: float = DEFAULT_CHUNK_TIMEOUT,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 backoff_base: float = DEFAULT_BACKOFF_BASE,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP,
                 result_timeout: float = 600.0) -> None:
        from repro.runner.runner import DEFAULT_CHUNK_SIZE

        self.host = host
        self.port = port
        self.chunk_size = max(1, chunk_size if chunk_size is not None
                              else DEFAULT_CHUNK_SIZE)
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.chunk_timeout = chunk_timeout
        self.max_attempts = max(1, max_attempts)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.result_timeout = result_timeout
        self.stats = FleetStats()

        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.Server | None = None
        self._ready = threading.Event()
        self._start_error: BaseException | None = None
        self._queue: asyncio.Queue[_Chunk] | None = None
        self._workers: dict[str, _Worker] = {}
        self._worker_seq = 0
        self._chunk_seq = 0
        #: key -> the chunk currently responsible for computing it.
        self._inflight: dict[str, _Chunk] = {}
        #: key -> calls waiting on it (possibly from several sweeps).
        self._waiters: dict[str, list[_ComputeCall]] = {}
        #: Every call with undelivered keys (for poison/stop fan-out).
        self._calls: set[_ComputeCall] = set()
        #: key -> (digest, worker name): the cross-check registry.
        self._digests: OrderedDict[str, tuple[str, str]] = OrderedDict()
        self._poisoned: str | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FleetCoordinator":
        """Bind the server on a background loop thread; returns self."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-tls-fleet", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise FleetError("fleet coordinator failed to start")
        if self._start_error is not None:
            raise FleetError(
                f"fleet coordinator failed to bind "
                f"{self.host}:{self.port}: {self._start_error}")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - bind failures
            self._start_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        try:
            self._server = await asyncio.start_server(
                self._client, self.host, self.port)
        except OSError as exc:
            self._start_error = exc
            self._ready.set()
            return
        self.port = self._server.sockets[0].getsockname()[1]
        monitor = self._loop.create_task(self._monitor())
        self._ready.set()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            monitor.cancel()

    def stop(self) -> None:
        """Shut the coordinator down, failing any active sweeps."""
        loop = self._loop
        if loop is not None and self._server is not None:
            server = self._server

            def _shutdown() -> None:
                self._fail_everything(
                    FleetError("fleet coordinator stopped"))
                server.close()
                for task in asyncio.all_tasks(loop):
                    task.cancel()

            try:
                loop.call_soon_threadsafe(_shutdown)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    @property
    def address(self) -> str:
        """``host:port`` of the bound server."""
        return f"{self.host}:{self.port}"

    @property
    def worker_count(self) -> int:
        """Registered workers currently connected."""
        return len(self._workers)

    @property
    def poisoned(self) -> str | None:
        """The divergence reason, if this fleet has been refused."""
        return self._poisoned

    def wait_for_workers(self, n: int, timeout: float) -> None:
        """Block until ``n`` workers are registered (or raise)."""
        deadline = time.monotonic() + timeout
        while self.worker_count < n:
            if time.monotonic() > deadline:
                raise FleetError(
                    f"only {self.worker_count}/{n} fleet workers "
                    f"registered within {timeout:.0f}s on {self.address}")
            time.sleep(0.02)

    # ------------------------------------------------------------------
    # Blocking execution (called from the dispatcher thread)
    # ------------------------------------------------------------------
    def execute(self, pending: Sequence[tuple[str, Any]],
                deliver: Callable[[str, bytes], None]) -> None:
        """Compute every pending job on the fleet, delivering
        ``(key, zlib-compressed payload bytes)`` pairs as they land.

        Blocks until all keys are delivered; raises :class:`FleetError`
        on exhausted retries / timeout and
        :class:`FleetDivergenceError` if the fleet is (or becomes)
        digest-poisoned.
        """
        if self._loop is None:
            raise FleetError("fleet coordinator is not started")
        call = _ComputeCall([key for key, _job in pending])
        self._loop.call_soon_threadsafe(self._submit, list(pending), call)
        remaining = set(call.keys)
        while remaining:
            try:
                kind, key, payload = call.queue.get(
                    timeout=self.result_timeout)
            except queue.Empty:
                raise FleetError(
                    f"no fleet result within {self.result_timeout:.0f}s "
                    f"({len(remaining)} keys outstanding)")
            if kind == "fail":
                raise payload
            if key in remaining:
                remaining.discard(key)
                deliver(key, payload)

    # ------------------------------------------------------------------
    # Loop-thread scheduling
    # ------------------------------------------------------------------
    def _submit(self, pending: list[tuple[str, Any]],
                call: _ComputeCall) -> None:
        """Enqueue a sweep's jobs, joining keys already in flight."""
        if self._poisoned is not None:
            call.fail(FleetDivergenceError(self._poisoned))
            return
        self._calls.add(call)
        fresh: list[tuple[str, Any]] = []
        for key, job in pending:
            if key in self._inflight:
                self.stats.keys_joined += 1
                self._waiters[key].append(call)
                continue
            self._waiters.setdefault(key, []).append(call)
            fresh.append((key, job))
        for start in range(0, len(fresh), self.chunk_size):
            self._chunk_seq += 1
            chunk = _Chunk(self._chunk_seq,
                           fresh[start:start + self.chunk_size])
            for key in chunk.pending:
                self._inflight[key] = chunk
            assert self._queue is not None
            self._queue.put_nowait(chunk)

    def _backoff_delay(self, attempts: int) -> float:
        """Requeue delay after the ``attempts``-th failed attempt."""
        return min(self.backoff_base * (2 ** max(attempts - 1, 0)),
                   self.backoff_cap)

    def _requeue(self, chunk: _Chunk | None, *, penalty: bool,
                 why: str) -> None:
        """Put a chunk back on the queue (or fail it past the cap)."""
        if chunk is None or chunk.dead or not chunk.pending:
            return
        if chunk.assigned_to is not None:
            if chunk.assigned_to.inflight is chunk:
                chunk.assigned_to.inflight = None
            chunk.assigned_to = None
        chunk.assigned_at = None
        if not penalty:
            assert self._queue is not None
            self._queue.put_nowait(chunk)
            return
        chunk.attempts += 1
        self.stats.chunks_requeued += 1
        if chunk.attempts >= self.max_attempts:
            self.stats.chunks_failed += 1
            chunk.dead = True
            self._fail_keys(
                chunk.pending,
                FleetError(
                    f"chunk {chunk.chunk_id} abandoned after "
                    f"{chunk.attempts} attempts: {why}"))
            return
        assert self._loop is not None and self._queue is not None
        self._loop.call_later(self._backoff_delay(chunk.attempts),
                              self._queue.put_nowait, chunk)

    def _fail_keys(self, keys: Sequence[str],
                   error: BaseException) -> None:
        """Fail every call waiting on any of ``keys``."""
        for key in list(keys):
            chunk = self._inflight.pop(key, None)
            if chunk is not None:
                chunk.pending.discard(key)
            for call in self._waiters.pop(key, ()):  # noqa: B905
                call.fail(error)
                self._calls.discard(call)

    def _fail_everything(self, error: BaseException) -> None:
        """Fail all active sweeps (stop or poison)."""
        for call in list(self._calls):
            call.fail(error)
        self._calls.clear()
        for chunk in self._inflight.values():
            chunk.dead = True
        self._inflight.clear()
        self._waiters.clear()

    def _poison(self, reason: str) -> None:
        """Latch a divergence: refuse this fleet now and forever."""
        self._poisoned = reason
        self._fail_everything(FleetDivergenceError(reason))

    def _record_result(self, worker: _Worker, key: str, digest: str,
                       source: str, zraw: bytes) -> None:
        """Cross-check and deliver one result envelope."""
        prior = self._digests.get(key)
        if prior is not None and prior[0] != digest:
            self.stats.digest_mismatches += 1
            self._poison(
                f"digest divergence on key {key[:16]}…: worker "
                f"{worker.name} produced {digest[:12]}…, but worker "
                f"{prior[1]} previously produced {prior[0][:12]}… — "
                f"refusing results from this fleet")
            return
        if prior is None:
            self._digests[key] = (digest, worker.name)
            if len(self._digests) > MAX_DIGEST_REGISTRY:
                self._digests.popitem(last=False)
        if source == "cache":
            self.stats.cache_short_circuits += 1
        chunk = self._inflight.pop(key, None)
        if chunk is not None:
            chunk.pending.discard(key)
        waiters = self._waiters.pop(key, None)
        if not waiters:
            self.stats.duplicate_results += 1
            return
        self.stats.results_received += 1
        for call in waiters:
            call.offer(key, zraw)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        worker: _Worker | None = None
        try:
            worker = await self._register(reader, writer)
            if worker is None:
                return
            await self._serve_worker(worker, reader, writer)
        except (asyncio.IncompleteReadError, ConnectionError,
                ProtocolError, asyncio.TimeoutError, OSError):
            if worker is not None and worker.worker_id in self._workers:
                if worker.inflight is not None:
                    self.stats.workers_lost += 1
                self._requeue(worker.inflight, penalty=True,
                              why=f"worker {worker.name} connection lost")
        except asyncio.CancelledError:
            # Coordinator shutdown cancels every connection task; the
            # asyncio streams machinery would log a re-raise as an
            # unhandled exception, and there is nothing left to unwind.
            return
        finally:
            if worker is not None:
                self._workers.pop(worker.worker_id, None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _register(
            self, reader: asyncio.StreamReader,
            writer: asyncio.StreamWriter) -> _Worker | None:
        """Handle the registration handshake; ``None`` if refused."""
        header, _blob = await asyncio.wait_for(
            read_frame(reader), self.heartbeat_timeout)
        if header.get("type") != "register":
            raise ProtocolError(
                f"expected a register frame, got {header.get('type')!r}")
        fingerprint = header.get("fingerprint")
        if not isinstance(fingerprint, dict):
            fingerprint = {}
        mine = worker_fingerprint()
        refusal: str | None = None
        if fingerprint.get("protocol_version") != PROTOCOL_VERSION:
            refusal = (f"protocol version "
                       f"{fingerprint.get('protocol_version')!r} != "
                       f"{PROTOCOL_VERSION}")
        elif fingerprint.get("engine_version") != mine["engine_version"]:
            refusal = (f"engine version "
                       f"{fingerprint.get('engine_version')!r} != "
                       f"{mine['engine_version']!r}: a stale worker "
                       f"would compute non-current results")
        if refusal is not None:
            self.stats.workers_refused += 1
            await write_frame(writer, {"type": "refused",
                                       "reason": refusal})
            return None
        assert self._loop is not None
        self._worker_seq += 1
        worker = _Worker(f"w{self._worker_seq}", writer, fingerprint,
                         self._loop.time())
        self._workers[worker.worker_id] = worker
        self.stats.workers_registered += 1
        await write_frame(writer, {
            "type": "registered",
            "worker_id": worker.worker_id,
            "heartbeat_interval": self.heartbeat_interval,
        })
        return worker

    async def _serve_worker(self, worker: _Worker,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        """The per-connection frame loop after registration."""
        assert self._loop is not None
        read_task: asyncio.Task | None = None
        try:
            while True:
                if read_task is None:
                    read_task = asyncio.ensure_future(read_frame(reader))
                header, blob = await read_task
                read_task = None
                worker.last_seen = self._loop.time()
                kind = header["type"]
                if kind == "heartbeat":
                    continue
                if kind == "pull":
                    chunk, read_task = await self._await_chunk(
                        worker, reader)
                    if chunk is None:
                        # Graceful drain while waiting for work.
                        return
                    await self._assign_chunk(worker, writer, chunk)
                elif kind == "result":
                    self._accept_results(worker, header, blob)
                elif kind == "error":
                    chunk = worker.inflight
                    worker.inflight = None
                    self._requeue(chunk, penalty=True,
                                  why=str(header.get("message",
                                                     "worker error")))
                elif kind == "bye":
                    # Graceful drain: requeue without an attempt
                    # penalty — the work was not at fault.
                    self._requeue(worker.inflight, penalty=False,
                                  why="worker drained")
                    return
                else:
                    raise ProtocolError(
                        f"unexpected frame type {kind!r}")
        finally:
            if read_task is not None:
                read_task.cancel()

    async def _await_chunk(
            self, worker: _Worker, reader: asyncio.StreamReader,
    ) -> tuple[_Chunk | None, asyncio.Task | None]:
        """The next live chunk, while staying responsive to the wire.

        An idle worker waiting for work still sends heartbeats, may
        drain (``bye``), or may vanish entirely; a plain queue wait
        would leave those frames unread until a chunk arrived. Race the
        ready queue against the connection instead. Returns ``(chunk,
        read_task)`` where ``read_task`` is an in-flight, not yet
        consumed read the caller must continue, or ``(None, None)``
        after a graceful ``bye``.
        """
        assert self._loop is not None and self._queue is not None
        get_task: asyncio.Task = asyncio.ensure_future(self._next_chunk())
        read_task: asyncio.Task | None = None
        try:
            while True:
                if read_task is None:
                    read_task = asyncio.ensure_future(read_frame(reader))
                await asyncio.wait({get_task, read_task},
                                   return_when=asyncio.FIRST_COMPLETED)
                if read_task.done():
                    finished, read_task = read_task, None
                    header, _blob = finished.result()  # raises on EOF
                    worker.last_seen = self._loop.time()
                    kind = header["type"]
                    if kind == "bye":
                        self._release_wait_tasks(get_task, None)
                        return None, None
                    if kind != "heartbeat":
                        raise ProtocolError(
                            f"unexpected frame type {kind!r} while "
                            f"awaiting work")
                if get_task.done():
                    chunk = get_task.result()
                    return chunk, read_task
        except BaseException:
            self._release_wait_tasks(get_task, read_task)
            raise

    def _release_wait_tasks(self, get_task: asyncio.Task,
                            read_task: asyncio.Task | None) -> None:
        """Unwind an abandoned chunk wait without losing a chunk."""
        assert self._queue is not None
        if (get_task.done() and not get_task.cancelled()
                and get_task.exception() is None):
            # A chunk landed just as the wait unwound: put it back.
            self._queue.put_nowait(get_task.result())
        else:
            get_task.cancel()
        if read_task is not None:
            read_task.cancel()

    async def _assign_chunk(self, worker: _Worker,
                            writer: asyncio.StreamWriter,
                            chunk: _Chunk) -> None:
        """Hand ``chunk`` to ``worker`` over ``writer``."""
        assert self._loop is not None
        worker.inflight = chunk
        chunk.assigned_to = worker
        chunk.assigned_at = self._loop.time()
        worker.last_seen = chunk.assigned_at
        self.stats.chunks_dispatched += 1
        try:
            await write_frame(
                writer,
                {"type": "chunk", "chunk_id": chunk.chunk_id,
                 "jobs": len(chunk.items)},
                pack_jobs([job for _key, job in chunk.items]))
        except (ConnectionError, OSError):
            self._requeue(chunk, penalty=False,
                          why="assignment send failed")
            raise

    def _accept_results(self, worker: _Worker, header: dict[str, Any],
                        blob: bytes) -> None:
        """Process one ``result`` frame from ``worker``."""
        chunk = worker.inflight
        entries = header.get("results")
        if not isinstance(entries, list):
            raise ProtocolError("result frame carries no "
                                "'results' list")
        for key, digest, source, zraw in unpack_results(entries, blob):
            self._record_result(worker, key, digest, source, zraw)
        if chunk is not None and worker.inflight is chunk:
            worker.inflight = None
            chunk.assigned_to = None
            chunk.assigned_at = None

    async def _next_chunk(self) -> _Chunk:
        """The next live chunk off the ready queue."""
        assert self._queue is not None
        while True:
            chunk = await self._queue.get()
            if not chunk.dead and chunk.pending:
                return chunk

    async def _monitor(self) -> None:
        """Evict silent workers and requeue overdue chunks."""
        interval = max(0.05, min(self.heartbeat_timeout,
                                 self.chunk_timeout) / 4)
        assert self._loop is not None
        while True:
            await asyncio.sleep(interval)
            now = self._loop.time()
            for worker in list(self._workers.values()):
                if worker.inflight is None:
                    continue
                if now - worker.last_seen > self.heartbeat_timeout:
                    self.stats.workers_lost += 1
                    chunk = worker.inflight
                    self._workers.pop(worker.worker_id, None)
                    try:
                        worker.writer.close()
                    except (ConnectionError, OSError):
                        pass
                    self._requeue(chunk, penalty=True,
                                  why=f"worker {worker.name} missed its "
                                      f"heartbeat")
                elif (chunk := worker.inflight) is not None and \
                        chunk.assigned_at is not None and \
                        now - chunk.assigned_at > self.chunk_timeout:
                    worker.inflight = None
                    self._requeue(chunk, penalty=True,
                                  why=f"chunk {chunk.chunk_id} exceeded "
                                      f"its {self.chunk_timeout:.0f}s "
                                      f"timeout on {worker.name}")

    # ------------------------------------------------------------------
    def stats_dict(self) -> dict[str, Any]:
        """Counters + live gauges (for ``/v1/cache/stats``)."""
        return {
            **self.stats.to_dict(),
            "workers_connected": self.worker_count,
            "poisoned": self._poisoned,
        }


class FleetDispatcher:
    """:class:`~repro.dist.dispatch.Dispatcher` over a worker fleet.

    Owns a :class:`FleetCoordinator` (started lazily on first use) and,
    optionally, a set of locally spawned worker subprocesses — the
    one-command path ``repro-tls sweep --dispatch fleet --workers N``
    and the bench harness use. ``compute`` blocks until the fleet has
    delivered every payload, decompressing each worker envelope into
    the canonical payload bytes the runner's cache tiers store.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 min_workers: int = 1, start_timeout: float = 60.0,
                 local_workers: int = 0,
                 worker_cache_dir: str | None = None,
                 **coordinator_options: Any) -> None:
        self.coordinator = FleetCoordinator(host, port,
                                            **coordinator_options)
        self.min_workers = max(1, min_workers)
        self.start_timeout = start_timeout
        self.local_workers = local_workers
        self.worker_cache_dir = worker_cache_dir
        self._procs: list[Any] = []
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> "FleetDispatcher":
        """Bind the coordinator and spawn any requested local workers."""
        if not self._started:
            self.coordinator.start()
            self._started = True
            if self.local_workers:
                from repro.dist.worker import spawn_local_workers

                self._procs = spawn_local_workers(
                    self.coordinator.address, self.local_workers,
                    cache_dir=self.worker_cache_dir)
        return self

    def stop(self) -> None:
        """Stop the coordinator and terminate spawned local workers."""
        for proc in self._procs:
            try:
                proc.terminate()
            except OSError:
                pass
        for proc in self._procs:
            try:
                proc.wait(timeout=10)
            except Exception:  # noqa: BLE001 - best-effort teardown
                proc.kill()
        self._procs = []
        if self._started:
            self.coordinator.stop()
            self._started = False

    def __enter__(self) -> "FleetDispatcher":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()

    @property
    def address(self) -> str:
        """The coordinator's ``host:port``."""
        return self.coordinator.address

    @property
    def stats(self) -> FleetStats:
        """The coordinator's counters."""
        return self.coordinator.stats

    # ------------------------------------------------------------------
    # Dispatcher protocol
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """``fleet:<host>:<port>`` plus the live worker count."""
        return (f"fleet:{self.coordinator.address}"
                f"[{self.coordinator.worker_count} workers]")

    def compute(self, pending: Sequence[tuple[str, Any]],
                on_result: Callable[[str, bytes], None]) -> None:
        """Ship the batch to the fleet; deliver payloads as they land."""
        self.start()
        self.coordinator.wait_for_workers(self.min_workers,
                                          self.start_timeout)
        self.coordinator.execute(
            pending,
            lambda key, zraw: on_result(key, zlib.decompress(zraw)))

    def stats_dict(self) -> dict[str, Any]:
        """Counters + gauges (surfaced in ``/v1/cache/stats``)."""
        return self.coordinator.stats_dict()
