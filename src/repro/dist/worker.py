"""The fleet worker agent: pull chunks, compute, push envelopes.

:class:`WorkerAgent` is the client half of :mod:`repro.dist.protocol` —
deliberately a page of blocking socket code. It connects to a
coordinator, registers with its :func:`~repro.dist.protocol.\
worker_fingerprint` (refused outright on an engine-version mismatch),
then loops: ``pull`` a chunk, execute each job through *exactly* the
pipeline the in-process pool path uses (``execute_job`` →
``payload_from_result`` → compact JSON bytes), and push one ``result``
frame of per-job envelopes. Bit-identity across hosts is therefore by
construction, and each envelope's canonical digest lets the coordinator
prove it (:meth:`FleetCoordinator._record_result
<repro.dist.coordinator.FleetCoordinator>` cross-check).

Two behaviors make the fleet a cache *extension* rather than a cache
bypass:

* **Warm-key short circuit** — a worker given a shared cache directory
  answers warm keys straight from the sharded
  :class:`~repro.runner.cache.ResultCache` (envelope ``source:
  "cache"``) and stores fresh results back, so a fleet sweep leaves the
  same artifacts a local sweep would.
* **Graceful drain** — ``SIGTERM`` (or :meth:`WorkerAgent.request_drain`)
  lets the current chunk finish, sends ``bye`` so in-flight work is
  requeued penalty-free, and exits cleanly.

The ``fail_after_chunks`` / ``forge_digest`` / ``stall_after_pull``
knobs are fault injection for the fleet's test suite — a crashing
worker, a divergent worker, and a silently wedged worker.
"""

from __future__ import annotations

import signal
import socket
import subprocess
import sys
import threading
import time
import zlib
from pathlib import Path
from typing import Any

from repro.dist.protocol import (
    ProtocolError,
    pack_results,
    recv_frame,
    send_frame,
    unpack_jobs,
    worker_fingerprint,
)
from repro.errors import ReproError
from repro.runner.cache import ResultCache

#: How often a blocked ``recv`` wakes up to poll the drain flag.
IDLE_TICK_SECONDS = 0.25


class WorkerRefusedError(ReproError):
    """The coordinator refused this worker's registration."""


def parse_address(address: str) -> tuple[str, int]:
    """Split ``HOST:PORT`` (the ``--connect`` argument) into its parts."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"invalid coordinator address {address!r}: expected HOST:PORT")
    return host, int(port)


class WorkerAgent:
    """One fleet worker: a blocking pull/compute/push loop.

    ``cache`` (a :class:`~repro.runner.cache.ResultCache` or ``None``)
    enables the warm-key short circuit. The fault-injection knobs exist
    for tests: ``fail_after_chunks=N`` drops the connection abruptly
    when handed chunk ``N+1`` (a crash mid-sweep), ``forge_digest``
    reports a bogus canonical digest on every envelope (a divergent
    host), and ``stall_after_pull`` goes completely silent — no
    heartbeats, no result — after accepting a chunk (a wedged host the
    heartbeat monitor must evict).
    """

    def __init__(self, address: str, *,
                 cache: ResultCache | None = None,
                 connect_timeout: float = 30.0,
                 fail_after_chunks: int | None = None,
                 forge_digest: bool = False,
                 stall_after_pull: bool = False,
                 stall_seconds: float = 3600.0) -> None:
        self.host, self.port = parse_address(address)
        self.cache = cache
        self.connect_timeout = connect_timeout
        self.fail_after_chunks = fail_after_chunks
        self.forge_digest = forge_digest
        self.stall_after_pull = stall_after_pull
        self.stall_seconds = stall_seconds
        self.worker_id: str | None = None
        self.chunks_done = 0
        self.jobs_done = 0
        self.cache_hits = 0
        self._drain = threading.Event()
        self._sock: socket.socket | None = None
        #: Serializes result frames against the heartbeat thread.
        self._write_lock = threading.Lock()
        self._hb_stop = threading.Event()

    # ------------------------------------------------------------------
    def request_drain(self) -> None:
        """Finish the current chunk, send ``bye``, and exit the loop.

        Thread- and signal-safe; this is what ``SIGTERM`` calls.
        """
        self._drain.set()

    def install_signal_handlers(self) -> None:
        """Route ``SIGTERM``/``SIGINT`` to a graceful drain.

        Only possible from the main thread (a CPython restriction);
        callers embedding the agent in a thread simply skip this and use
        :meth:`request_drain` directly.
        """
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_args: self.request_drain())

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        """Dial the coordinator, retrying briefly while it binds."""
        deadline = time.monotonic() + self.connect_timeout
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=5.0)
                sock.settimeout(IDLE_TICK_SECONDS)
                return sock
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.1)

    def _register(self, sock: socket.socket) -> float:
        """Handshake; returns the heartbeat interval the coordinator set."""
        with self._write_lock:
            send_frame(sock, {"type": "register",
                              "fingerprint": worker_fingerprint()})
        header, _blob = self._recv(sock)
        if header["type"] == "refused":
            raise WorkerRefusedError(
                f"coordinator refused registration: "
                f"{header.get('reason', 'unspecified')}")
        if header["type"] != "registered":
            raise ProtocolError(
                f"expected registered/refused, got {header['type']!r}")
        self.worker_id = str(header.get("worker_id"))
        return float(header.get("heartbeat_interval", 1.0))

    def _recv(self, sock: socket.socket) -> tuple[dict[str, Any], bytes]:
        """Receive one frame, riding idle ticks to poll the drain flag."""
        while True:
            try:
                return recv_frame(sock)
            except TimeoutError:
                if self._drain.is_set():
                    raise

    def _heartbeat_loop(self, sock: socket.socket,
                        interval: float) -> None:
        """Background liveness: one heartbeat frame per interval."""
        while not self._hb_stop.wait(interval):
            try:
                with self._write_lock:
                    send_frame(sock, {"type": "heartbeat"})
            except OSError:
                return

    # ------------------------------------------------------------------
    def _execute_chunk(
            self, jobs: list[Any]) -> list[tuple[str, str, str, bytes]]:
        """Run one chunk's jobs; returns result envelopes to pack.

        Every job resolves through the cache first (``source: "cache"``)
        and stores its freshly computed payload back, so the fleet and
        the local pool leave identical cache artifacts.
        """
        from repro.runner.runner import (
            _encode_payload,
            canonical_payload_digest,
            execute_job,
            payload_from_result,
        )

        envelopes: list[tuple[str, str, str, bytes]] = []
        for job in jobs:
            key = job.cache_key()
            raw = self.cache.load_raw(key) if self.cache is not None \
                else None
            if raw is not None:
                source = "cache"
                self.cache_hits += 1
            else:
                source = "computed"
                raw = _encode_payload(
                    payload_from_result(execute_job(job)))
                if self.cache is not None:
                    self.cache.store_raw(key, raw)
            digest = ("0" * 64 if self.forge_digest
                      else canonical_payload_digest(raw))
            envelopes.append((key, digest, source, zlib.compress(raw, 1)))
            self.jobs_done += 1
        return envelopes

    def run(self) -> dict[str, Any]:
        """The worker's whole life; returns a summary for logging.

        Exits cleanly when drained, when the coordinator sends
        ``shutdown``, or when the coordinator goes away.
        """
        sock = self._connect()
        self._sock = sock
        heartbeat: threading.Thread | None = None
        try:
            interval = self._register(sock)
            heartbeat = threading.Thread(
                target=self._heartbeat_loop, args=(sock, interval),
                name="repro-tls-worker-heartbeat", daemon=True)
            heartbeat.start()
            while True:
                if self._drain.is_set():
                    with self._write_lock:
                        send_frame(sock, {"type": "bye"})
                    break
                with self._write_lock:
                    send_frame(sock, {"type": "pull"})
                try:
                    header, blob = self._recv(sock)
                except TimeoutError:
                    # Drain requested while waiting for an assignment:
                    # say goodbye so anything racing toward us requeues.
                    with self._write_lock:
                        send_frame(sock, {"type": "bye"})
                    break
                if header["type"] == "shutdown":
                    break
                if header["type"] != "chunk":
                    raise ProtocolError(
                        f"expected a chunk frame, got {header['type']!r}")
                if (self.fail_after_chunks is not None
                        and self.chunks_done >= self.fail_after_chunks):
                    # Fault injection: die abruptly holding this chunk.
                    self._hb_stop.set()
                    sock.close()
                    return self.summary(died=True)
                if self.stall_after_pull:
                    # Fault injection: go silent until evicted.
                    self._hb_stop.set()
                    deadline = time.monotonic() + self.stall_seconds
                    while (time.monotonic() < deadline
                           and not self._drain.is_set()):
                        time.sleep(IDLE_TICK_SECONDS)
                    sock.close()
                    return self.summary(died=True)
                try:
                    envelopes = self._execute_chunk(unpack_jobs(blob))
                except ProtocolError:
                    raise
                except Exception as exc:  # noqa: BLE001 - report upstream
                    with self._write_lock:
                        send_frame(sock, {
                            "type": "error",
                            "chunk_id": header.get("chunk_id"),
                            "message": f"{type(exc).__name__}: {exc}",
                        })
                    continue
                entries, payload = pack_results(envelopes)
                with self._write_lock:
                    send_frame(sock, {
                        "type": "result",
                        "chunk_id": header.get("chunk_id"),
                        "results": entries,
                    }, payload)
                self.chunks_done += 1
        except (ConnectionError, OSError):
            pass  # coordinator gone; nothing left to do
        finally:
            self._hb_stop.set()
            try:
                sock.close()
            except OSError:
                pass
        return self.summary()

    def summary(self, died: bool = False) -> dict[str, Any]:
        """A JSON-ready account of this worker's run."""
        return {
            "worker_id": self.worker_id,
            "chunks": self.chunks_done,
            "jobs": self.jobs_done,
            "cache_hits": self.cache_hits,
            "drained": self._drain.is_set(),
            "died": died,
        }


def spawn_local_workers(address: str, count: int, *,
                        cache_dir: str | Path | None = None,
                        ) -> list[subprocess.Popen]:
    """Launch ``count`` worker subprocesses against a coordinator.

    The one-command localhost-fleet path (``repro-tls sweep --dispatch
    fleet --workers N`` and the dispatch bench) uses this: each worker
    is a real ``repro-tls worker --connect`` process, so the measurement
    and fault behavior match a genuinely remote fleet. The caller owns
    the returned handles (terminate → graceful drain via ``SIGTERM``).
    """
    import os

    import repro

    src_root = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (str(src_root) if not existing
                         else f"{src_root}{os.pathsep}{existing}")
    cmd = [sys.executable, "-m", "repro.analysis.cli", "worker",
           "--connect", address]
    if cache_dir is not None:
        cmd += ["--cache-dir", str(cache_dir)]
    return [subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL)
            for _ in range(count)]
