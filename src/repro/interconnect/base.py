"""Interconnect topologies used by the machine models.

The paper's two machines differ in their interconnect: the CC-NUMA connects
nodes with a 2D mesh (latency grows with protocol hop count), while the CMP
connects L2s and L3/directory banks through a crossbar (all non-local
destinations equidistant). The simulator needs only hop distances — the
per-hop latencies are part of :class:`~repro.core.config.MachineConfig` —
but the topology classes also expose routes and diameters for the ablation
benches and tests.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ConfigurationError


class Topology(abc.ABC):
    """Hop-distance model between nodes of the machine."""

    n_nodes: int

    @abc.abstractmethod
    def hops(self, node_a: int, node_b: int) -> int:
        """Number of network hops between two nodes (0 when equal)."""

    @property
    @abc.abstractmethod
    def diameter(self) -> int:
        """Maximum hop distance between any two nodes."""

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ConfigurationError(
                f"node {node} out of range for {self.n_nodes}-node topology"
            )

    def average_hops(self) -> float:
        """Mean hop distance over all ordered pairs of distinct nodes."""
        if self.n_nodes < 2:
            return 0.0
        total = sum(
            self.hops(a, b)
            for a in range(self.n_nodes)
            for b in range(self.n_nodes)
            if a != b
        )
        return total / (self.n_nodes * (self.n_nodes - 1))


@dataclass(frozen=True)
class Crossbar(Topology):
    """All distinct nodes are one hop apart (the CMP's on-chip crossbar)."""

    n_nodes: int

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ConfigurationError("Crossbar needs at least one node")

    def hops(self, node_a: int, node_b: int) -> int:
        self._check(node_a)
        self._check(node_b)
        return 0 if node_a == node_b else 1

    @property
    def diameter(self) -> int:
        return 0 if self.n_nodes == 1 else 1
