"""Interconnect topologies (2D mesh for CC-NUMA, crossbar for the CMP)."""

from __future__ import annotations

from functools import lru_cache

from repro.interconnect.base import Crossbar, Topology
from repro.interconnect.mesh import Mesh2D

__all__ = ["Topology", "Crossbar", "Mesh2D", "topology"]


@lru_cache(maxsize=None)
def topology(n_nodes: int, mesh_side: int | None) -> Topology:
    """The topology for a machine: a mesh when ``mesh_side`` is set, else a
    crossbar. Cached because :class:`~repro.core.config.MachineConfig`
    queries it per memory operation."""
    if mesh_side is None:
        return Crossbar(n_nodes=n_nodes)
    return Mesh2D(side=mesh_side, n_nodes=n_nodes)
