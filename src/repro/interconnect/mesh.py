"""2D mesh topology for the CC-NUMA machine."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.interconnect.base import Topology


@dataclass(frozen=True)
class Mesh2D(Topology):
    """A ``side`` x ``side`` 2D mesh; hop distance is Manhattan distance.

    Nodes are numbered row-major: node ``i`` sits at
    ``(i // side, i % side)``. ``n_nodes`` may be less than ``side**2``
    (a partially-populated mesh), but every node index must still map onto
    the grid.
    """

    side: int
    n_nodes: int

    def __post_init__(self) -> None:
        if self.side <= 0:
            raise ConfigurationError(f"mesh side must be positive, got {self.side}")
        if not 0 < self.n_nodes <= self.side**2:
            raise ConfigurationError(
                f"{self.n_nodes} nodes do not fit a {self.side}x{self.side} mesh"
            )

    def coordinates(self, node: int) -> tuple[int, int]:
        self._check(node)
        return divmod(node, self.side)

    def hops(self, node_a: int, node_b: int) -> int:
        ax, ay = self.coordinates(node_a)
        bx, by = self.coordinates(node_b)
        return abs(ax - bx) + abs(ay - by)

    @property
    def diameter(self) -> int:
        last = self.n_nodes - 1
        return max(
            self.hops(a, b) for a in (0, last) for b in range(self.n_nodes)
        )

    def route(self, node_a: int, node_b: int) -> list[int]:
        """X-then-Y dimension-ordered route, inclusive of both endpoints."""
        ax, ay = self.coordinates(node_a)
        bx, by = self.coordinates(node_b)
        path = [node_a]
        x, y = ax, ay
        while x != bx:
            x += 1 if bx > x else -1
            path.append(x * self.side + y)
        while y != by:
            y += 1 if by > y else -1
            path.append(x * self.side + y)
        return path
