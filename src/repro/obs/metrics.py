"""Low-overhead metrics for simulation runs: counters and histograms.

A :class:`MetricsHook` attached to a :class:`~repro.core.engine.Simulation`
(via the ``hook`` parameter, see :mod:`repro.core.hooks`) accumulates a
:class:`MetricsRegistry` of named counters and histograms over the run:
squash/restart events, overflow-area spills and refetches, VCL merges,
version-directory lookups, network messages, commit-wait and token-hold
cycles. When no hook is attached the engine pays exactly one predictable
``hook is not None`` branch per event — the metrics layer costs nothing
when disabled, which is what keeps untraced runs bit-identical to
instrumented ones (asserted by ``tests/test_obs.py``).

The hook works by *differencing*: the engine already maintains its
statistics (``sim.traffic``, the violation counters, the directory's
:class:`~repro.tls.versions.DirectoryStats`) unconditionally, so the hook
snapshots them in :meth:`MetricsHook.on_start` and converts per-event
deltas into counter increments and histogram samples. It never mutates
engine state.

On completion the hook freezes the registry into a
:class:`MetricsSnapshot` — counters, histograms, and a per-task table —
and attaches it to ``result.metrics`` (a field excluded from the
canonical serialized form, so cache keys and golden digests are
untouched). :func:`aggregate_by_scheme` folds many snapshots into
per-scheme aggregates for the reproduction report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.core.hooks import SimulationHook

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.engine import Simulation
    from repro.core.results import SimulationResult

#: Default geometric histogram bucket boundaries (cycles). A sample lands
#: in the first bucket whose upper bound is >= the value; the last bucket
#: is open-ended.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)


class Histogram:
    """A fixed-bucket histogram of non-negative samples.

    Tracks per-bucket counts plus the running count/sum/min/max, which is
    all the reproduction report needs; exact quantiles are out of scope.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def mean(self) -> float:
        """Arithmetic mean of the observed samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (exact round-trip via :meth:`from_dict`)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Histogram":
        """Rebuild a histogram serialized with :meth:`to_dict`."""
        hist = cls(tuple(data["bounds"]))
        hist.counts = list(data["counts"])
        hist.count = int(data["count"])
        hist.total = float(data["total"])
        hist.min = float("inf") if data["min"] is None else float(data["min"])
        hist.max = float(data["max"])
        return hist

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s samples into this histogram (same bounds)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)


class MetricsRegistry:
    """Named counters and histograms for one (or many merged) runs."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def observe(self, name: str, value: float,
                bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        """Record ``value`` into histogram ``name`` (creating it)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram(bounds)
            self.histograms[name] = hist
        hist.observe(value)

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self.counters.get(name, 0.0)


@dataclass(frozen=True)
class TaskMetrics:
    """Per-task aggregation row of one instrumented run."""

    task_id: int
    proc_id: int
    squashes: int
    execution_cycles: float
    commit_cycles: float


@dataclass
class MetricsSnapshot:
    """Frozen metrics of one run (or a per-scheme aggregate of many).

    ``runs`` counts how many simulations were folded in — 1 for a single
    instrumented run, more after :func:`aggregate_by_scheme`.
    """

    scheme: str
    workload: str
    counters: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    per_task: list[TaskMetrics] = field(default_factory=list)
    runs: int = 1

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (exact round-trip via :meth:`from_dict`)."""
        return {
            "scheme": self.scheme,
            "workload": self.workload,
            "runs": self.runs,
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self.histograms.items())
            },
            "per_task": [
                [t.task_id, t.proc_id, t.squashes,
                 t.execution_cycles, t.commit_cycles]
                for t in self.per_task
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MetricsSnapshot":
        """Rebuild a snapshot serialized with :meth:`to_dict`."""
        return cls(
            scheme=data["scheme"],
            workload=data["workload"],
            runs=int(data.get("runs", 1)),
            counters={k: float(v) for k, v in data["counters"].items()},
            histograms={
                name: Histogram.from_dict(h)
                for name, h in data["histograms"].items()
            },
            per_task=[
                TaskMetrics(int(row[0]), int(row[1]), int(row[2]),
                            float(row[3]), float(row[4]))
                for row in data["per_task"]
            ],
        )


class MetricsHook(SimulationHook):
    """Engine hook that accumulates a :class:`MetricsRegistry` per run.

    Pure observer: reads engine statistics after each event and writes
    only into its own registry, so an instrumented run is bit-identical
    to a plain one. On finish it attaches a :class:`MetricsSnapshot` to
    ``result.metrics``.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.snapshot: MetricsSnapshot | None = None
        self._last: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Engine-counter sources: (metric name, getter) pairs differenced on
    # every event. All of them are statistics the engine maintains anyway.
    # ------------------------------------------------------------------
    @staticmethod
    def _sources(sim: "Simulation") -> dict[str, float]:
        traffic = sim.traffic
        directory = sim.directory.stats
        return {
            "squash.events": float(sim._violation_events),
            "squash.task_executions": float(sim._squashed_executions),
            "overflow.spills": float(traffic.overflow_spills),
            "overflow.fetches": float(traffic.overflow_fetches),
            "vcl.merges": float(traffic.vcl_merges),
            "memory.line_writebacks": float(traffic.line_writebacks),
            "network.remote_cache_fetches": float(
                traffic.remote_cache_fetches),
            "network.memory_fetches": float(traffic.memory_fetches),
            "directory.reads": float(directory.reads),
            "directory.writes": float(directory.writes),
            "directory.forwarded_reads": float(directory.forwarded_reads),
            "commit.completed": float(sim.commit.next_to_commit),
        }

    def on_start(self, sim: "Simulation") -> None:
        """Snapshot the engine statistics this hook diffs against."""
        self._last = self._sources(sim)

    def after_event(self, sim: "Simulation", now: float) -> None:
        """Convert per-event statistic deltas into counter increments."""
        current = self._sources(sim)
        last = self._last
        registry = self.registry
        squash_delta = (current["squash.task_executions"]
                        - last["squash.task_executions"])
        for name, value in current.items():
            delta = value - last[name]
            if delta:
                registry.inc(name, delta)
        if current["squash.events"] > last["squash.events"]:
            # Squash depth: how many task executions one violation undid.
            registry.observe("squash.depth", squash_delta,
                             bounds=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0))
        self._last = current

    def on_finish(self, sim: "Simulation", result: "SimulationResult") -> None:
        """Fold final statistics and attach the snapshot to the result."""
        from repro.processor.processor import CycleCategory

        registry = self.registry
        registry.inc("cycles.total", result.total_cycles)
        registry.inc("cycles.commit_wait",
                     result.cycles_by_category[CycleCategory.COMMIT_STALL])
        registry.inc("cycles.recovery",
                     result.cycles_by_category[CycleCategory.RECOVERY])
        registry.inc("cycles.token_hold", result.token_hold_cycles)
        registry.inc("cycles.wasted_busy", result.wasted_busy_cycles)
        registry.inc("events.processed", float(result.events_processed))
        for _tid, start, end in result.commit_wavefront:
            registry.observe("commit.token_hold_cycles", end - start)
        per_task = []
        for timing in result.task_timings:
            registry.observe("task.execution_cycles",
                             timing.execution_cycles)
            registry.observe("task.commit_cycles", timing.commit_cycles)
            per_task.append(TaskMetrics(
                task_id=timing.task_id,
                proc_id=timing.proc_id,
                squashes=timing.squashes,
                execution_cycles=timing.execution_cycles,
                commit_cycles=timing.commit_cycles,
            ))
        self.snapshot = MetricsSnapshot(
            scheme=result.scheme.name,
            workload=result.workload_name,
            counters=dict(self.registry.counters),
            histograms=dict(self.registry.histograms),
            per_task=per_task,
        )
        result.metrics = self.snapshot


def aggregate_by_scheme(
    results: Iterable["SimulationResult"],
) -> dict[str, MetricsSnapshot]:
    """Fold instrumented results into one aggregate snapshot per scheme.

    Counters add, histograms merge, and the per-task tables concatenate;
    results without an attached snapshot are skipped. Insertion order
    follows first appearance, so report tables are deterministic.
    """
    merged: dict[str, MetricsSnapshot] = {}
    for result in results:
        snap = getattr(result, "metrics", None)
        if snap is None:
            continue
        agg = merged.get(snap.scheme)
        if agg is None:
            merged[snap.scheme] = MetricsSnapshot(
                scheme=snap.scheme,
                workload="(aggregate)",
                counters=dict(snap.counters),
                histograms={n: Histogram.from_dict(h.to_dict())
                            for n, h in snap.histograms.items()},
                per_task=list(snap.per_task),
                runs=snap.runs,
            )
            continue
        for name, value in snap.counters.items():
            agg.counters[name] = agg.counters.get(name, 0.0) + value
        for name, hist in snap.histograms.items():
            if name in agg.histograms:
                agg.histograms[name].merge(hist)
            else:
                agg.histograms[name] = Histogram.from_dict(hist.to_dict())
        agg.per_task.extend(snap.per_task)
        agg.runs += snap.runs
    return merged
