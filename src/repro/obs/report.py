"""One-command reproduction report: ``repro-tls report``.

Runs (or replays from the result cache) the paper's full 16-cell
machine x scheme grid — the 8 evaluated taxonomy points on both the
CC-NUMA-16 and the CMP-8 — over every application, and renders a
self-contained reproduction report under ``docs/report/``:

* ``index.html`` — everything inline (CSS, SVGs): the Figure 9/10/11
  analogues, the Section 5.4 paper-vs-measured summary, the Table 1/2
  hardware-support matrix, per-cell metrics tables from the
  :mod:`repro.obs.metrics` layer, and pass/fail badges for the paper's
  four headline claims.
* ``report.md`` — the same content as Markdown, figures referenced as
  sibling ``.svg`` files.
* ``figure9.svg`` / ``figure10.svg`` / ``figure11.svg`` — the bar charts.
* ``trace_sample.jsonl`` / ``trace_sample.trace.json`` — a traced
  example run exported through :mod:`repro.obs.trace_export`.

The report is deterministic: it embeds no timestamps or host data, every
number comes from seeded simulations, and float formatting is fixed — so
regenerating from a warm cache reproduces the bytes exactly.
"""

from __future__ import annotations

import html
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.experiments import (
    ExperimentContext,
    Figure10Result,
    SchemeBarsResult,
    run_figure9,
    run_figure10,
    run_figure11,
    run_summary,
)
from repro.analysis.svgplot import scheme_bars_to_svg
from repro.core.config import CMP_8, NUMA_16
from repro.core.engine import ENGINE_VERSION
from repro.core.supports import (
    SUPPORT_DESCRIPTIONS,
    UPGRADE_PATH,
    Support,
    complexity_score,
    required_supports,
)
from repro.core.taxonomy import (
    EVALUATED_SCHEMES,
    MULTI_T_MV_EAGER,
    MULTI_T_MV_FMM,
    MULTI_T_MV_FMM_SW,
    MULTI_T_MV_LAZY,
    MULTI_T_SV_EAGER,
    SINGLE_T_EAGER,
)
from repro.obs.metrics import MetricsSnapshot, aggregate_by_scheme
from repro.obs.trace_export import export_chrome_trace, export_jsonl
from repro.runner.jobs import SimJob, WorkloadSpec
from repro.workloads.apps import APPLICATION_ORDER, APPLICATIONS

#: Default output directory (relative to the invocation cwd).
DEFAULT_REPORT_DIR = "docs/report"

#: Figure 10 apps where the paper itself reports Lazy and FMM diverging.
CLAIM3_EXCEPTIONS = ("P3m", "Euler")

#: Size cap for the shipped trace sample exports.
TRACE_SAMPLE_MAX_BYTES = 262_144


@dataclass(frozen=True)
class ClaimBadge:
    """Pass/fail verdict on one of the paper's headline claims."""

    key: str
    title: str
    paper_claim: str
    measured: str
    passed: bool


def _norm(fig: SchemeBarsResult, app: str, scheme) -> float:
    return fig.cells[app][scheme.name][0]


def evaluate_claims(fig9: SchemeBarsResult, fig10: Figure10Result,
                    fig11: SchemeBarsResult) -> list[ClaimBadge]:
    """Check the paper's four headline claims against the measured grid.

    Thresholds are deliberately loose — the reproduction targets the
    paper's *shape* (orderings, exception apps), not its absolute
    percentages.
    """
    badges = []

    # Claim 1: MultiT&MV buys more than laziness does (Section 5.4).
    mv_gain = fig9.average_reduction(MULTI_T_MV_EAGER, SINGLE_T_EAGER)
    lazy_gain = fig9.average_reduction(MULTI_T_MV_LAZY, MULTI_T_MV_EAGER)
    badges.append(ClaimBadge(
        key="mv-over-laziness",
        title="MultiT&MV beats laziness",
        paper_claim=("Supporting multiple tasks and versions (MultiT&MV) "
                     "reduces execution time more than adding laziness "
                     "(paper: 32% vs 24% on the NUMA)"),
        measured=(f"NUMA: MultiT&MV vs SingleT -{mv_gain:.1%}; "
                  f"laziness on MultiT&MV -{lazy_gain:.1%}"),
        passed=mv_gain > 0 and mv_gain > lazy_gain,
    ))

    # Claim 2: MultiT&SV tracks MultiT&MV except under mostly-privatization
    # access patterns, where it degrades toward SingleT (Section 5.1).
    priv_apps = [a for a in APPLICATION_ORDER
                 if APPLICATIONS[a].paper.priv_pattern == "High"]
    flat_apps = [a for a in APPLICATION_ORDER
                 if APPLICATIONS[a].paper.priv_pattern == "Low"]
    sv_gap_priv = sum(
        _norm(fig9, a, MULTI_T_SV_EAGER) - _norm(fig9, a, MULTI_T_MV_EAGER)
        for a in priv_apps) / len(priv_apps)
    sv_gap_flat = sum(
        _norm(fig9, a, MULTI_T_SV_EAGER) - _norm(fig9, a, MULTI_T_MV_EAGER)
        for a in flat_apps) / len(flat_apps)
    badges.append(ClaimBadge(
        key="sv-tracking",
        title="MultiT&SV tracking behavior",
        paper_claim=("MultiT&SV performs like MultiT&MV except on "
                     "mostly-privatization applications, where the "
                     "single-version limit stalls it back toward SingleT"),
        measured=(f"SV-vs-MV gap (normalized time): "
                  f"{sv_gap_priv:+.2f} on high-priv apps "
                  f"({', '.join(priv_apps)}) vs {sv_gap_flat:+.2f} on "
                  f"low-priv apps ({', '.join(flat_apps)})"),
        passed=sv_gap_priv > sv_gap_flat and sv_gap_flat < 0.10,
    ))

    # Claim 3: Lazy AMM ~ FMM, except P3m (FMM relieves buffer pressure)
    # and Euler (FMM pays for recovery under frequent squashes).
    diffs = {
        app: (_norm(fig10.bars, app, MULTI_T_MV_FMM)
              - _norm(fig10.bars, app, MULTI_T_MV_LAZY))
        for app in APPLICATION_ORDER
    }
    typical = [abs(d) for app, d in diffs.items()
               if app not in CLAIM3_EXCEPTIONS]
    typical_gap = sum(typical) / len(typical)
    exception_gap = max(abs(diffs[a]) for a in CLAIM3_EXCEPTIONS)
    badges.append(ClaimBadge(
        key="lazy-vs-fmm",
        title="Lazy AMM ≈ FMM (P3m/Euler apart)",
        paper_claim=("Lazy AMM and FMM perform similarly, except P3m "
                     "(FMM avoids the overflow-area pressure) and Euler "
                     "(the two diverge under frequent squashes)"),
        measured=(f"mean |FMM−Lazy| normalized-time gap: "
                  f"{typical_gap:.3f} on typical apps, exception apps "
                  + ", ".join(f"{a} {diffs[a]:+.3f}"
                              for a in CLAIM3_EXCEPTIONS)),
        passed=typical_gap <= 0.10 and exception_gap > typical_gap,
    ))

    # Claim 4: the software log costs a few percent over hardware FMM.
    overheads = [
        _norm(fig10.bars, app, MULTI_T_MV_FMM_SW)
        / _norm(fig10.bars, app, MULTI_T_MV_FMM) - 1.0
        for app in APPLICATION_ORDER
    ]
    sw_overhead = sum(overheads) / len(overheads)
    badges.append(ClaimBadge(
        key="fmm-sw-overhead",
        title="FMM.Sw overhead ≈ +6%",
        paper_claim=("Building the undo log in software instead of ULOG "
                     "hardware costs on average about 6% execution time"),
        measured=f"measured mean overhead: {sw_overhead:+.1%}",
        passed=0.0 < sw_overhead < 0.15,
    ))
    return badges


# ----------------------------------------------------------------------
# Grid metrics
# ----------------------------------------------------------------------
def collect_grid_metrics(
    ctx: ExperimentContext,
) -> dict[str, dict[str, MetricsSnapshot]]:
    """Instrumented sweep of the 16-cell grid: machine -> scheme -> agg.

    Every (machine, scheme, app) simulation runs with a
    :class:`~repro.obs.metrics.MetricsHook` attached (these jobs have
    their own cache identity, so warm reruns replay instead of
    simulating) and the per-app snapshots are folded per scheme.
    """
    out: dict[str, dict[str, MetricsSnapshot]] = {}
    for machine in (NUMA_16, CMP_8):
        jobs = [
            SimJob(
                machine=machine,
                workload=WorkloadSpec(app, seed=ctx.seed, scale=ctx.scale),
                scheme=scheme,
                collect_metrics=True,
            )
            for scheme in EVALUATED_SCHEMES
            for app in APPLICATION_ORDER
        ]
        results = ctx.runner.run_many(jobs)
        out[machine.name] = aggregate_by_scheme(results)
    return out


_METRIC_COLUMNS = (
    ("squash.events", "Squash events"),
    ("squash.task_executions", "Squashed tasks"),
    ("overflow.spills", "Overflow spills"),
    ("vcl.merges", "VCL merges"),
    ("directory.reads", "Dir reads"),
    ("directory.writes", "Dir writes"),
    ("network.remote_cache_fetches", "Remote fetches"),
    ("network.memory_fetches", "Memory fetches"),
)


def _metrics_rows(per_scheme: dict[str, MetricsSnapshot]) -> list[list[str]]:
    rows = []
    for scheme in EVALUATED_SCHEMES:
        snap = per_scheme.get(scheme.name)
        if snap is None:
            continue
        total = snap.counters.get("cycles.total", 0.0)
        commit_wait = snap.counters.get("cycles.commit_wait", 0.0)
        row = [scheme.name]
        row.extend(f"{snap.counters.get(key, 0.0):,.0f}"
                   for key, _label in _METRIC_COLUMNS)
        row.append(f"{commit_wait / total:.1%}" if total else "-")
        row.append(f"{snap.histograms['task.execution_cycles'].mean():,.0f}"
                   if "task.execution_cycles" in snap.histograms else "-")
        rows.append(row)
    return rows


_METRICS_HEADER = (["Scheme"] + [label for _k, label in _METRIC_COLUMNS]
                   + ["Commit-wait", "Mean task cyc"])


# ----------------------------------------------------------------------
# Rendering primitives (Markdown + HTML share the table data)
# ----------------------------------------------------------------------
def md_table(header: list[str], rows: list[list[str]]) -> str:
    """Render a GitHub-flavored Markdown table (shared with explore)."""
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    lines.extend("| " + " | ".join(str(c) for c in row) + " |"
                 for row in rows)
    return "\n".join(lines)


def html_table(header: list[str], rows: list[list[str]]) -> str:
    """Render an escaped HTML table (shared with explore)."""
    head = "".join(f"<th>{html.escape(str(c))}</th>" for c in header)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(str(c))}</td>" for c in row)
        + "</tr>"
        for row in rows
    )
    return (f'<table><thead><tr>{head}</tr></thead>'
            f'<tbody>{body}</tbody></table>')


def _support_matrix_rows() -> list[list[str]]:
    rows = []
    for scheme in EVALUATED_SCHEMES:
        needed = required_supports(scheme)
        rows.append([scheme.name]
                    + [("X" if s in needed else "") for s in Support]
                    + [str(complexity_score(scheme))])
    return rows


_SUPPORT_HEADER = (["Scheme"] + [s.name for s in Support]
                   + ["Complexity"])


def _upgrade_rows() -> list[list[str]]:
    return [
        [f"{u.upgrade_from} → {u.upgrade_to}", u.benefit,
         " + ".join(sorted(s.name for s in u.added_supports))]
        for u in UPGRADE_PATH
    ]


def _summary_rows(summary) -> list[list[str]]:
    return [[claim, f"{paper:.0f}%", f"{measured * 100:.1f}%"]
            for claim, paper, measured in summary.rows]


# ----------------------------------------------------------------------
# Report assembly
# ----------------------------------------------------------------------
_CSS = """
body { font-family: Georgia, serif; max-width: 72rem; margin: 2rem auto;
       padding: 0 1rem; color: #222; }
h1, h2 { font-family: Helvetica, Arial, sans-serif; }
table { border-collapse: collapse; margin: 1rem 0; font-size: 0.85rem;
        font-family: Helvetica, Arial, sans-serif; }
th, td { border: 1px solid #bbb; padding: 0.3rem 0.55rem; text-align: left; }
th { background: #eef2f7; }
.badge { display: inline-block; padding: 0.15rem 0.6rem; border-radius:
         0.8rem; font-family: Helvetica, Arial, sans-serif; font-weight:
         bold; font-size: 0.8rem; color: white; }
.badge.pass { background: #1a7f37; }
.badge.fail { background: #b42318; }
.claim { border: 1px solid #ccc; border-left: 6px solid #888; padding:
         0.6rem 1rem; margin: 0.8rem 0; }
.claim.pass { border-left-color: #1a7f37; }
.claim.fail { border-left-color: #b42318; }
.claim p { margin: 0.3rem 0; }
.small { color: #555; font-size: 0.85rem; }
figure { margin: 1.5rem 0; overflow-x: auto; }
""".strip()


def _claims_markdown(badges: list[ClaimBadge]) -> str:
    parts = []
    for badge in badges:
        mark = "**PASS**" if badge.passed else "**FAIL**"
        parts.append(f"- {mark} — **{badge.title}**. {badge.paper_claim}. "
                     f"Measured: {badge.measured}.")
    return "\n".join(parts)


def _claims_html(badges: list[ClaimBadge]) -> str:
    parts = []
    for badge in badges:
        cls = "pass" if badge.passed else "fail"
        label = "PASS" if badge.passed else "FAIL"
        parts.append(
            f'<div class="claim {cls}">'
            f'<span class="badge {cls}">{label}</span> '
            f'<strong>{html.escape(badge.title)}</strong>'
            f'<p>{html.escape(badge.paper_claim)}.</p>'
            f'<p class="small">Measured: {html.escape(badge.measured)}.</p>'
            f'</div>'
        )
    return "\n".join(parts)


def build_report(
    out_dir: str | Path = DEFAULT_REPORT_DIR,
    *,
    scale: float = 1.0,
    seed: int = 0,
    jobs: int | None = None,
    cache: bool = True,
    ctx: ExperimentContext | None = None,
) -> dict[str, Path]:
    """Run the grid and write the reproduction report; returns the paths.

    ``scale`` follows the rest of the CLI (the ``--smoke`` preset passes
    0.1). A warm result cache turns the whole build into replay +
    rendering.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    if ctx is None:
        ctx = ExperimentContext(scale=scale, seed=seed, jobs=jobs,
                                cache=cache)

    fig9 = run_figure9(ctx)
    fig10 = run_figure10(ctx)
    fig11 = run_figure11(ctx)
    summary = run_summary(ctx)
    badges = evaluate_claims(fig9, fig10, fig11)
    grid_metrics = collect_grid_metrics(ctx)

    svgs = {
        "figure9.svg": scheme_bars_to_svg(fig9),
        "figure10.svg": scheme_bars_to_svg(fig10.bars),
        "figure11.svg": scheme_bars_to_svg(fig11),
    }
    for name, svg in svgs.items():
        (out / name).write_text(svg + "\n")

    trace_stats = _export_trace_sample(ctx, out)

    passed = sum(1 for b in badges if b.passed)
    params_rows = [
        ["Engine version", ENGINE_VERSION],
        ["Workload scale", f"{ctx.scale:g}"],
        ["Workload seed", str(ctx.seed)],
        ["Machines", "CC-NUMA-16, CMP-8"],
        ["Schemes", ", ".join(s.name for s in EVALUATED_SCHEMES)],
        ["Applications", ", ".join(APPLICATION_ORDER)],
        ["Headline claims", f"{passed}/{len(badges)} passed"],
    ]

    sections_md = [
        "# Reproduction report — Buffering Memory State for TLS "
        "(HPCA 2003)",
        "",
        "Generated by `repro-tls report`. Every number below comes from "
        "seeded, deterministic simulations of the paper's 16-cell "
        "machine × scheme grid; rebuilding from a warm cache reproduces "
        "this report byte for byte.",
        "",
        md_table(["Parameter", "Value"], params_rows),
        "",
        "## Headline claims",
        "",
        _claims_markdown(badges),
        "",
        "## Figure 9 — AMM schemes on CC-NUMA-16",
        "",
        "![Figure 9](figure9.svg)",
        "",
        "## Figure 10 — AMM vs FMM under MultiT&MV (CC-NUMA-16)",
        "",
        "![Figure 10](figure10.svg)",
        "",
        "## Figure 11 — AMM schemes on CMP-8",
        "",
        "![Figure 11](figure11.svg)",
        "",
        "## Section 5.4 summary — paper vs measured",
        "",
        md_table(["Claim", "Paper", "Measured"], _summary_rows(summary)),
        "",
        "## Hardware supports (Tables 1 and 2)",
        "",
        md_table(["Support", "Description"],
                  [[s.name, SUPPORT_DESCRIPTIONS[s]] for s in Support]),
        "",
        md_table(_SUPPORT_HEADER, _support_matrix_rows()),
        "",
        md_table(["Upgrade", "Benefit", "Added supports"],
                  _upgrade_rows()),
        "",
    ]
    for machine_name, per_scheme in grid_metrics.items():
        sections_md.extend([
            f"## Metrics — {machine_name} "
            f"(aggregated over {len(APPLICATION_ORDER)} applications)",
            "",
            md_table(_METRICS_HEADER, _metrics_rows(per_scheme)),
            "",
        ])
    sections_md.extend([
        "## Design-space exploration",
        "",
        "The companion exploration report — sensitivity of the taxonomy "
        "to L2 geometry, processor count, overflow capacity, and "
        "latency/cost multipliers, the Section 7.3 crossover points, and "
        "the complexity/performance Pareto frontier — is built by "
        "`repro-tls explore` into [explore.md](explore.md) / "
        "[explore.html](explore.html) alongside this report.",
        "",
        "## Trace sample",
        "",
        f"One traced run ({trace_stats['job']}) exported through "
        "`repro.obs.trace_export`: "
        f"[JSONL](trace_sample.jsonl) ({trace_stats['jsonl']} records), "
        "[Chrome trace](trace_sample.trace.json) for `about://tracing` "
        f"({trace_stats['chrome']} events).",
        "",
    ])
    report_md = "\n".join(sections_md)
    (out / "report.md").write_text(report_md)

    html_doc = _render_html(params_rows, badges, svgs, summary,
                            grid_metrics, trace_stats)
    (out / "index.html").write_text(html_doc)

    return {
        "html": out / "index.html",
        "markdown": out / "report.md",
        **{name: out / name for name in svgs},
        "trace_jsonl": out / "trace_sample.jsonl",
        "trace_chrome": out / "trace_sample.trace.json",
    }


def _export_trace_sample(ctx: ExperimentContext, out: Path) -> dict:
    """Trace one representative run and ship both export formats."""
    job = SimJob(
        machine=NUMA_16,
        workload=WorkloadSpec("Euler", seed=ctx.seed, scale=ctx.scale),
        scheme=MULTI_T_MV_LAZY,
        traced=True,
    )
    result = ctx.runner.run(job)
    records = list(result.trace)
    jsonl = export_jsonl(records, out / "trace_sample.jsonl",
                         max_bytes=TRACE_SAMPLE_MAX_BYTES)
    chrome = export_chrome_trace(records, out / "trace_sample.trace.json",
                                 max_bytes=TRACE_SAMPLE_MAX_BYTES)
    return {
        "job": job.describe(),
        "jsonl": f"{jsonl.records_written}/{jsonl.records_total}",
        "chrome": chrome.records_written,
    }


def _render_html(params_rows, badges, svgs, summary, grid_metrics,
                 trace_stats) -> str:
    """The self-contained HTML document (inline CSS and SVGs)."""
    body = [
        "<h1>Reproduction report — Buffering Memory State for TLS "
        "(HPCA 2003)</h1>",
        '<p class="small">Generated by <code>repro-tls report</code>. '
        "Every number comes from seeded, deterministic simulations of the "
        "paper's 16-cell machine × scheme grid; rebuilding from a warm "
        "cache reproduces this page byte for byte.</p>",
        html_table(["Parameter", "Value"], params_rows),
        "<h2>Headline claims</h2>",
        _claims_html(badges),
        "<h2>Figure 9 — AMM schemes on CC-NUMA-16</h2>",
        f"<figure>{svgs['figure9.svg']}</figure>",
        "<h2>Figure 10 — AMM vs FMM under MultiT&amp;MV "
        "(CC-NUMA-16)</h2>",
        f"<figure>{svgs['figure10.svg']}</figure>",
        "<h2>Figure 11 — AMM schemes on CMP-8</h2>",
        f"<figure>{svgs['figure11.svg']}</figure>",
        "<h2>Section 5.4 summary — paper vs measured</h2>",
        html_table(["Claim", "Paper", "Measured"], _summary_rows(summary)),
        "<h2>Hardware supports (Tables 1 and 2)</h2>",
        html_table(["Support", "Description"],
                    [[s.name, SUPPORT_DESCRIPTIONS[s]] for s in Support]),
        html_table(_SUPPORT_HEADER, _support_matrix_rows()),
        html_table(["Upgrade", "Benefit", "Added supports"],
                    _upgrade_rows()),
    ]
    for machine_name, per_scheme in grid_metrics.items():
        body.append(f"<h2>Metrics — {html.escape(machine_name)} "
                    f"(aggregated over {len(APPLICATION_ORDER)} "
                    "applications)</h2>")
        body.append(html_table(_METRICS_HEADER,
                                _metrics_rows(per_scheme)))
    body.append("<h2>Design-space exploration</h2>")
    body.append(
        "<p>The companion exploration report — sensitivity of the "
        "taxonomy to L2 geometry, processor count, overflow capacity, "
        "and latency/cost multipliers, the Section 7.3 crossover "
        "points, and the complexity/performance Pareto frontier — is "
        "built by <code>repro-tls explore</code> into "
        '<a href="explore.html">explore.html</a> / '
        '<a href="explore.md">explore.md</a> alongside this report.</p>')
    body.append("<h2>Trace sample</h2>")
    body.append(
        f'<p>One traced run ({html.escape(trace_stats["job"])}) exported '
        "through <code>repro.obs.trace_export</code>: "
        f'<a href="trace_sample.jsonl">JSONL</a> '
        f'({trace_stats["jsonl"]} records), '
        f'<a href="trace_sample.trace.json">Chrome trace</a> for '
        f'<code>about://tracing</code> ({trace_stats["chrome"]} '
        "events).</p>")
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        "<title>TLS buffering reproduction report</title>\n"
        f"<style>{_CSS}</style></head>\n<body>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )
