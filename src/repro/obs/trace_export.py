"""Structured export of engine traces: JSONL and Chrome ``trace_event``.

Serializes the :class:`~repro.core.trace.TraceRecord` stream of a traced
run to two formats:

* **JSONL** (:func:`export_jsonl` / :func:`load_jsonl`) — one JSON
  object per line, exact round-trip, suitable for ``jq``/pandas-style
  post-processing. Supports sampling (keep every Nth record) and a hard
  byte cap, both reported in the returned :class:`ExportStats` so the
  caller knows what was dropped — truncation is never silent.
* **Chrome trace_event** (:func:`export_chrome_trace`) — a JSON array
  loadable in ``about://tracing`` / Perfetto: task executions and commits
  as duration (``B``/``E``) pairs on one row per processor, violations /
  squashes / stalls / spills as instant events.

Export is pure serialization of an in-memory recorder: it never touches
the engine, and traced jobs never enter the result cache (see
:class:`repro.runner.SimJob` ``traced``), so these files cannot leak into
cached, untraced runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.core.trace import TraceEvent, TraceRecord

#: Events rendered as duration pairs in the Chrome export; everything
#: else becomes an instant event.
_DURATION_BEGIN = {TraceEvent.TASK_START: "task",
                   TraceEvent.COMMIT_BEGIN: "commit"}
_DURATION_END = {TraceEvent.TASK_DONE: "task",
                 TraceEvent.TASK_SQUASHED: "task",
                 TraceEvent.COMMIT_DONE: "commit"}


@dataclass(frozen=True)
class ExportStats:
    """What an export wrote — and, explicitly, what it dropped."""

    records_total: int
    records_written: int
    bytes_written: int
    truncated: bool

    @property
    def records_dropped(self) -> int:
        return self.records_total - self.records_written


def record_to_dict(record: TraceRecord) -> dict:
    """JSON-ready form of one trace record (exact round-trip)."""
    data = {
        "event": record.event.value,
        "time": record.time,
        "task": record.task_id,
    }
    if record.proc_id is not None:
        data["proc"] = record.proc_id
    if record.detail is not None:
        data["detail"] = record.detail
    return data


def record_from_dict(data: dict) -> TraceRecord:
    """Rebuild a record serialized with :func:`record_to_dict`."""
    return TraceRecord(
        event=TraceEvent(data["event"]),
        time=float(data["time"]),
        task_id=int(data["task"]),
        proc_id=data.get("proc"),
        detail=data.get("detail"),
    )


def export_jsonl(
    records: Iterable[TraceRecord],
    path: str | Path,
    *,
    sample_every: int = 1,
    max_bytes: int | None = None,
) -> ExportStats:
    """Write records to ``path`` as JSON Lines.

    ``sample_every=N`` keeps every Nth record (the first of each stride);
    ``max_bytes`` stops writing before a line would push the file past
    the cap. Both reductions are counted in the returned stats.
    """
    if sample_every < 1:
        raise ValueError("sample_every must be >= 1")
    records = list(records)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    written = 0
    size = 0
    truncated = False
    with open(path, "w") as handle:
        for i, record in enumerate(records):
            if i % sample_every:
                continue
            line = json.dumps(record_to_dict(record),
                              sort_keys=True) + "\n"
            if max_bytes is not None and size + len(line) > max_bytes:
                truncated = True
                break
            handle.write(line)
            size += len(line)
            written += 1
    return ExportStats(records_total=len(records), records_written=written,
                       bytes_written=size, truncated=truncated)


def load_jsonl(path: str | Path) -> list[TraceRecord]:
    """Read an :func:`export_jsonl` file back into records."""
    out = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(record_from_dict(json.loads(line)))
    return out


def chrome_trace_events(
    records: Iterable[TraceRecord],
    *,
    sample_instants_every: int = 1,
) -> list[dict]:
    """Convert records to Chrome ``trace_event`` objects.

    Task executions and commits become ``B``/``E`` duration pairs (one
    thread row per processor; commits on a dedicated "commit token" row),
    the remaining events instant markers. Sampling applies to instants
    only — thinning a ``B``/``E`` stream would unbalance the pairs and
    corrupt the timeline. Pairs are matched per ``(track, task_id)``: an
    ``E`` always closes on the tid its ``B`` opened on, and an end with
    no open begin (a task squashed *after* it already finished but
    before commit) degrades to an instant instead of an orphan ``E``.
    """
    if sample_instants_every < 1:
        raise ValueError("sample_instants_every must be >= 1")
    events: list[dict] = []
    instants_seen = 0
    open_tids: dict[tuple[str, int], list[int]] = {}

    def instant(record: TraceRecord, proc: int) -> None:
        nonlocal instants_seen
        instants_seen += 1
        if (instants_seen - 1) % sample_instants_every:
            return
        events.append({
            "name": record.event.value,
            "cat": "protocol",
            "ph": "i",
            "s": "t",
            "ts": record.time,
            "pid": 0,
            "tid": proc,
            "args": {"task": record.task_id,
                     "detail": record.detail},
        })

    for record in records:
        proc = record.proc_id if record.proc_id is not None else -1
        if record.event in _DURATION_BEGIN:
            track = _DURATION_BEGIN[record.event]
            tid = proc if track == "task" else 10_000
            open_tids.setdefault((track, record.task_id), []).append(tid)
            events.append({
                "name": f"{track} {record.task_id}",
                "cat": track,
                "ph": "B",
                "ts": record.time,
                "pid": 0,
                "tid": tid,
            })
        elif record.event in _DURATION_END:
            track = _DURATION_END[record.event]
            stack = open_tids.get((track, record.task_id))
            if not stack:
                instant(record, proc)
                continue
            events.append({
                "name": f"{track} {record.task_id}",
                "cat": track,
                "ph": "E",
                "ts": record.time,
                "pid": 0,
                "tid": stack.pop(),
            })
        else:
            instant(record, proc)
    return events


def export_chrome_trace(
    records: Iterable[TraceRecord],
    path: str | Path,
    *,
    sample_instants_every: int = 1,
    max_bytes: int | None = None,
) -> ExportStats:
    """Write a Chrome ``trace_event`` JSON file for ``about://tracing``.

    The byte cap truncates whole trailing events (never mid-object), so
    the output stays parseable; ``stats.truncated`` reports when it hit.
    """
    records = list(records)
    events = chrome_trace_events(
        records, sample_instants_every=sample_instants_every)
    if max_bytes is not None:
        # Drop trailing events until the serialized document fits.
        truncated = False
        while events:
            blob = json.dumps({"traceEvents": events,
                               "displayTimeUnit": "ns"})
            if len(blob) <= max_bytes:
                break
            events = events[:max(0, len(events) - max(1, len(events) // 8))]
            truncated = True
        else:
            blob = json.dumps({"traceEvents": [], "displayTimeUnit": "ns"})
    else:
        truncated = False
        blob = json.dumps({"traceEvents": events, "displayTimeUnit": "ns"})
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(blob)
    return ExportStats(records_total=len(records),
                       records_written=len(events),
                       bytes_written=len(blob), truncated=truncated)
