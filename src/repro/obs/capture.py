"""Trace capture: dump the workload a simulation executed as a trace file.

:class:`TraceCaptureHook` rides the :mod:`repro.core.hooks` observation
interface — it overrides only :meth:`on_finish`, so a capturing run pays
nothing per event and stays bit-identical to an uncaptured one (the
differential tests in ``tests/test_trace_replay.py`` hold it to that).
On completion it encodes the run's workload to the binary ``.tlstrace``
format (:mod:`repro.workloads.traceio`), stamps provenance metadata
(machine, scheme) into the header, and publishes capture counters in the
``trace.capture.*`` namespace alongside the other observability
counters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.core.hooks import SimulationHook

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.engine import Simulation
    from repro.core.results import SimulationResult
    from repro.workloads.traceio import TraceInfo


class TraceCaptureHook(SimulationHook):
    """Write the simulated workload to ``path`` when the run completes.

    After the run, :attr:`info` holds the written trace's
    :class:`~repro.workloads.traceio.TraceInfo` (header, content digest,
    record/byte counts) and :attr:`counters` the flat
    ``trace.capture.*`` counter dict the CLI and metrics aggregation
    print.
    """

    def __init__(self, path: Any,
                 meta: Mapping[str, str] | None = None) -> None:
        self.path = str(path)
        self.meta = dict(meta or {})
        self.info: "TraceInfo | None" = None
        self.counters: dict[str, int] = {}

    def on_finish(self, sim: "Simulation",
                  result: "SimulationResult") -> None:
        """Encode ``sim.workload`` to the trace file and count the bytes."""
        from repro.workloads.traceio import write_trace

        meta = dict(self.meta)
        meta.setdefault("captured-from",
                        f"{result.machine_name}/{result.scheme.name}")
        self.info = write_trace(self.path, sim.workload, meta=meta)
        self.counters = {
            "trace.capture.tasks": self.info.header.n_tasks,
            "trace.capture.records": self.info.n_records,
            "trace.capture.ops": self.info.n_ops,
            "trace.capture.bytes": self.info.file_bytes,
        }
