"""Observability: metrics, trace export, and the reproduction report.

Three layers, all strictly *observational* — attaching any of them never
changes a simulation's result (the bit-identity contract of
:mod:`repro.core.hooks`):

* :mod:`repro.obs.metrics` — :class:`MetricsHook` accumulates counters
  and histograms (squashes, overflow spills, directory lookups,
  commit-wait cycles, network messages) onto ``result.metrics``;
  :func:`aggregate_by_scheme` folds runs into per-scheme aggregates.
* :mod:`repro.obs.trace_export` — serializes a
  :class:`~repro.core.trace.TraceRecorder` stream to JSONL or Chrome
  ``trace_event`` JSON, with sampling and an explicit byte cap.
* :mod:`repro.obs.report` — ``repro-tls report``: runs the paper's full
  machine x scheme grid and renders the self-contained HTML/Markdown
  reproduction report with figure analogues and headline-claim badges.
* :mod:`repro.obs.capture` — :class:`TraceCaptureHook` dumps the
  workload a run executed to a binary ``.tlstrace`` file on completion
  (``trace.capture.*`` counters; zero per-event overhead).
"""

from repro.obs.capture import TraceCaptureHook

from repro.obs.metrics import (
    Histogram,
    MetricsHook,
    MetricsRegistry,
    MetricsSnapshot,
    TaskMetrics,
    aggregate_by_scheme,
)
from repro.obs.trace_export import (
    ExportStats,
    export_chrome_trace,
    export_jsonl,
    load_jsonl,
)
from repro.obs.report import ClaimBadge, build_report, evaluate_claims

__all__ = [
    "ClaimBadge",
    "ExportStats",
    "Histogram",
    "MetricsHook",
    "MetricsRegistry",
    "MetricsSnapshot",
    "TaskMetrics",
    "TraceCaptureHook",
    "aggregate_by_scheme",
    "build_report",
    "evaluate_claims",
    "export_chrome_trace",
    "export_jsonl",
    "load_jsonl",
]
