"""repro — reproduction of "Tradeoffs in Buffering Memory State for
Thread-Level Speculation in Multiprocessors" (Garzarán et al., HPCA-9, 2003).

The package provides:

* a taxonomy of buffering approaches (``repro.core.taxonomy``) with the
  hardware-support / complexity analysis of the paper's Tables 1-2;
* a discrete-event multiprocessor simulator (``repro.core.engine``) with
  version caches, overflow areas, undo logs, a commit token, and
  word-granularity violation detection;
* synthetic workload generators matching the paper's seven applications
  (``repro.workloads``);
* baselines (``repro.baselines``) and an experiment harness
  (``repro.analysis``) regenerating every table and figure.

Quick start::

    from repro import NUMA_16, MULTI_T_MV_LAZY, generate_workload, simulate

    workload = generate_workload("Apsi", scale=0.25)
    result = simulate(NUMA_16, MULTI_T_MV_LAZY, workload)
    print(result.summary())
"""

from repro.baselines import (
    CoarseRecoveryResult,
    SequentialResult,
    simulate_coarse_recovery,
    simulate_sequential,
)
from repro.core import (
    AMM_SCHEMES,
    CMP_8,
    CacheGeometry,
    CostModel,
    EVALUATED_SCHEMES,
    MACHINES,
    MULTI_T_MV_EAGER,
    MULTI_T_MV_FMM,
    MULTI_T_MV_FMM_SW,
    MULTI_T_MV_LAZY,
    MULTI_T_SV_EAGER,
    MULTI_T_SV_LAZY,
    MachineConfig,
    MergePolicy,
    NUMA_16,
    NUMA_16_BIG_L2,
    PRIOR_SCHEMES,
    SINGLE_T_EAGER,
    SINGLE_T_LAZY,
    Scheme,
    Simulation,
    SimulationResult,
    Support,
    TaskPolicy,
    TraceEvent,
    TraceRecord,
    TraceRecorder,
    complexity_score,
    required_supports,
    scheme_from_name,
    simulate,
)
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.obs import (
    MetricsHook,
    MetricsRegistry,
    MetricsSnapshot,
    aggregate_by_scheme,
    export_chrome_trace,
    export_jsonl,
)
from repro.workloads import (
    APPLICATION_ORDER,
    APPLICATIONS,
    ApplicationProfile,
    Workload,
    generate_workload,
)

__version__ = "1.0.0"

__all__ = [
    "AMM_SCHEMES",
    "APPLICATIONS",
    "APPLICATION_ORDER",
    "ApplicationProfile",
    "CMP_8",
    "CacheGeometry",
    "CoarseRecoveryResult",
    "ConfigurationError",
    "CostModel",
    "EVALUATED_SCHEMES",
    "MACHINES",
    "MULTI_T_MV_EAGER",
    "MULTI_T_MV_FMM",
    "MULTI_T_MV_FMM_SW",
    "MULTI_T_MV_LAZY",
    "MULTI_T_SV_EAGER",
    "MULTI_T_SV_LAZY",
    "MachineConfig",
    "MergePolicy",
    "MetricsHook",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NUMA_16",
    "NUMA_16_BIG_L2",
    "PRIOR_SCHEMES",
    "ProtocolError",
    "ReproError",
    "SINGLE_T_EAGER",
    "SINGLE_T_LAZY",
    "Scheme",
    "SequentialResult",
    "Simulation",
    "SimulationError",
    "SimulationResult",
    "Support",
    "TaskPolicy",
    "TraceEvent",
    "TraceRecord",
    "TraceRecorder",
    "Workload",
    "WorkloadError",
    "aggregate_by_scheme",
    "complexity_score",
    "export_chrome_trace",
    "export_jsonl",
    "generate_workload",
    "required_supports",
    "scheme_from_name",
    "simulate",
    "simulate_coarse_recovery",
    "simulate_sequential",
    "__version__",
]
