"""Content-addressed caches of simulation results (memory and shard tiers).

Entries are keyed by the SHA-256 digest of the job's canonical identity
(machine config + scheme + workload fingerprint + engine options +
:data:`~repro.core.engine.ENGINE_VERSION`) and hold the *full* JSON
serialization of the result, so a cache replay reconstructs the exact
:class:`~repro.core.results.SimulationResult` the original run produced.

The stack is layered:

* :class:`MemoryResultCache` — a bounded in-process LRU of serialized
  payload *bytes*. It stores bytes rather than decoded dicts because
  payload deserialization (:func:`~repro.runner.runner.result_from_payload`)
  mutates its input; handing every replay a fresh ``json.loads`` of the
  stored bytes keeps hits side-effect-free and bit-identical.
* :class:`ShardedResultCache` — the shared tier: payload-level
  load/store semantics over a pluggable :class:`CacheBackend` byte
  store. The default :class:`DirectoryBackend` shards entries into
  2-hex-prefix subdirectories (256 shards) with atomic writes, so
  concurrent sweep workers, multiple service frontends, and unrelated
  processes can all share one cache directory (local or NFS) safely; a
  corrupt or truncated entry is treated as a miss and overwritten.
  Alternative backends (an object store, a remote cache daemon) only
  need the four :class:`CacheBackend` methods.
* :class:`ResultCache` — the historical name for the directory-backed
  shared tier; now a thin :class:`ShardedResultCache` subclass kept for
  compatibility (``root``/``path_for`` preserved).
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Protocol, runtime_checkable

#: Environment variable overriding the default cache location.
CACHE_ENV_VAR = "REPRO_TLS_CACHE"
#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Cache keys are opaque lowercase-hex strings (SHA-256 digests in
#: practice). :class:`DirectoryBackend` enforces this before touching
#: the filesystem so a hostile key (``../``, an absolute path) can never
#: escape the cache root, whatever layer it arrived through.
_SAFE_KEY_RE = re.compile(r"[0-9a-f]+")

#: Width of the shard prefix: ``key[:SHARD_PREFIX_LEN]`` names the shard.
#: Two hex characters give 256 shards, keeping any one directory small
#: even for corpora of hundreds of thousands of entries. Part of the
#: on-disk layout contract — changing it would orphan existing entries.
SHARD_PREFIX_LEN = 2


def default_cache_root() -> Path:
    """The cache directory honoring :data:`CACHE_ENV_VAR`."""
    return Path(os.environ.get(CACHE_ENV_VAR, DEFAULT_CACHE_DIR))


def shard_of(key: str) -> str:
    """The shard a key lives in (its first :data:`SHARD_PREFIX_LEN` chars).

    Keys are SHA-256 hex digests, so the prefix distributes uniformly
    across the 256 shards by construction.
    """
    return key[:SHARD_PREFIX_LEN]


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance."""
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    def to_dict(self) -> dict[str, int]:
        """JSON-ready counter snapshot (for ``/v1/cache/stats``)."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "evictions": self.evictions}


#: Default entry bound for the in-memory tier. A full paper sweep is a
#: few hundred cells; payloads are tens of KB, so this stays modest.
DEFAULT_MEMORY_ENTRIES = 256


class MemoryResultCache:
    """Bounded in-process LRU tier holding serialized payload bytes.

    ``load``/``store`` speak ``bytes`` (compact JSON); the runner decodes
    on every hit so no caller can mutate another caller's payload. A hit
    refreshes recency; capacity overflow evicts the least recently used
    entry and counts it in :attr:`stats.evictions <CacheStats.evictions>`.
    """

    def __init__(self, max_entries: int = DEFAULT_MEMORY_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self.stats = CacheStats()

    def load(self, key: str) -> bytes | None:
        """The stored payload bytes for ``key`` (refreshes LRU recency)."""
        raw = self._entries.get(key)
        if raw is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return raw

    def store(self, key: str, raw: bytes) -> None:
        """Insert (or refresh) ``key``; evicts the LRU entry when full."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            entries[key] = raw
            return
        entries[key] = raw
        self.stats.stores += 1
        if len(entries) > self.max_entries:
            entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        removed = len(self._entries)
        self._entries.clear()
        return removed

    def keys(self) -> list[str]:
        """Resident keys, least recently used first."""
        return list(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


# ----------------------------------------------------------------------
# Pluggable shared-tier backends
# ----------------------------------------------------------------------
@runtime_checkable
class CacheBackend(Protocol):
    """Byte-store protocol behind :class:`ShardedResultCache`.

    A backend maps content-address keys to opaque byte blobs. The
    contract is deliberately small so a shared tier can be anything —
    the default local/NFS directory layout, an object store, a remote
    cache daemon — as long as:

    * ``put`` is atomic per key (readers never observe a torn write);
    * ``get`` returns ``None`` for anything absent or unreadable; and
    * keys are opaque hex strings (backends may shard on
      :func:`shard_of` but must not otherwise interpret them).
    """

    def get(self, key: str) -> bytes | None:
        """The stored bytes for ``key``, or ``None`` on a miss."""
        ...

    def put(self, key: str, raw: bytes) -> None:
        """Atomically persist ``raw`` under ``key`` (overwrite allowed)."""
        ...

    def keys(self) -> Iterable[str]:
        """Every stored key (order unspecified)."""
        ...

    def delete(self, key: str) -> bool:
        """Remove ``key`` if present; returns whether it existed."""
        ...


class DirectoryBackend:
    """The default :class:`CacheBackend`: a 2-hex-prefix sharded directory.

    Entry ``<key>`` lives at ``<root>/<key[:2]>/<key>.json``; 256 shard
    subdirectories keep listings fast at corpus scale, and the layout is
    stable across releases so a warm directory can be mounted (NFS or
    volume-shared) behind many service frontends at once. Writes are
    atomic (temp file + ``os.replace`` within the shard), so concurrent
    writers — pool workers, other hosts — can share the root safely.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """Entry path: ``<root>/<shard>/<key>.json``.

        Raises :class:`ValueError` for anything but a lowercase-hex
        key: path characters in a key would otherwise let the joined
        path escape ``root`` (``..`` components, or a leading ``/``
        making :class:`~pathlib.Path` discard the root outright).
        """
        if _SAFE_KEY_RE.fullmatch(key) is None:
            raise ValueError(
                f"invalid cache key {key!r}: keys are lowercase hex digests")
        return self.root / shard_of(key) / f"{key}.json"

    def get(self, key: str) -> bytes | None:
        """Read an entry's bytes; any I/O problem — or an invalid,
        path-shaped key — is a miss."""
        try:
            return self.path_for(key).read_bytes()
        except (OSError, ValueError):
            return None

    def put(self, key: str, raw: bytes) -> None:
        """Atomically write ``raw`` (temp file + rename in the shard)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(raw)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def keys(self) -> list[str]:
        """Every stored key, by scanning the shard directories."""
        if not self.root.exists():
            return []
        glob = "?" * SHARD_PREFIX_LEN + "/*.json"
        return [path.stem for path in self.root.glob(glob)]

    def delete(self, key: str) -> bool:
        """Unlink one entry; missing, unremovable, or invalid-key
        counts as absent."""
        try:
            self.path_for(key).unlink()
            return True
        except (OSError, ValueError):
            return False

    def describe(self) -> str:
        """Human-readable backend location (for stats endpoints)."""
        return f"directory:{self.root}"


class ShardedResultCache:
    """The shared result tier: payload semantics over a byte backend.

    Speaks both decoded payload dicts (:meth:`load`/:meth:`store`) and
    raw serialized bytes (:meth:`load_raw`/:meth:`store_raw` — the
    zero-copy path the sweep runner and the service warm path use).
    A corrupt entry (unreadable bytes or invalid JSON) is a miss; the
    next store overwrites it. All hit/miss/store accounting lives here,
    backend-independent.
    """

    def __init__(self, backend: CacheBackend) -> None:
        self.backend = backend
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def load_raw(self, key: str) -> bytes | None:
        """The stored payload bytes for ``key``, or ``None`` on a miss."""
        raw = self.backend.get(key)
        if raw is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return raw

    def load(self, key: str) -> dict[str, Any] | None:
        """The decoded payload for ``key``; invalid JSON is a miss."""
        raw = self.backend.get(key)
        if raw is not None:
            try:
                payload = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError):
                payload = None
            if isinstance(payload, dict):
                self.stats.hits += 1
                return payload
        self.stats.misses += 1
        return None

    def store(self, key: str, payload: dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key``."""
        self.store_raw(
            key, json.dumps(payload, separators=(",", ":")).encode()
        )

    def store_raw(self, key: str, raw: bytes) -> None:
        """Atomically persist already-serialized JSON ``raw`` under ``key``.

        Zero-copy path for the sweep runner, whose workers ship payloads
        as serialized bytes: the bytes land in the backend without a
        decode / re-encode round trip.
        """
        self.backend.put(key, raw)
        self.stats.stores += 1

    # ------------------------------------------------------------------
    def keys(self) -> list[str]:
        """Every stored key (order unspecified)."""
        return list(self.backend.keys())

    def __contains__(self, key: str) -> bool:
        return self.backend.get(key) is not None

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for key in self.keys():
            if self.backend.delete(key):
                removed += 1
        return removed

    def describe(self) -> str:
        """Human-readable tier description (for stats endpoints)."""
        describe = getattr(self.backend, "describe", None)
        if describe is not None:
            return str(describe())
        return type(self.backend).__name__


def migrate_flat_layout(root: str | Path) -> dict[str, int]:
    """One-shot migration of a pre-shard flat cache into shard layout.

    Releases before the sharded tier stored entries as
    ``<root>/<key>.json`` directly; the sharded layout looks for
    ``<root>/<key[:2]>/<key>.json``, so a flat directory silently
    re-misses every warm entry. This moves each top-level
    ``<hex key>.json`` into its shard (atomic ``os.replace`` within one
    filesystem). An entry that already exists in the shard layout wins:
    the stale flat duplicate is deleted, not copied over it. Non-entry
    files (wrong name shape) are left untouched and counted.

    Returns counters: ``migrated``, ``skipped_existing``, ``ignored``.
    Exposed as ``repro-tls cache migrate``.
    """
    root = Path(root)
    counts = {"migrated": 0, "skipped_existing": 0, "ignored": 0}
    if not root.is_dir():
        return counts
    for path in sorted(root.glob("*.json")):
        key = path.stem
        if _SAFE_KEY_RE.fullmatch(key) is None or not path.is_file():
            counts["ignored"] += 1
            continue
        dest = root / shard_of(key) / f"{key}.json"
        if dest.exists():
            path.unlink()
            counts["skipped_existing"] += 1
            continue
        dest.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, dest)
        counts["migrated"] += 1
    return counts


class ResultCache(ShardedResultCache):
    """The directory-backed shared tier under its historical name.

    ``ResultCache(root)`` is exactly
    ``ShardedResultCache(DirectoryBackend(root))`` with the ``root`` and
    ``path_for`` accessors earlier releases exposed.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        root = Path(root) if root is not None else default_cache_root()
        super().__init__(DirectoryBackend(root))
        self.root = root

    def path_for(self, key: str) -> Path:
        """Entry path, sharded by the first key byte to keep dirs small."""
        return self.backend.path_for(key)  # type: ignore[attr-defined]
