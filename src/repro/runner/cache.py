"""Content-addressed on-disk cache of simulation results.

Entries are keyed by the SHA-256 digest of the job's canonical identity
(machine config + scheme + workload fingerprint + engine options +
:data:`~repro.core.engine.ENGINE_VERSION`) and hold the *full* JSON
serialization of the result, so a cache replay reconstructs the exact
:class:`~repro.core.results.SimulationResult` the original run produced.

Writes are atomic (temp file + ``os.replace``), so concurrent sweep
workers and unrelated processes can share one cache directory safely;
a corrupt or truncated entry is treated as a miss and overwritten.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: Environment variable overriding the default cache location.
CACHE_ENV_VAR = "REPRO_TLS_CACHE"
#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_root() -> Path:
    """The cache directory honoring :data:`CACHE_ENV_VAR`."""
    return Path(os.environ.get(CACHE_ENV_VAR, DEFAULT_CACHE_DIR))


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance."""
    hits: int = 0
    misses: int = 0
    stores: int = 0


class ResultCache:
    """A directory of content-addressed JSON result payloads."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """Entry path, sharded by the first key byte to keep dirs small."""
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def load(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def store(self, key: str, payload: dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in list(self.root.glob("??/*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
