"""Content-addressed caches of simulation results (memory and disk tiers).

Entries are keyed by the SHA-256 digest of the job's canonical identity
(machine config + scheme + workload fingerprint + engine options +
:data:`~repro.core.engine.ENGINE_VERSION`) and hold the *full* JSON
serialization of the result, so a cache replay reconstructs the exact
:class:`~repro.core.results.SimulationResult` the original run produced.

Two tiers:

* :class:`MemoryResultCache` — a bounded in-process LRU of serialized
  payload *bytes*. It stores bytes rather than decoded dicts because
  payload deserialization (:func:`~repro.runner.runner.result_from_payload`)
  mutates its input; handing every replay a fresh ``json.loads`` of the
  stored bytes keeps hits side-effect-free and bit-identical.
* :class:`ResultCache` — the on-disk tier. Writes are atomic (temp file +
  ``os.replace``), so concurrent sweep workers and unrelated processes can
  share one cache directory safely; a corrupt or truncated entry is
  treated as a miss and overwritten.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: Environment variable overriding the default cache location.
CACHE_ENV_VAR = "REPRO_TLS_CACHE"
#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_root() -> Path:
    """The cache directory honoring :data:`CACHE_ENV_VAR`."""
    return Path(os.environ.get(CACHE_ENV_VAR, DEFAULT_CACHE_DIR))


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance."""
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0


#: Default entry bound for the in-memory tier. A full paper sweep is a
#: few hundred cells; payloads are tens of KB, so this stays modest.
DEFAULT_MEMORY_ENTRIES = 256


class MemoryResultCache:
    """Bounded in-process LRU tier holding serialized payload bytes.

    ``load``/``store`` speak ``bytes`` (compact JSON); the runner decodes
    on every hit so no caller can mutate another caller's payload. A hit
    refreshes recency; capacity overflow evicts the least recently used
    entry and counts it in :attr:`stats.evictions <CacheStats.evictions>`.
    """

    def __init__(self, max_entries: int = DEFAULT_MEMORY_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self.stats = CacheStats()

    def load(self, key: str) -> bytes | None:
        """The stored payload bytes for ``key`` (refreshes LRU recency)."""
        raw = self._entries.get(key)
        if raw is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return raw

    def store(self, key: str, raw: bytes) -> None:
        """Insert (or refresh) ``key``; evicts the LRU entry when full."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            entries[key] = raw
            return
        entries[key] = raw
        self.stats.stores += 1
        if len(entries) > self.max_entries:
            entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        removed = len(self._entries)
        self._entries.clear()
        return removed

    def keys(self) -> list[str]:
        """Resident keys, least recently used first."""
        return list(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class ResultCache:
    """A directory of content-addressed JSON result payloads."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """Entry path, sharded by the first key byte to keep dirs small."""
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def load(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def store(self, key: str, payload: dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key``."""
        self.store_raw(
            key, json.dumps(payload, separators=(",", ":")).encode()
        )

    def store_raw(self, key: str, raw: bytes) -> None:
        """Atomically persist already-serialized JSON ``raw`` under ``key``.

        Zero-copy path for the sweep runner, whose workers ship payloads
        as serialized bytes: the bytes land on disk without a decode /
        re-encode round trip.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(raw)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in list(self.root.glob("??/*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
