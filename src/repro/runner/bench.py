"""Performance harness: engine microbenchmark + Figure-9 sweep bench.

Two measurements, reported together in ``BENCH_sweep.json``:

* **engine** — raw event-processing throughput (events/second) of the
  simulation engine on a canonical (app x scheme) grid, compared against
  the pre-optimization seed baseline measured on the same container
  (:data:`SEED_EVENTS_PER_SECOND`).
* **sweep** — wall-clock seconds for the canonical Figure-9 sweep
  (7 apps x 6 AMM schemes + sequential baselines on CC-NUMA-16), run
  three ways: serial with no cache, through the parallel runner with a
  cold cache, and again with the warm cache (pure replay). The seed
  baseline for the serial sweep is :data:`SEED_SWEEP_SECONDS`.

A determinism probe rides along: one job executed serially, through the
process pool, and replayed from the cache must produce bit-identical
canonical serializations (see
:func:`repro.analysis.serialization.canonical_result_bytes`); the CI
smoke run fails if it does not.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.runner.runner import default_jobs

#: Wall-clock seconds of the canonical Figure-9 sweep (scale=1.0,
#: seed=0, serial, no cache) measured on the pre-optimization seed
#: engine in this container. Reference point for the >=2x target.
SEED_SWEEP_SECONDS = 30.80
#: Events/second of the engine microbench on the pre-optimization seed
#: engine in this container. Reference point for the >=1.15x target.
SEED_EVENTS_PER_SECOND = 37_246.0
#: Engine-core v2 baseline (PR-5's committed full bench) in the
#: container that measured it. Kept for the perf-trajectory table.
V2_EVENTS_PER_SECOND = 109_942.0
#: Committed perf-regression floor for the CI gate. The ``perf-smoke``
#: CI job fails when the smoke engine bench drops below this. Referenced
#: to the engine-core v3 pure-Python baseline (~95-105k ev/s on the
#: growth container) rather than the seed: anything below the floor is
#: a structural regression, not scheduling jitter. The allowance below
#: the baseline is ~35%, not the 10% a dedicated perf rig would permit,
#: because repeated runs in the shared containers show +-10-15%
#: run-to-run variance and larger container-to-container spread.
FLOOR_EVENTS_PER_SECOND = 66_000.0

#: Canonical engine-microbench grid (a subset keeps the bench short
#: while covering eager/lazy merging and AMM/FMM buffering).
ENGINE_BENCH_APPS = ("Apsi", "Euler", "Track")


def _engine_bench_schemes():
    from repro.core.taxonomy import (
        MULTI_T_MV_EAGER,
        MULTI_T_MV_FMM,
        MULTI_T_MV_LAZY,
        SINGLE_T_EAGER,
    )

    return (SINGLE_T_EAGER, MULTI_T_MV_EAGER, MULTI_T_MV_LAZY,
            MULTI_T_MV_FMM)


def run_engine_bench(scale: float = 1.0, seed: int = 0,
                     apps: tuple[str, ...] = ENGINE_BENCH_APPS,
                     ) -> dict[str, Any]:
    """Measure raw engine throughput (events/second), serial, no cache."""
    from repro.core.config import NUMA_16
    from repro.core.engine import Simulation, kernel_info
    from repro.workloads.apps import APPLICATIONS

    schemes = _engine_bench_schemes()
    events = 0
    started = time.perf_counter()
    for app in apps:
        workload = APPLICATIONS[app].generate(seed=seed, scale=scale)
        for scheme in schemes:
            result = Simulation(NUMA_16, scheme, workload).run()
            events += result.events_processed
    elapsed = time.perf_counter() - started
    eps = events / elapsed if elapsed > 0 else 0.0
    kernel = kernel_info()
    report: dict[str, Any] = {
        "apps": list(apps),
        "schemes": [s.name for s in schemes],
        "scale": scale,
        "events": events,
        "seconds": round(elapsed, 3),
        "events_per_second": round(eps, 1),
        "kernel_enabled": kernel["enabled"],
        "kernel_compiled": kernel["compiled"],
    }
    if scale == 1.0 and apps == ENGINE_BENCH_APPS:
        report["seed_events_per_second"] = SEED_EVENTS_PER_SECOND
        report["speedup_vs_seed"] = round(eps / SEED_EVENTS_PER_SECOND, 3)
    return report


def _figure9_sweep(scale: float, seed: int, jobs: int,
                   cache_dir: str | None) -> float:
    """One full Figure-9 sweep; returns wall-clock seconds."""
    from repro.analysis.experiments import ExperimentContext, run_figure9

    ctx = ExperimentContext(
        scale=scale, seed=seed, jobs=jobs,
        cache=cache_dir if cache_dir is not None else False,
    )
    started = time.perf_counter()
    run_figure9(ctx)
    return time.perf_counter() - started


def run_sweep_bench(scale: float = 1.0, seed: int = 0,
                    jobs: int | None = None) -> dict[str, Any]:
    """Figure-9 sweep wall-clock: serial / parallel cold / warm cache.

    ``pool_width`` reports the width the parallel sweep actually ran at.
    On a single-CPU container (or with ``jobs=1``) there is no parallel
    configuration to measure: the parallel leg is skipped with an
    explicit note instead of silently timing a serial run and labeling
    it parallel, and the warm-cache leg replays a cache populated by an
    untimed serial pass.
    """
    jobs = jobs if jobs is not None else default_jobs()
    pool_width = max(jobs, 1)
    parallel_cold: float | None
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        serial_cold = _figure9_sweep(scale, seed, 1, None)
        if pool_width >= 2:
            parallel_cold = _figure9_sweep(scale, seed, jobs, tmp)
        else:
            parallel_cold = None
            _figure9_sweep(scale, seed, 1, tmp)  # populate the warm cache
        warm_cache = _figure9_sweep(scale, seed, jobs, tmp)
    report: dict[str, Any] = {
        "scale": scale,
        "jobs": jobs,
        "pool_width": pool_width,
        "cpu_count": os.cpu_count(),
        "serial_cold_seconds": round(serial_cold, 3),
        "parallel_cold_seconds": (round(parallel_cold, 3)
                                  if parallel_cold is not None else None),
        "warm_cache_seconds": round(warm_cache, 3),
    }
    if parallel_cold is None:
        report["parallel_note"] = (
            f"parallel sweep skipped: effective pool width {pool_width} < 2 "
            f"(cpu_count={os.cpu_count()}); the 'dispatch' block (bench "
            "--fleet N) measures multi-worker dispatch even on one CPU"
        )
    if scale == 1.0:
        report["seed_serial_seconds"] = SEED_SWEEP_SECONDS
        report["speedup_serial_vs_seed"] = round(
            SEED_SWEEP_SECONDS / serial_cold, 2)
        if parallel_cold is not None:
            report["speedup_parallel_vs_seed"] = round(
                SEED_SWEEP_SECONDS / parallel_cold, 2)
        report["speedup_warm_vs_seed"] = round(
            SEED_SWEEP_SECONDS / warm_cache, 2)
    return report


def check_determinism(scale: float = 0.25, seed: int = 0) -> dict[str, Any]:
    """Serial, pooled, and cache-replayed runs must be bit-identical."""
    from repro.analysis.serialization import canonical_result_bytes
    from repro.core.config import NUMA_16
    from repro.core.taxonomy import MULTI_T_MV_EAGER, MULTI_T_MV_LAZY
    from repro.runner.cache import ResultCache
    from repro.runner.jobs import SimJob, WorkloadSpec
    from repro.runner.runner import SweepRunner

    job = SimJob(
        machine=NUMA_16,
        workload=WorkloadSpec("Euler", seed=seed, scale=scale),
        scheme=MULTI_T_MV_LAZY,
    )
    sibling = SimJob(
        machine=NUMA_16,
        workload=WorkloadSpec("Euler", seed=seed, scale=scale),
        scheme=MULTI_T_MV_EAGER,
    )
    serial = SweepRunner(jobs=1, cache=None).run(job)
    # Two distinct pending jobs + single-job chunks force the pool path.
    pooled = SweepRunner(jobs=2, cache=None,
                         chunk_size=1).run_many([job, sibling])[0]
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        cache = ResultCache(tmp)
        SweepRunner(jobs=1, cache=cache).run(job)
        replayed = SweepRunner(jobs=1, cache=cache).run(job)
    reference = canonical_result_bytes(serial)
    return {
        "job": job.describe(),
        "serial_vs_pool": canonical_result_bytes(pooled) == reference,
        "serial_vs_cache_replay":
            canonical_result_bytes(replayed) == reference,
        "bit_identical":
            canonical_result_bytes(pooled) == reference
            and canonical_result_bytes(replayed) == reference,
    }


def run_dispatch_bench(workers: int = 2, scale: float = 0.1,
                       seed: int = 0) -> dict[str, Any]:
    """Serial vs fleet dispatch on the 16-cell machine x scheme grid.

    Runs Euler under all 8 evaluated schemes on both machine presets
    (CC-NUMA-16 and CMP-8) twice: serially in-process, then through a
    :class:`~repro.dist.coordinator.FleetDispatcher` backed by
    ``workers`` localhost worker *subprocesses* — real ``repro-tls
    worker`` agents over TCP, so the number reflects genuine dispatch
    overhead (and genuine overlap, when the host has the cores). Every
    cell's canonical serialization is byte-compared across the legs;
    ``byte_identical`` is the fleet's CI gate. Unlike the pool leg of
    :func:`run_sweep_bench`, this works on a 1-CPU runner: the workers
    are independent processes the OS can timeshare.
    """
    from repro.analysis.serialization import canonical_result_bytes
    from repro.core.config import CMP_8, NUMA_16
    from repro.core.taxonomy import EVALUATED_SCHEMES
    from repro.dist import FleetDispatcher
    from repro.runner.jobs import SimJob, WorkloadSpec
    from repro.runner.runner import SweepRunner

    workers = max(2, workers)
    jobs = SimJob.grid(
        [NUMA_16, CMP_8], EVALUATED_SCHEMES,
        [WorkloadSpec("Euler", seed=seed, scale=scale)])
    started = time.perf_counter()
    serial_results = SweepRunner(jobs=1, cache=None).run_many(jobs)
    serial_seconds = time.perf_counter() - started
    serial_bytes = [canonical_result_bytes(r) for r in serial_results]

    with tempfile.TemporaryDirectory(prefix="repro-fleet-") as tmp:
        dispatcher = FleetDispatcher(
            min_workers=workers, local_workers=workers,
            worker_cache_dir=tmp)
        try:
            dispatcher.start()
            runner = SweepRunner(cache=None, dispatcher=dispatcher)
            started = time.perf_counter()
            fleet_results = runner.run_many(jobs)
            fleet_seconds = time.perf_counter() - started
            stats = dispatcher.stats_dict()
            backend = dispatcher.describe()
        finally:
            dispatcher.stop()
    fleet_bytes = [canonical_result_bytes(r) for r in fleet_results]
    return {
        "backend": backend,
        "workers": workers,
        "cells": len(jobs),
        "scale": scale,
        "serial_seconds": round(serial_seconds, 3),
        "fleet_seconds": round(fleet_seconds, 3),
        "speedup_fleet_vs_serial": round(
            serial_seconds / fleet_seconds, 2) if fleet_seconds else None,
        "byte_identical": serial_bytes == fleet_bytes,
        "fleet": stats,
    }


def check_floor(engine_report: dict[str, Any],
                floor: float = FLOOR_EVENTS_PER_SECOND) -> dict[str, Any]:
    """Compare an engine-bench report against the committed perf floor."""
    eps = engine_report["events_per_second"]
    return {
        "floor_events_per_second": round(floor, 1),
        "measured_events_per_second": eps,
        "passed": eps >= floor,
    }


def compare_kernel(scale: float = 1.0, seed: int = 0) -> dict[str, Any]:
    """A/B the opt-in drain kernel against the reference loop.

    Runs the engine microbench grid twice — once with
    :data:`repro.core.engine.KERNEL_ENV` unset (the in-class reference
    loop) and once with it set — and byte-compares the canonical
    serialization of every cell. The two legs must be bit-identical:
    the kernel mirrors the reference loop statement for statement, so
    any divergence is a lock-step bug, not a tolerance question.

    Returns throughput for both legs, whether the kernel module loaded
    as a compiled extension, and the ``byte_identical`` verdict.
    """
    from repro.analysis.serialization import canonical_result_bytes
    from repro.core.config import NUMA_16
    from repro.core.engine import KERNEL_ENV, Simulation, kernel_info
    from repro.workloads.apps import APPLICATIONS

    schemes = _engine_bench_schemes()
    legs: dict[str, dict[str, Any]] = {}
    blobs: dict[str, list[bytes]] = {}
    previous = os.environ.get(KERNEL_ENV)
    try:
        for leg, env_value in (("reference", None), ("kernel", "1")):
            if env_value is None:
                os.environ.pop(KERNEL_ENV, None)
            else:
                os.environ[KERNEL_ENV] = env_value
            events = 0
            leg_blobs: list[bytes] = []
            started = time.perf_counter()
            for app in ENGINE_BENCH_APPS:
                workload = APPLICATIONS[app].generate(seed=seed, scale=scale)
                for scheme in schemes:
                    result = Simulation(NUMA_16, scheme, workload).run()
                    events += result.events_processed
                    leg_blobs.append(canonical_result_bytes(result))
            elapsed = time.perf_counter() - started
            eps = events / elapsed if elapsed > 0 else 0.0
            legs[leg] = {
                "events": events,
                "seconds": round(elapsed, 3),
                "events_per_second": round(eps, 1),
            }
            blobs[leg] = leg_blobs
    finally:
        if previous is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = previous
    return {
        "scale": scale,
        "kernel_compiled": kernel_info()["compiled"],
        "reference": legs["reference"],
        "kernel": legs["kernel"],
        "byte_identical": blobs["reference"] == blobs["kernel"],
    }


#: Default destination of the :func:`profile_engine` listing.
DEFAULT_PROFILE_PATH = Path("docs/report/profile.txt")


def profile_engine(output: str | Path = DEFAULT_PROFILE_PATH,
                   scale: float = 0.5, seed: int = 0,
                   top: int = 30) -> str:
    """Profile one representative cell under cProfile.

    Runs Euler x MultiT&MV Eager AMM on CC-NUMA-16 (a mid-weight cell
    exercising the multi-version hot paths) and writes two top-``top``
    listings to ``output``: one ordered by cumulative time (where the
    simulated work goes) and one ordered by internal/tottime (which
    function bodies actually burn the cycles — the view that matters
    on the batched drain loop, whose inlined fast paths absorb work
    that cumulative ordering attributes to callees). Returns the
    combined listing.
    """
    import cProfile
    import io
    import pstats

    from repro.core.config import NUMA_16
    from repro.core.engine import Simulation
    from repro.core.taxonomy import MULTI_T_MV_EAGER
    from repro.workloads.apps import APPLICATIONS

    workload = APPLICATIONS["Euler"].generate(seed=seed, scale=scale)
    profiler = cProfile.Profile()
    profiler.enable()
    result = Simulation(NUMA_16, MULTI_T_MV_EAGER, workload).run()
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    buffer.write(f"\n==== top {top} by internal time (tottime) ====\n")
    stats.sort_stats("tottime").print_stats(top)
    listing = (
        f"cProfile: Euler x MultiT&MV Eager AMM on CC-NUMA-16 "
        f"(scale={scale}, seed={seed}); "
        f"{result.events_processed:,} events; top {top} by cumulative "
        f"time, then by internal time\n"
        + buffer.getvalue()
    )
    path = Path(output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(listing)
    return listing


def run_bench(smoke: bool = False, jobs: int | None = None,
              seed: int = 0,
              output: str | Path | None = "BENCH_sweep.json",
              kernel_compare: bool = False,
              fleet: int = 0,
              ) -> dict[str, Any]:
    """Full perf harness; writes the JSON report to ``output``.

    ``smoke=True`` shrinks the workloads (scale 0.1) so the whole run —
    engine bench, three sweeps, determinism probe — finishes in well
    under 30 seconds; the numbers are then only sanity checks, not
    comparable to the seed baselines (the floor check still applies:
    events/second is roughly scale-independent).

    ``kernel_compare=True`` adds a ``kernel_compare`` section: the
    engine grid run on both drain-loop legs (reference and
    ``REPRO_TLS_KERNEL``) with a byte-identity verdict.

    ``fleet=N`` (N >= 2) adds a ``dispatch`` section: the 16-cell grid
    run serially and through a fleet of N localhost worker
    subprocesses, with wall-clock for both legs and a byte-identity
    verdict (see :func:`run_dispatch_bench`).
    """
    scale = 0.1 if smoke else 1.0
    engine = run_engine_bench(scale=scale, seed=seed)
    report: dict[str, Any] = {
        "benchmark": "tls-buffering perf harness",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "engine": engine,
        "floor": check_floor(engine),
        "sweep": run_sweep_bench(scale=scale, seed=seed, jobs=jobs),
        "determinism": check_determinism(
            scale=0.1 if smoke else 0.25, seed=seed),
    }
    if kernel_compare:
        report["kernel_compare"] = compare_kernel(scale=scale, seed=seed)
    if fleet >= 2:
        report["dispatch"] = run_dispatch_bench(
            workers=fleet, scale=scale, seed=seed)
    if output is not None:
        path = Path(output)
        path.write_text(json.dumps(report, indent=2) + "\n")
        report["output"] = str(path)
    return report


def render_report(report: dict[str, Any]) -> str:
    """Human-readable summary of a :func:`run_bench` report."""
    engine = report["engine"]
    sweep = report["sweep"]
    det = report["determinism"]
    lines = [
        f"perf harness ({'smoke' if report['smoke'] else 'full'}; "
        f"{report['cpu_count']} CPUs)",
        f"  engine : {engine['events']:>9,} events in "
        f"{engine['seconds']:7.2f}s = "
        f"{engine['events_per_second']:>9,.0f} ev/s"
        + (f" ({engine['speedup_vs_seed']:.2f}x vs seed)"
           if "speedup_vs_seed" in engine else ""),
        f"  sweep  : serial cold {sweep['serial_cold_seconds']:7.2f}s | "
        + (f"parallel(width {sweep.get('pool_width', sweep['jobs'])}) cold "
           f"{sweep['parallel_cold_seconds']:7.2f}s | "
           if sweep.get("parallel_cold_seconds") is not None
           else "parallel skipped (pool width < 2) | ")
        + f"warm cache {sweep['warm_cache_seconds']:7.2f}s",
    ]
    if "speedup_warm_vs_seed" in sweep:
        parallel_part = (
            f"parallel {sweep['speedup_parallel_vs_seed']:.2f}x, "
            if "speedup_parallel_vs_seed" in sweep else "")
        lines.append(
            f"           vs seed {sweep['seed_serial_seconds']:.2f}s: "
            f"serial {sweep['speedup_serial_vs_seed']:.2f}x, "
            + parallel_part
            + f"warm {sweep['speedup_warm_vs_seed']:.2f}x")
    if "floor" in report:
        floor = report["floor"]
        lines.append(
            f"  floor  : {floor['measured_events_per_second']:,.0f} ev/s vs "
            f"committed floor {floor['floor_events_per_second']:,.0f} ev/s: "
            + ("pass" if floor["passed"] else "FAIL (perf regression!)"))
    if "kernel_compare" in report:
        compare = report["kernel_compare"]
        lines.append(
            f"  kernel : reference "
            f"{compare['reference']['events_per_second']:,.0f} ev/s | "
            f"kernel ({'compiled' if compare['kernel_compiled'] else 'source'})"
            f" {compare['kernel']['events_per_second']:,.0f} ev/s | "
            + ("byte-identical"
               if compare["byte_identical"] else "MISMATCH (lock-step bug!)"))
    if "dispatch" in report:
        dispatch = report["dispatch"]
        lines.append(
            f"  fleet  : {dispatch['cells']} cells serial "
            f"{dispatch['serial_seconds']:7.2f}s | "
            f"{dispatch['workers']} workers "
            f"{dispatch['fleet_seconds']:7.2f}s "
            f"({dispatch['speedup_fleet_vs_serial']:.2f}x) | "
            + ("byte-identical" if dispatch["byte_identical"]
               else "MISMATCH (fleet divergence!)"))
    lines.append(
        "  determinism: "
        + ("bit-identical across serial/pool/cache-replay"
           if det["bit_identical"] else "MISMATCH (regression!)"))
    if "output" in report:
        lines.append(f"  report written to {report['output']}")
    return "\n".join(lines)
