"""Simulation jobs: self-contained, hashable descriptions of one run.

A :class:`SimJob` carries everything needed to execute one simulation —
the machine, the scheme (or ``None`` for the sequential baseline), the
workload (a regenerable :class:`WorkloadSpec`, a content-addressed
:class:`~repro.workloads.trace.TraceWorkload` trace reference, or an
explicit :class:`~repro.workloads.base.Workload`), and the engine
options. Jobs
are picklable, so the sweep runner can ship them to worker processes,
and they serialize to a canonical JSON form whose SHA-256 digest is the
content address of the result in the on-disk cache.

The cache key includes :data:`repro.core.engine.ENGINE_VERSION`, so
results produced by an older timing model are never replayed as current.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from functools import lru_cache
from typing import Any, Sequence

from repro.core.config import MachineConfig
from repro.core.engine import ENGINE_VERSION
from repro.core.taxonomy import Scheme
from repro.workloads.base import Workload
from repro.workloads.trace import TraceWorkload


@dataclass(frozen=True)
class WorkloadSpec:
    """A regenerable reference to a synthetic application workload.

    Carries generator *parameters* instead of the generated task list, so
    jobs stay tiny when crossing process boundaries; generation is
    deterministic in (app, seed, scale, invocations, iterations_per_task).
    """

    app: str
    seed: int = 0
    scale: float = 1.0
    invocations: int = 1
    iterations_per_task: float = 1.0

    def generate(self) -> Workload:
        """Build (and memoize) the workload this spec describes."""
        from repro.workloads.apps import APPLICATIONS

        return APPLICATIONS[self.app].generate(
            seed=self.seed, scale=self.scale, invocations=self.invocations,
            iterations_per_task=self.iterations_per_task,
        )


@lru_cache(maxsize=64)
def _generate_cached(spec: WorkloadSpec) -> Workload:
    """Process-local memo: six schemes of one app share one generation."""
    return spec.generate()


def _workload_fingerprint(
    workload: WorkloadSpec | TraceWorkload | Workload,
) -> dict[str, Any]:
    """Canonical JSON-ready identity of the job's workload.

    Trace workloads are identified by their verified *content digest*
    (never the filename), so two encodings of the same trace share one
    cache entry and any edit to the trace content misses.
    """
    if isinstance(workload, WorkloadSpec):
        return {"kind": "spec", **asdict(workload)}
    if isinstance(workload, TraceWorkload):
        return workload.fingerprint()
    from repro.analysis.serialization import workload_to_dict

    return {"kind": "explicit", **workload_to_dict(workload)}


@dataclass(frozen=True)
class SimJob:
    """One simulation to execute: (machine x scheme x workload x options).

    ``scheme=None`` requests the sequential baseline instead of a TLS
    simulation; the engine options are then ignored.
    """

    machine: MachineConfig
    workload: WorkloadSpec | TraceWorkload | Workload
    scheme: Scheme | None = None
    high_level_patterns: bool = False
    violation_granularity: str = "word"
    #: Attach the runtime :class:`~repro.validate.invariants.\
    #: InvariantChecker` to the simulation. The checker is a pure observer
    #: (results are bit-identical either way) but it is part of the cache
    #: identity anyway: a checked run *proves* its invariants held, and a
    #: replayed unchecked result must never masquerade as that proof.
    check_invariants: bool = False
    #: Attach a :class:`repro.obs.MetricsHook` and carry its snapshot on
    #: ``result.metrics`` (and through worker/cache payloads). A pure
    #: observer, but part of the cache identity: a replayed plain result
    #: has no metrics to offer.
    collect_metrics: bool = False
    #: Attach a :class:`~repro.core.trace.TraceRecorder` and carry it on
    #: ``result.trace``. Traced jobs always execute live in-process —
    #: the recorder cannot cross a process or disk boundary — and are
    #: never stored in (or loaded from) the result cache.
    traced: bool = False

    @classmethod
    def grid(
        cls,
        machines: "Sequence[MachineConfig]",
        schemes: "Sequence[Scheme | None]",
        workloads: "Sequence[WorkloadSpec | TraceWorkload | Workload]",
        **options: Any,
    ) -> "list[SimJob]":
        """The full (machine x scheme x workload) cartesian job grid.

        ``schemes`` may include ``None`` to request the sequential
        baseline alongside the TLS runs; ``options`` (engine flags such
        as ``collect_metrics``) apply to every job. Order is
        deterministic: machines outermost, workloads innermost — the
        order the design-space exploration and sweep CLI both rely on to
        map results back to grid cells.
        """
        return [
            cls(machine=machine, workload=workload, scheme=scheme,
                **options)
            for machine in machines
            for scheme in schemes
            for workload in workloads
        ]

    def resolve_workload(self) -> Workload:
        """The concrete workload for this job (generated/loaded if needed)."""
        if isinstance(self.workload, WorkloadSpec):
            return _generate_cached(self.workload)
        if isinstance(self.workload, TraceWorkload):
            return self.workload.resolve()
        return self.workload

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, WorkloadSpec):
            return self.workload.app
        return self.workload.name

    def describe(self) -> str:
        """Human-readable one-line job description."""
        scheme = self.scheme.name if self.scheme else "sequential"
        return f"{self.machine.name} / {scheme} / {self.workload_name}"

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    def identity(self) -> dict[str, Any]:
        """The canonical JSON-ready identity hashed into the cache key."""
        return {
            "engine_version": ENGINE_VERSION,
            "machine": asdict(self.machine),
            "scheme": self.scheme.name if self.scheme else None,
            "workload": _workload_fingerprint(self.workload),
            "high_level_patterns": self.high_level_patterns,
            "violation_granularity": self.violation_granularity,
            "check_invariants": self.check_invariants,
            "collect_metrics": self.collect_metrics,
            "traced": self.traced,
        }

    def cache_key(self) -> str:
        """SHA-256 content address of this job's result."""
        blob = json.dumps(self.identity(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()
