"""Per-key single-flight: one computation, any number of waiters.

Cache-stampede protection for the runner and the service layer. When
several callers — threads inside one process, or HTTP requests on one
service frontend — all miss the cache on the same content-address key at
the same time, exactly one of them (the *leader*) computes the result;
everyone else (the *joiners*) blocks on the leader's
:class:`~concurrent.futures.Future` and decodes the same payload bytes.

This generalizes the in-flight dedup that used to live inline in
:meth:`~repro.runner.runner.SweepRunner.run_many`:

* **Leadership is atomic.** :meth:`SingleFlight.claim` either installs a
  fresh flight and reports the caller as leader, or returns the live
  flight to join — under one lock, so two concurrent claimants can never
  both lead.
* **Leaders cannot leak a flight.** The contract is claim →
  (:meth:`resolve` | :meth:`abandon`): ``abandon`` is idempotent and
  safe to call from a ``finally`` block after ``resolve`` — it only
  propagates the failure if the flight never produced a value, so a
  crashed leader wakes its joiners with the exception instead of
  deadlocking them.
* **Joiners are timeout- and cancellation-safe.** :meth:`wait` bounds
  the wait; a joiner that gives up (timeout, dropped HTTP connection)
  simply stops waiting — the leader's computation and the flights of
  other joiners are unaffected, and the result still lands in the cache
  for the next request.

Flights carry serialized payload *bytes* (the same form the cache tiers
store), so every waiter decodes privately and shares no mutable state
with the leader — the property the bit-identity contract relies on.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass


@dataclass
class SingleFlightStats:
    """Counters describing how much duplicate work was collapsed."""

    #: Flights created (cache misses that actually computed).
    led: int = 0
    #: Claims that joined an existing flight instead of recomputing.
    joined: int = 0
    #: Flights that ended in an exception (propagated to all waiters).
    failed: int = 0
    #: Joiner waits that gave up on their timeout.
    timeouts: int = 0

    def to_dict(self) -> dict[str, int]:
        """JSON-ready counter snapshot (for ``/v1/cache/stats``)."""
        return {"led": self.led, "joined": self.joined,
                "failed": self.failed, "timeouts": self.timeouts}


class SingleFlight:
    """Registry of in-flight computations keyed by content address."""

    def __init__(self) -> None:
        self._flights: dict[str, Future[bytes]] = {}
        self._lock = threading.Lock()
        self.stats = SingleFlightStats()

    # ------------------------------------------------------------------
    def claim(self, key: str) -> tuple[Future[bytes], bool]:
        """Lead or join the flight for ``key``.

        Returns ``(flight, is_leader)``. A leader must eventually call
        :meth:`resolve` or :meth:`abandon` with the returned flight; a
        joiner only :meth:`wait`\\ s on it.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                self.stats.joined += 1
                return flight, False
            flight = Future()
            self._flights[key] = flight
            self.stats.led += 1
            return flight, True

    def resolve(self, key: str, flight: Future[bytes], raw: bytes) -> None:
        """Publish the leader's payload bytes and retire the flight."""
        self._retire(key, flight)
        flight.set_result(raw)

    def abandon(self, key: str, flight: Future[bytes],
                error: BaseException) -> None:
        """Retire a flight that produced no value, waking waiters.

        Idempotent: calling it on an already-resolved flight (the
        leader's ``finally`` path) retires nothing and propagates
        nothing.
        """
        self._retire(key, flight)
        if not flight.done():
            self.stats.failed += 1
            flight.set_exception(error)

    def wait(self, flight: Future[bytes],
             timeout: float | None = None) -> bytes:
        """A joiner's bounded wait for the leader's payload bytes.

        Raises :class:`concurrent.futures.TimeoutError` when ``timeout``
        elapses first; giving up never disturbs the flight itself.
        """
        try:
            return flight.result(timeout)
        except FutureTimeoutError:
            self.stats.timeouts += 1
            raise

    # ------------------------------------------------------------------
    def pending(self, key: str) -> bool:
        """Whether a computation for ``key`` is currently in flight."""
        with self._lock:
            return key in self._flights

    def __len__(self) -> int:
        with self._lock:
            return len(self._flights)

    def _retire(self, key: str, flight: Future[bytes]) -> None:
        """Drop the registry entry iff it still names this flight."""
        with self._lock:
            if self._flights.get(key) is flight:
                del self._flights[key]
