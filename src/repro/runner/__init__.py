"""Sweep/runner subsystem: parallel execution + persistent result cache.

``SweepRunner`` fans (machine x scheme x workload x seed) simulation
grids out across a process pool and backs every run with a
content-addressed on-disk cache, so repeated figure and ablation runs
replay prior simulations instead of recomputing them. See
:mod:`repro.runner.runner` for the determinism contract.
"""

from repro.runner.cache import (
    CACHE_ENV_VAR,
    DEFAULT_CACHE_DIR,
    SHARD_PREFIX_LEN,
    CacheBackend,
    CacheStats,
    DirectoryBackend,
    MemoryResultCache,
    ResultCache,
    ShardedResultCache,
    default_cache_root,
    migrate_flat_layout,
    shard_of,
)
from repro.runner.jobs import SimJob, WorkloadSpec
from repro.runner.runner import (
    DEFAULT_CHUNK_SIZE,
    PROGRESS_SOURCES,
    SweepRunner,
    canonical_payload_digest,
    default_jobs,
    execute_job,
    payload_from_result,
    result_from_payload,
)
from repro.runner.singleflight import SingleFlight, SingleFlightStats

__all__ = [
    "CACHE_ENV_VAR",
    "CacheBackend",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_CHUNK_SIZE",
    "DirectoryBackend",
    "MemoryResultCache",
    "PROGRESS_SOURCES",
    "ResultCache",
    "SHARD_PREFIX_LEN",
    "ShardedResultCache",
    "SimJob",
    "SingleFlight",
    "SingleFlightStats",
    "SweepRunner",
    "WorkloadSpec",
    "canonical_payload_digest",
    "default_cache_root",
    "default_jobs",
    "migrate_flat_layout",
    "execute_job",
    "payload_from_result",
    "result_from_payload",
    "shard_of",
]
