"""Parallel sweep execution over (machine x scheme x workload) grids.

:class:`SweepRunner` is the single funnel every experiment submits
simulations through. It

* consults the content-addressed :class:`~repro.runner.cache.ResultCache`
  first, replaying prior runs of the same job instead of re-simulating;
* fans cache misses out across a :class:`concurrent.futures.\
ProcessPoolExecutor` (``jobs`` workers, default ``os.cpu_count()``), and
* reconstructs every pooled or replayed result through the same full
  JSON serialization, so a result is bit-identical (see
  :func:`~repro.analysis.serialization.canonical_result_bytes`) whether
  it was computed serially, in a worker process, or read back from disk.

Determinism: a job fully determines its simulation — workload generation
is seeded, and the engine itself is sequential per run — so the
execution mode can never change a result, only how fast it arrives.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Sequence

from repro.baselines.sequential import SequentialResult, simulate_sequential
from repro.core.engine import Simulation
from repro.core.results import SimulationResult
from repro.runner.cache import ResultCache
from repro.runner.jobs import SimJob


def execute_job(job: SimJob) -> SimulationResult | SequentialResult:
    """Run one job in the current process and return its live result.

    Observation attachments requested by the job — invariant checker,
    metrics hook, trace recorder — are composed here; all are pure
    observers, so the result is bit-identical with or without them.
    """
    workload = job.resolve_workload()
    if job.scheme is None:
        return simulate_sequential(job.machine, workload)
    hooks = []
    if job.check_invariants:
        # Imported lazily: repro.validate depends on repro.runner for the
        # conformance oracle's fan-out.
        from repro.validate.invariants import InvariantChecker

        hooks.append(InvariantChecker())
    if job.collect_metrics:
        from repro.obs.metrics import MetricsHook

        hooks.append(MetricsHook())
    hook = None
    if len(hooks) == 1:
        hook = hooks[0]
    elif hooks:
        from repro.core.hooks import CompositeHook

        hook = CompositeHook(hooks)
    trace = None
    if job.traced:
        from repro.core.trace import TraceRecorder

        trace = TraceRecorder()
    result = Simulation(
        job.machine, job.scheme, workload,
        high_level_patterns=job.high_level_patterns,
        violation_granularity=job.violation_granularity,
        hook=hook,
        trace=trace,
    ).run()
    if trace is not None:
        result.trace = trace
    return result


def payload_from_result(
    result: SimulationResult | SequentialResult,
) -> dict[str, Any]:
    """The full JSON payload stored in the cache / returned by workers."""
    from repro.analysis.serialization import (
        result_to_dict,
        sequential_result_to_dict,
    )

    if isinstance(result, SequentialResult):
        return sequential_result_to_dict(result)
    payload = result_to_dict(result, full=True)
    # Metrics ride the payload (never the canonical serialized form), so
    # pooled and cache-replayed metric jobs still carry their snapshot.
    metrics = getattr(result, "metrics", None)
    if metrics is not None:
        payload["metrics"] = metrics.to_dict()
    return payload


def result_from_payload(
    payload: dict[str, Any],
) -> SimulationResult | SequentialResult:
    """Rebuild the result a worker or cache entry serialized."""
    from repro.analysis.serialization import (
        result_from_dict,
        sequential_result_from_dict,
    )

    if payload.get("kind") == "sequential":
        return sequential_result_from_dict(payload)
    metrics = payload.pop("metrics", None)
    result = result_from_dict(payload)
    if metrics is not None:
        from repro.obs.metrics import MetricsSnapshot

        result.metrics = MetricsSnapshot.from_dict(metrics)
    return result


def _worker(job: SimJob) -> tuple[str, dict[str, Any]]:
    """Pool entry point: execute and return (cache key, payload)."""
    return job.cache_key(), payload_from_result(execute_job(job))


def default_jobs() -> int:
    """Default worker count: every core the container grants us."""
    return os.cpu_count() or 1


class SweepRunner:
    """Cache-backed, optionally parallel executor of simulation jobs."""

    def __init__(self, jobs: int | None = None,
                 cache: ResultCache | None = None) -> None:
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            self.jobs = 1
        self.cache = cache

    # ------------------------------------------------------------------
    def run(self, job: SimJob) -> SimulationResult | SequentialResult:
        """Execute (or replay) one job."""
        return self.run_many([job])[0]

    def run_many(
        self, jobs: Sequence[SimJob],
    ) -> list[SimulationResult | SequentialResult]:
        """Execute a batch of jobs, returning results in input order.

        Duplicate jobs (same cache key) are computed once. Cache hits are
        replayed from disk; misses run in a process pool when more than
        one distinct job is pending and ``jobs > 1``, else serially in
        this process. Every freshly computed result is stored back to the
        cache (when one is configured).
        """
        by_key: dict[str, SimulationResult | SequentialResult] = {}
        keys = [job.cache_key() for job in jobs]
        pending: list[tuple[str, SimJob]] = []
        seen: set[str] = set()
        for key, job in zip(keys, jobs):
            if key in seen:
                continue
            seen.add(key)
            if job.traced:
                # A trace recorder lives only in this process: traced jobs
                # run live and bypass the cache in both directions.
                by_key[key] = execute_job(job)
                continue
            payload = self.cache.load(key) if self.cache is not None else None
            if payload is not None:
                by_key[key] = result_from_payload(payload)
            else:
                pending.append((key, job))

        if pending:
            for key, payload in self._compute(pending):
                if self.cache is not None:
                    self.cache.store(key, payload)
                    self.cache.stats.stores += 1
                by_key[key] = result_from_payload(payload)

        return [by_key[key] for key in keys]

    # ------------------------------------------------------------------
    def _compute(
        self, pending: list[tuple[str, SimJob]],
    ) -> list[tuple[str, dict[str, Any]]]:
        if self.jobs > 1 and len(pending) > 1:
            try:
                with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(pending))
                ) as pool:
                    return list(pool.map(_worker, [j for _k, j in pending]))
            except (OSError, ImportError):
                # Pool creation can fail in constrained sandboxes
                # (no /dev/shm, fork limits); fall back to serial.
                pass
        return [(key, payload_from_result(execute_job(job)))
                for key, job in pending]
