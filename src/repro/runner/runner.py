"""Parallel sweep execution over (machine x scheme x workload) grids.

:class:`SweepRunner` is the single funnel every experiment submits
simulations through. It

* consults a two-tier result cache — a bounded in-process
  :class:`~repro.runner.cache.MemoryResultCache` LRU in front of the
  content-addressed on-disk :class:`~repro.runner.cache.ResultCache` —
  replaying prior runs of the same job instead of re-simulating;
* deduplicates *in-flight* work: concurrent :meth:`SweepRunner.run_many`
  callers (threads sharing one runner) that request the same cell share
  a single computation instead of racing to repeat it;
* hands the residue — jobs that actually need computing — to a
  pluggable :class:`~repro.dist.dispatch.Dispatcher`: by default the
  single-host :class:`~repro.dist.dispatch.LocalPoolDispatcher`
  (chunked :class:`concurrent.futures.ProcessPoolExecutor` fan-out with
  a serial fallback), or a
  :class:`~repro.dist.coordinator.FleetDispatcher` shipping the same
  chunks to remote workers;
* ships worker results back as zlib-compressed JSON bytes (one compact
  buffer per job instead of a pickled object graph), and
* reconstructs every pooled or replayed result through the same full
  JSON serialization, so a result is bit-identical (see
  :func:`~repro.analysis.serialization.canonical_result_bytes`) whether
  it was computed serially, in a worker process, replayed from the
  memory tier, or read back from disk.

Determinism: a job fully determines its simulation — workload generation
is seeded, and the engine itself is sequential per run — so the
execution mode can never change a result, only how fast it arrives.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from typing import Any, Callable, Sequence

from repro.baselines.sequential import SequentialResult, simulate_sequential
from repro.core.engine import Simulation
from repro.core.results import SimulationResult
from repro.runner.cache import MemoryResultCache, ResultCache
from repro.runner.jobs import SimJob
from repro.runner.singleflight import SingleFlight

#: Per-job completion callback: ``progress(key, source)`` where source is
#: one of :data:`PROGRESS_SOURCES`. Called from the submitting thread.
ProgressCallback = Callable[[str, str], None]

#: Where a finished job's result came from, in the order ``run_many``
#: resolves tiers: the in-process LRU, the shared (disk) tier, a live
#: computation this call led, a concurrent caller's in-flight
#: computation, or an uncacheable traced run.
PROGRESS_SOURCES = ("memory", "disk", "computed", "inflight", "live")


def execute_job(job: SimJob) -> SimulationResult | SequentialResult:
    """Run one job in the current process and return its live result.

    Observation attachments requested by the job — invariant checker,
    metrics hook, trace recorder — are composed here; all are pure
    observers, so the result is bit-identical with or without them.
    """
    workload = job.resolve_workload()
    if job.scheme is None:
        return simulate_sequential(job.machine, workload)
    hooks = []
    if job.check_invariants:
        # Imported lazily: repro.validate depends on repro.runner for the
        # conformance oracle's fan-out.
        from repro.validate.invariants import InvariantChecker

        hooks.append(InvariantChecker())
    if job.collect_metrics:
        from repro.obs.metrics import MetricsHook

        hooks.append(MetricsHook())
    hook = None
    if len(hooks) == 1:
        hook = hooks[0]
    elif hooks:
        from repro.core.hooks import CompositeHook

        hook = CompositeHook(hooks)
    trace = None
    if job.traced:
        from repro.core.trace import TraceRecorder

        trace = TraceRecorder()
    result = Simulation(
        job.machine, job.scheme, workload,
        high_level_patterns=job.high_level_patterns,
        violation_granularity=job.violation_granularity,
        hook=hook,
        trace=trace,
    ).run()
    if trace is not None:
        result.trace = trace
    return result


def payload_from_result(
    result: SimulationResult | SequentialResult,
) -> dict[str, Any]:
    """The full JSON payload stored in the cache / returned by workers."""
    from repro.analysis.serialization import (
        result_to_dict,
        sequential_result_to_dict,
    )

    if isinstance(result, SequentialResult):
        return sequential_result_to_dict(result)
    payload = result_to_dict(result, full=True)
    # Metrics ride the payload (never the canonical serialized form), so
    # pooled and cache-replayed metric jobs still carry their snapshot.
    metrics = getattr(result, "metrics", None)
    if metrics is not None:
        payload["metrics"] = metrics.to_dict()
    return payload


def result_from_payload(
    payload: dict[str, Any],
) -> SimulationResult | SequentialResult:
    """Rebuild the result a worker or cache entry serialized."""
    from repro.analysis.serialization import (
        result_from_dict,
        sequential_result_from_dict,
    )

    if payload.get("kind") == "sequential":
        return sequential_result_from_dict(payload)
    metrics = payload.pop("metrics", None)
    result = result_from_dict(payload)
    if metrics is not None:
        from repro.obs.metrics import MetricsSnapshot

        result.metrics = MetricsSnapshot.from_dict(metrics)
    return result


def _encode_payload(payload: dict[str, Any]) -> bytes:
    """Serialize a payload to the compact JSON bytes the tiers store."""
    return json.dumps(payload, separators=(",", ":")).encode()


def canonical_payload_digest(raw: bytes) -> str:
    """SHA-256 of the canonical byte form of a serialized result payload.

    For simulation results this decodes the payload and hashes
    :func:`~repro.analysis.serialization.canonical_result_bytes` — the
    exact bytes the determinism tests compare — so the digest is
    identical whether the result was computed here, by a CLI run, by a
    service frontend, or by a fleet worker on another host (the digest
    every fleet result envelope carries). Sequential-baseline payloads
    (which carry no host-measured field) hash their sorted-key JSON
    form directly.
    """
    from repro.analysis.serialization import canonical_result_bytes

    payload = json.loads(raw)
    if payload.get("kind") == "sequential":
        blob = json.dumps(payload, sort_keys=True).encode()
    else:
        blob = canonical_result_bytes(result_from_payload(payload))
    return hashlib.sha256(blob).hexdigest()


def _worker_chunk(jobs: Sequence[SimJob]) -> list[tuple[str, bytes]]:
    """Pool entry point: execute a chunk of jobs in one task.

    Returns ``(cache key, zlib-compressed JSON payload)`` per job: one
    compact buffer crosses the process boundary instead of a pickled
    result-object graph, and the chunking amortizes task dispatch
    overhead across several simulations.
    """
    return [
        (
            job.cache_key(),
            zlib.compress(
                _encode_payload(payload_from_result(execute_job(job))), 1
            ),
        )
        for job in jobs
    ]


def default_jobs() -> int:
    """Default worker count: every core the container grants us."""
    return os.cpu_count() or 1


#: Jobs per pool task. Large enough to amortize pickling/IPC per task,
#: small enough to keep the pool load-balanced on uneven cell runtimes.
DEFAULT_CHUNK_SIZE = 4


class SweepRunner:
    """Cache-backed, optionally parallel executor of simulation jobs."""

    def __init__(self, jobs: int | None = None,
                 cache: ResultCache | None = None,
                 memory_cache: MemoryResultCache | None = None,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 inflight_timeout: float | None = None,
                 dispatcher: Any = None) -> None:
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            self.jobs = 1
        if chunk_size < 1:
            chunk_size = 1
        self.cache = cache
        self.memory_cache = (memory_cache if memory_cache is not None
                             else MemoryResultCache())
        self.chunk_size = chunk_size
        #: Bound on how long a ``run_many`` call waits for a computation
        #: another caller leads (``None`` = forever). Service frontends
        #: set this so a wedged leader turns into a timeout response
        #: instead of a hung request.
        self.inflight_timeout = inflight_timeout
        #: Cross-caller stampede protection: one leader computes each
        #: key, concurrent requesters join its flight.
        self.flights = SingleFlight()
        if dispatcher is None:
            # Imported lazily: repro.dist.dispatch reaches back into
            # this module for the pool entry points.
            from repro.dist.dispatch import LocalPoolDispatcher

            dispatcher = LocalPoolDispatcher(jobs=self.jobs,
                                             chunk_size=self.chunk_size)
        #: Where cache-miss batches compute: the single-host pool by
        #: default, or any :class:`~repro.dist.dispatch.Dispatcher`
        #: (e.g. a :class:`~repro.dist.coordinator.FleetDispatcher`).
        self.dispatcher = dispatcher

    # ------------------------------------------------------------------
    def run(self, job: SimJob) -> SimulationResult | SequentialResult:
        """Execute (or replay) one job."""
        return self.run_many([job])[0]

    def run_many(
        self, jobs: Sequence[SimJob],
        progress: ProgressCallback | None = None,
    ) -> list[SimulationResult | SequentialResult]:
        """Execute a batch of jobs, returning results in input order.

        Duplicate jobs (same cache key) are computed once — including
        across *concurrent* ``run_many`` calls on this runner, which
        join in-flight computations (:class:`~repro.runner.singleflight.\
SingleFlight`) instead of repeating them. Lookup order per distinct job:
        memory tier, then the shared (disk) tier — promoting hits into
        the memory tier — then live computation. Misses run in a chunked
        process pool when the batch is larger than one chunk and
        ``jobs > 1``, else serially in this process. Every freshly
        computed result is stored back through both tiers as soon as it
        lands (not after the whole batch), so concurrent readers and
        progress streams see cells the moment they finish.

        ``progress``, when given, is called once per *distinct* job as
        ``progress(key, source)`` with ``source`` one of
        :data:`PROGRESS_SOURCES` — the hook the service layer rides to
        stream per-cell completion.
        """
        by_key: dict[str, SimulationResult | SequentialResult] = {}
        keys = [job.cache_key() for job in jobs]
        pending: list[tuple[str, SimJob]] = []
        owned: dict[str, Any] = {}
        waiting: dict[str, Any] = {}
        seen: set[str] = set()

        def _notify(key: str, source: str) -> None:
            if progress is not None:
                progress(key, source)

        for key, job in zip(keys, jobs):
            if key in seen:
                continue
            seen.add(key)
            if job.traced:
                # A trace recorder lives only in this process: traced jobs
                # run live and bypass every cache tier in both directions.
                by_key[key] = execute_job(job)
                _notify(key, "live")
                continue
            raw = self.memory_cache.load(key)
            if raw is not None:
                by_key[key] = result_from_payload(json.loads(raw))
                _notify(key, "memory")
                continue
            payload = self.cache.load(key) if self.cache is not None else None
            if payload is not None:
                self.memory_cache.store(key, _encode_payload(payload))
                by_key[key] = result_from_payload(payload)
                _notify(key, "disk")
                continue
            flight, leader = self.flights.claim(key)
            if leader:
                owned[key] = flight
                pending.append((key, job))
            else:
                waiting[key] = flight

        if pending:
            def _landed(key: str, raw: bytes) -> None:
                """One computed payload: store, publish, decode, notify."""
                self.memory_cache.store(key, raw)
                if self.cache is not None:
                    self.cache.store_raw(key, raw)
                by_key[key] = result_from_payload(json.loads(raw))
                self.flights.resolve(key, owned[key], raw)
                _notify(key, "computed")

            try:
                self._compute(pending, _landed)
            finally:
                # Idempotent sweep: any flight _compute never reached
                # (it raised part-way) propagates the abort to joiners.
                for key, flight in owned.items():
                    self.flights.abandon(
                        key, flight,
                        RuntimeError(f"computation of {key} aborted"),
                    )

        for key, flight in waiting.items():
            raw = self.flights.wait(flight, self.inflight_timeout)
            by_key[key] = result_from_payload(json.loads(raw))
            _notify(key, "inflight")

        return [by_key[key] for key in keys]

    # ------------------------------------------------------------------
    def _compute(
        self, pending: list[tuple[str, SimJob]],
        on_result: Callable[[str, bytes], None],
    ) -> None:
        """Execute the cache misses through the configured dispatcher.

        The dispatcher contract (see :class:`~repro.dist.dispatch.\
Dispatcher`) mirrors what this method always promised: ``on_result``
        is called at most once per key, from this thread, with the
        canonical payload bytes — so every backend (serial, process
        pool, worker fleet) feeds the cache tiers identically.
        """
        self.dispatcher.compute(pending, on_result)
