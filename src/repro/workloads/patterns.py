"""Access-pattern building blocks for the synthetic workload generators.

The paper attributes every performance effect to a handful of memory access
patterns; this module provides a composable builder for each:

* **mostly-privatization** — every task writes (then reads) the *same*
  addresses, the ``work(k)`` pattern of Figure 1-(b), creating a new version
  of the same variable per task;
* **private output** — per-task distinct written lines (``a(i)`` style);
* **shared read-only** — input data read by all tasks, optionally
  *set-aliased* so the reads contend for the same cache sets that hold the
  privatization versions (the P3m buffer-pressure mechanism);
* **cross-task dependences** — a producer task writing a word late and a
  consumer reading it early, which manifests as an out-of-order RAW and a
  squash when the two run concurrently.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.config import WORDS_PER_LINE
from repro.errors import WorkloadError
from repro.tls.task import OP_COMPUTE, OP_READ, OP_WRITE, Operation
from repro.workloads.base import DEP_BASE, OUTPUT_BASE, PRIV_BASE, SHARED_RO_BASE

#: Cache-set aliasing stride, in lines. 2048 lines is a multiple of the set
#: count of every standard cache geometry in :mod:`repro.core.config`
#: (L1: 256 sets, CMP L2: 1024, NUMA L2: 2048) but *not* of the enlarged
#: Lazy.L2 (16384 sets), so aliased streams contend on the standard caches
#: and spread out on the enlarged one — exactly the Figure 10 Lazy.L2
#: behaviour.
ALIAS_STRIDE_LINES = 2048


def priv_word(line_index: int, word: int) -> int:
    """Word address of the privatization region's ``line_index`` line."""
    return PRIV_BASE + line_index * WORDS_PER_LINE + word


def output_word(task_id: int, line_index: int, stride_lines: int,
                word: int = 0) -> int:
    """Word address in task ``task_id``'s private output block."""
    base = OUTPUT_BASE + task_id * stride_lines * WORDS_PER_LINE
    return base + line_index * WORDS_PER_LINE + word


def dep_word(pair_index: int) -> int:
    """Word address used by cross-task dependence pair ``pair_index``."""
    return DEP_BASE + pair_index * WORDS_PER_LINE


def shared_word(rng: random.Random, working_set_lines: int) -> int:
    """A read-only shared word outside the privatization-aliased sets.

    Lines are offset so their set index stays clear of the low sets used by
    the privatization region, keeping the two patterns independent unless
    aliasing is explicitly requested.
    """
    line = 256 + rng.randrange(working_set_lines)
    return SHARED_RO_BASE + line * WORDS_PER_LINE


def aliased_shared_word(rng: random.Random, n_alias_groups: int,
                        set_span: int) -> int:
    """A read-only shared word that aliases the privatization cache sets.

    The returned line is ``group * ALIAS_STRIDE_LINES + offset`` with
    ``offset < set_span``, so on any cache whose set count divides
    :data:`ALIAS_STRIDE_LINES` it maps into the same sets as privatization
    lines ``0..set_span-1``.
    """
    group = 1 + rng.randrange(n_alias_groups)
    offset = rng.randrange(set_span)
    line = group * ALIAS_STRIDE_LINES + offset
    return SHARED_RO_BASE + line * WORDS_PER_LINE


@dataclass
class OpListBuilder:
    """Accumulates a task's operation list, spreading compute between ops.

    The builder collects memory operations into ordered *slots*; `build`
    then interleaves the task's compute instructions around them according
    to each slot's position fraction, producing the final tuple of
    operations with the instruction budget exactly honoured.
    """

    instructions: int
    _slots: list[tuple[float, int, int]] = field(default_factory=list)

    def add(self, position: float, kind: int, word: int) -> None:
        """Queue a memory op at ``position`` (0..1) through the task."""
        if not 0.0 <= position <= 1.0:
            raise WorkloadError(f"op position {position} outside [0, 1]")
        if kind not in (OP_READ, OP_WRITE):
            raise WorkloadError(f"op kind {kind} is not a memory op")
        self._slots.append((position, kind, word))

    def build(self) -> tuple[Operation, ...]:
        """Produce the op tuple; compute is split across slot gaps."""
        # Stable sort keeps the insertion order of equal positions, which
        # generators rely on for write-before-read within a phase.
        slots = sorted(self._slots, key=lambda s: s[0])
        ops: list[Operation] = []
        spent = 0
        previous = 0.0
        for position, kind, word in slots:
            target = int(self.instructions * position)
            if target > spent:
                ops.append((OP_COMPUTE, target - spent))
                spent = target
            ops.append((kind, word))
            previous = position
        if self.instructions > spent:
            ops.append((OP_COMPUTE, self.instructions - spent))
        return tuple(ops)
