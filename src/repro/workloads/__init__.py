"""Workloads: synthetic paper applications and trace-driven replay."""

from repro.workloads.apps import (
    APPLICATION_ORDER,
    APPLICATIONS,
    ApplicationProfile,
    PaperCharacteristics,
    generate_workload,
)
from repro.workloads.base import Workload
from repro.workloads.trace import (
    TRACE_GENERATORS,
    TraceWorkload,
    discover_traces,
    generate_trace_file,
    generate_trace_workload,
    hot_line_reduction,
    pointer_chase,
    squash_storm,
    verify_capture_replay,
)
from repro.workloads.traceio import (
    TRACE_SUFFIX,
    DecodedTrace,
    TraceHeader,
    TraceInfo,
    decode_trace,
    encode_trace,
    peek_trace,
    read_trace,
    trace_digest,
    write_trace,
)

__all__ = [
    "APPLICATIONS",
    "APPLICATION_ORDER",
    "ApplicationProfile",
    "DecodedTrace",
    "PaperCharacteristics",
    "TRACE_GENERATORS",
    "TRACE_SUFFIX",
    "TraceHeader",
    "TraceInfo",
    "TraceWorkload",
    "Workload",
    "decode_trace",
    "discover_traces",
    "encode_trace",
    "generate_trace_file",
    "generate_trace_workload",
    "generate_workload",
    "hot_line_reduction",
    "peek_trace",
    "pointer_chase",
    "read_trace",
    "squash_storm",
    "trace_digest",
    "verify_capture_replay",
    "write_trace",
]
