"""Synthetic workloads modeling the paper's seven applications."""

from repro.workloads.apps import (
    APPLICATION_ORDER,
    APPLICATIONS,
    ApplicationProfile,
    PaperCharacteristics,
    generate_workload,
)
from repro.workloads.base import Workload

__all__ = [
    "APPLICATIONS",
    "APPLICATION_ORDER",
    "ApplicationProfile",
    "PaperCharacteristics",
    "Workload",
    "generate_workload",
]
