"""Binary ``.tlstrace`` I/O: a compact, versioned memory-trace format.

A trace file stores one :class:`~repro.workloads.base.Workload` as a
header plus per-task streams of ``(op, addr, size)`` records:

======  ========  =====================================================
offset  size      field
======  ========  =====================================================
0       8         magic ``b"TLSTRACE"``
8       2         format version (little-endian u16, currently 1)
10      2         flags (u16, must be 0 in version 1)
12      4         header length ``H`` (u32)
16      H         header JSON (UTF-8, compact, sorted keys)
--      --        ``n_tasks`` task frames, each:
                  u32 task id | u32 record count | u32 payload length |
                  zlib-compressed packed records
--      8         footer magic ``b"TLSTEND."``
--      32        SHA-256 content digest (see :func:`trace_digest`)
======  ========  =====================================================

Each packed record is 13 bytes, ``struct '<BQI'``: op kind (u8), address
(u64), size (u32). ``OP_COMPUTE`` records carry the instruction count in
the *address* field (size must be 0, so arbitrarily long bursts fit);
``OP_READ``/``OP_WRITE`` records cover ``size`` consecutive word
addresses starting at ``addr`` — the encoder coalesces ascending runs,
and the decoder expands them back, so record framing is a compression
detail, not content.

The **content digest** is computed over the canonical logical content —
the header fields plus every task's fully expanded op stream — *not*
over the file bytes. Re-encoding a decoded trace (even with different
record coalescing) therefore preserves the digest, which is what lets
the digest serve as the trace's identity in the simulation result cache
(:mod:`repro.runner.jobs`). Decoding verifies the stored digest against
the recomputed one, so corruption can never change the decoded content
silently: a flipped byte either fails to parse, fails the digest check,
or (deflate padding bits) decodes to the identical content. Anything
that does not parse raises
:class:`~repro.errors.TraceFormatError` with the failing byte offset.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.errors import TraceFormatError
from repro.tls.task import OP_COMPUTE, OP_READ, OP_WRITE, Operation, TaskSpec
from repro.workloads.base import Workload

#: Canonical file extension of binary trace files.
TRACE_SUFFIX = ".tlstrace"

MAGIC = b"TLSTRACE"
FOOTER_MAGIC = b"TLSTEND."
FORMAT_VERSION = 1

_PREAMBLE = struct.Struct("<8sHHI")  # magic, version, flags, header length
_FRAME = struct.Struct("<III")       # task id, record count, payload length
_RECORD = struct.Struct("<BQI")      # op, addr, size
_DIGEST_TASK = struct.Struct("<QI")  # task id, op count (digest input)
_DIGEST_OP = struct.Struct("<BQ")    # op kind, value (digest input)

#: Maximum words one READ/WRITE record may span. Generous for any real
#: run (runs this long never occur), tight enough that a corrupt size
#: field cannot balloon decoding into gigabytes before the digest check.
MAX_RECORD_SPAN = 1 << 20

_MAX_U32 = (1 << 32) - 1
_MAX_U64 = (1 << 64) - 1

#: Domain-separation prefix of the content digest.
_DIGEST_SEED = b"repro-tls-trace-content-v1\n"


@dataclass(frozen=True)
class TraceHeader:
    """Decoded trace header: the workload identity minus the op streams."""

    name: str
    priv_base: int
    priv_limit: int
    n_tasks: int
    description: str = ""
    #: Free-form provenance pairs (generator parameters, capture source).
    meta: tuple[tuple[str, str], ...] = ()

    def canonical_json(self) -> bytes:
        """The canonical header bytes hashed into the content digest."""
        return json.dumps(
            {
                "name": self.name,
                "description": self.description,
                "priv_base": self.priv_base,
                "priv_limit": self.priv_limit,
                "meta": {k: v for k, v in self.meta},
            },
            sort_keys=True, separators=(",", ":"), ensure_ascii=False,
        ).encode()


@dataclass(frozen=True)
class TraceInfo:
    """Summary of one trace file (for ``trace info`` and capture stats)."""

    header: TraceHeader
    digest: str
    n_records: int
    n_ops: int
    file_bytes: int

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.header.name}: {self.header.n_tasks} tasks, "
            f"{self.n_ops} ops in {self.n_records} records, "
            f"{self.file_bytes} bytes, digest {self.digest[:12]}"
        )


@dataclass(frozen=True)
class DecodedTrace:
    """A fully decoded, digest-verified trace."""

    header: TraceHeader
    tasks: tuple[TaskSpec, ...]
    digest: str
    n_records: int
    file_bytes: int

    def to_workload(self) -> Workload:
        """The workload this trace replays."""
        return Workload(
            name=self.header.name,
            tasks=self.tasks,
            priv_predicate_base=self.header.priv_base,
            priv_predicate_limit=self.header.priv_limit,
            description=self.header.description,
        )

    @property
    def info(self) -> TraceInfo:
        """The :class:`TraceInfo` summary of this decoded trace."""
        return TraceInfo(
            header=self.header, digest=self.digest,
            n_records=self.n_records,
            n_ops=sum(len(t.ops) for t in self.tasks),
            file_bytes=self.file_bytes,
        )


# ----------------------------------------------------------------------
# Content digest
# ----------------------------------------------------------------------
def _digest_of(header: TraceHeader,
               tasks: Iterable[TaskSpec]) -> str:
    """SHA-256 hex digest of the canonical logical trace content."""
    h = hashlib.sha256(_DIGEST_SEED)
    h.update(header.canonical_json())
    task_pack = _DIGEST_TASK.pack
    op_pack = _DIGEST_OP.pack
    for task in tasks:
        ops = task.ops
        h.update(task_pack(task.task_id, len(ops)))
        h.update(b"".join(op_pack(kind, value) for kind, value in ops))
    return h.hexdigest()


def trace_digest(workload: Workload,
                 meta: Mapping[str, str] | None = None) -> str:
    """Content digest a trace of ``workload`` (with ``meta``) would carry."""
    return _digest_of(_header_of(workload, meta), workload.tasks)


def _header_of(workload: Workload,
               meta: Mapping[str, str] | None) -> TraceHeader:
    pairs = tuple(sorted((meta or {}).items()))
    return TraceHeader(
        name=workload.name,
        priv_base=workload.priv_predicate_base,
        priv_limit=workload.priv_predicate_limit,
        n_tasks=workload.n_tasks,
        description=workload.description,
        meta=pairs,
    )


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _pack_records(ops: tuple[Operation, ...]) -> tuple[bytes, int]:
    """Coalesce one task's ops into packed records.

    Ascending same-kind address runs become one ``(op, addr, size)``
    record (capped at :data:`MAX_RECORD_SPAN` words); compute bursts are
    one record each with the instruction count in the address field.
    Returns ``(packed bytes, record count)``.
    """
    out: list[bytes] = []
    pack = _RECORD.pack
    run_kind = -1
    run_addr = 0
    run_len = 0

    def flush() -> None:
        nonlocal run_len
        if run_len:
            out.append(pack(run_kind, run_addr, run_len))
            run_len = 0

    for kind, value in ops:
        if value < 0 or value > _MAX_U64:
            raise TraceFormatError(
                f"op value {value} does not fit the trace format")
        if kind == OP_COMPUTE:
            flush()
            out.append(pack(OP_COMPUTE, value, 0))
        elif kind in (OP_READ, OP_WRITE):
            if (run_len and kind == run_kind
                    and value == run_addr + run_len
                    and run_len < MAX_RECORD_SPAN):
                run_len += 1
            else:
                flush()
                run_kind = kind
                run_addr = value
                run_len = 1
        else:
            raise TraceFormatError(f"op kind {kind} is not encodable")
    flush()
    return b"".join(out), len(out)


def encode_trace(workload: Workload,
                 meta: Mapping[str, str] | None = None) -> bytes:
    """Serialize ``workload`` to the binary trace format."""
    header = _header_of(workload, meta)
    header_blob = json.dumps(
        {
            "name": header.name,
            "description": header.description,
            "priv_base": header.priv_base,
            "priv_limit": header.priv_limit,
            "n_tasks": header.n_tasks,
            "meta": {k: v for k, v in header.meta},
        },
        sort_keys=True, separators=(",", ":"), ensure_ascii=False,
    ).encode()
    parts = [_PREAMBLE.pack(MAGIC, FORMAT_VERSION, 0, len(header_blob)),
             header_blob]
    for task in workload.tasks:
        payload, n_records = _pack_records(task.ops)
        compressed = zlib.compress(payload, 6)
        parts.append(_FRAME.pack(task.task_id, n_records, len(compressed)))
        parts.append(compressed)
    parts.append(FOOTER_MAGIC)
    parts.append(bytes.fromhex(_digest_of(header, workload.tasks)))
    return b"".join(parts)


def write_trace(path: Any, workload: Workload,
                meta: Mapping[str, str] | None = None) -> TraceInfo:
    """Write ``workload`` to ``path`` as a binary trace; returns its info."""
    blob = encode_trace(workload, meta)
    with open(path, "wb") as handle:
        handle.write(blob)
    header = _header_of(workload, meta)
    n_records = sum(_pack_records(task.ops)[1] for task in workload.tasks)
    return TraceInfo(
        header=header,
        digest=_digest_of(header, workload.tasks),
        n_records=n_records,
        n_ops=sum(len(t.ops) for t in workload.tasks),
        file_bytes=len(blob),
    )


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def _parse_header(data: bytes) -> tuple[TraceHeader, int]:
    """Parse the preamble + header JSON; returns (header, frames offset)."""
    if len(data) < _PREAMBLE.size:
        raise TraceFormatError("truncated before the trace preamble",
                               offset=len(data))
    magic, version, flags, header_len = _PREAMBLE.unpack_from(data, 0)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}", offset=0)
    if version != FORMAT_VERSION:
        raise TraceFormatError(f"unsupported trace format version {version}",
                               offset=8)
    if flags != 0:
        raise TraceFormatError(f"unsupported flags {flags:#06x}", offset=10)
    start = _PREAMBLE.size
    end = start + header_len
    if end > len(data):
        raise TraceFormatError("truncated inside the header", offset=start)
    try:
        raw = json.loads(data[start:end].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"unparseable header JSON: {exc}",
                               offset=start) from None
    try:
        meta = raw.get("meta", {})
        if not (isinstance(meta, dict)
                and all(isinstance(k, str) and isinstance(v, str)
                        for k, v in meta.items())):
            raise TraceFormatError("header meta must map strings to strings",
                                   offset=start)
        header = TraceHeader(
            name=str(raw["name"]),
            priv_base=int(raw["priv_base"]),
            priv_limit=int(raw["priv_limit"]),
            n_tasks=int(raw["n_tasks"]),
            description=str(raw.get("description", "")),
            meta=tuple(sorted(meta.items())),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"bad header field: {exc!r}",
                               offset=start) from None
    if header.n_tasks < 1:
        raise TraceFormatError(
            f"trace declares {header.n_tasks} tasks; need at least 1",
            offset=start)
    return header, end


def _expand_records(payload: bytes, n_records: int,
                    offset: int) -> tuple[Operation, ...]:
    """Expand one frame's packed records back into the task's op stream."""
    if len(payload) != n_records * _RECORD.size:
        raise TraceFormatError(
            f"frame payload is {len(payload)} bytes for {n_records} "
            f"records of {_RECORD.size}", offset=offset)
    ops: list[Operation] = []
    for kind, addr, size in _RECORD.iter_unpack(payload):
        if kind == OP_COMPUTE:
            if size != 0:
                raise TraceFormatError(
                    f"compute record carries size {size}; must be 0",
                    offset=offset)
            ops.append((OP_COMPUTE, addr))
        elif kind in (OP_READ, OP_WRITE):
            if size < 1:
                raise TraceFormatError(
                    "memory record spans zero words", offset=offset)
            if size > MAX_RECORD_SPAN:
                raise TraceFormatError(
                    f"memory record spans {size} words "
                    f"(cap {MAX_RECORD_SPAN})", offset=offset)
            if addr + size - 1 > _MAX_U64:
                raise TraceFormatError(
                    "memory record run overflows the address space",
                    offset=offset)
            op = OP_READ if kind == OP_READ else OP_WRITE
            ops.extend((op, addr + i) for i in range(size))
        else:
            raise TraceFormatError(f"unknown op kind {kind}", offset=offset)
    return tuple(ops)


def decode_trace(data: bytes) -> DecodedTrace:
    """Decode and digest-verify a binary trace buffer."""
    header, offset = _parse_header(data)
    footer_size = len(FOOTER_MAGIC) + 32
    tasks: list[TaskSpec] = []
    n_records = 0
    for index in range(header.n_tasks):
        if offset + _FRAME.size > len(data):
            raise TraceFormatError(
                f"truncated at task frame {index}", offset=offset)
        task_id, count, payload_len = _FRAME.unpack_from(data, offset)
        if task_id != index:
            raise TraceFormatError(
                f"task frame {index} carries id {task_id}; ids must be "
                f"dense and ordered", offset=offset)
        offset += _FRAME.size
        if offset + payload_len > len(data):
            raise TraceFormatError(
                f"truncated inside task {index}'s payload", offset=offset)
        try:
            payload = zlib.decompress(data[offset:offset + payload_len])
        except zlib.error as exc:
            raise TraceFormatError(
                f"task {index} payload fails to decompress: {exc}",
                offset=offset) from None
        ops = _expand_records(payload, count, offset)
        n_records += count
        tasks.append(TaskSpec(task_id=task_id, ops=ops))
        offset += payload_len
    if offset + footer_size > len(data):
        raise TraceFormatError("truncated before the footer", offset=offset)
    if data[offset:offset + len(FOOTER_MAGIC)] != FOOTER_MAGIC:
        raise TraceFormatError("bad footer magic", offset=offset)
    stored = data[offset + len(FOOTER_MAGIC):offset + footer_size].hex()
    if offset + footer_size != len(data):
        raise TraceFormatError(
            f"{len(data) - offset - footer_size} trailing bytes after "
            f"the footer", offset=offset + footer_size)
    computed = _digest_of(header, tasks)
    if stored != computed:
        raise TraceFormatError(
            f"content digest mismatch: stored {stored[:12]}..., "
            f"computed {computed[:12]}...",
            offset=offset + len(FOOTER_MAGIC))
    return DecodedTrace(
        header=header, tasks=tuple(tasks), digest=computed,
        n_records=n_records, file_bytes=len(data),
    )


def read_trace(path: Any) -> DecodedTrace:
    """Read and digest-verify the binary trace at ``path``."""
    with open(path, "rb") as handle:
        return decode_trace(handle.read())


def peek_trace(path: Any) -> TraceInfo:
    """Header + stored digest of a trace without expanding its records.

    Skips over frame payloads instead of decompressing them, so listing a
    trace directory stays cheap. The stored digest is *not* verified —
    :func:`read_trace` (which every simulation path goes through) is the
    verifying reader.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    header, offset = _parse_header(data)
    n_records = 0
    for index in range(header.n_tasks):
        if offset + _FRAME.size > len(data):
            raise TraceFormatError(
                f"truncated at task frame {index}", offset=offset)
        _task_id, count, payload_len = _FRAME.unpack_from(data, offset)
        n_records += count
        offset += _FRAME.size + payload_len
    footer_size = len(FOOTER_MAGIC) + 32
    if offset + footer_size > len(data):
        raise TraceFormatError("truncated before the footer", offset=offset)
    if data[offset:offset + len(FOOTER_MAGIC)] != FOOTER_MAGIC:
        raise TraceFormatError("bad footer magic", offset=offset)
    stored = data[offset + len(FOOTER_MAGIC):offset + footer_size].hex()
    return TraceInfo(
        header=header, digest=stored, n_records=n_records,
        n_ops=-1,  # unknown without expansion
        file_bytes=len(data),
    )
