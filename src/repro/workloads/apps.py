"""Synthetic equivalents of the paper's seven numerical applications.

The paper's evaluation (Section 4.2, Table 3, Figure 1) characterizes each
application's non-analyzable loops by: instructions per task, load imbalance
between nearby tasks, the weight of mostly-privatization patterns, the
Commit/Execution ratio, and squash frequency. Those characteristics — not
the Fortran source — are what drive every result in Section 5, so each
:class:`ApplicationProfile` here regenerates a reference stream with the
same characteristics (scaled down; see DESIGN.md Section 6 and
EXPERIMENTS.md for the paper-vs-model calibration table).

Pattern summary per application:

* **P3m** — high load imbalance (a few giant tasks), medium privatization
  weight, very low C/E ratio, and a shared read stream that *aliases* the
  privatization cache sets: when speculative tasks pile up behind a giant
  task, their versions flood those sets and AMM schemes thrash (the
  Figure 10 buffer-pressure effect that FMM and Lazy.L2 avoid).
* **Tree** — medium imbalance, fully privatization-dominated, low C/E.
* **Bdna** — low imbalance, privatization-dominated, medium C/E.
* **Apsi** — low imbalance, privatization-heavy (the Figure 1-(b) ``work``
  loop) plus private output, high-medium C/E.
* **Track** — high-medium imbalance, no privatization, high C/E, rare
  dependence violations.
* **Dsmc3d** — medium imbalance, no privatization, medium C/E, rare
  dependence violations.
* **Euler** — low imbalance, no privatization, high C/E, and *frequent*
  dependence violations (0.02 squashes per committed task in the paper) —
  the squash-recovery stressor that separates Lazy AMM from FMM.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace

from repro.errors import WorkloadError
from repro.tls.task import TaskSpec
from repro.workloads.base import Workload
from repro.workloads.patterns import (
    OpListBuilder,
    aliased_shared_word,
    dep_word,
    output_word,
    priv_word,
    shared_word,
)
from repro.tls.task import OP_READ, OP_WRITE


@dataclass(frozen=True)
class PaperCharacteristics:
    """The paper's reported values for one application (Table 3 / Figure 1).

    Stored for the EXPERIMENTS.md paper-vs-measured comparison; qualitative
    classes use the paper's own labels.
    """

    pct_of_tseq: float
    instr_per_task_thousands: float
    commit_exec_numa_pct: float
    commit_exec_cmp_pct: float
    load_imbalance: str
    priv_pattern: str
    commit_exec_class: str
    spec_tasks_in_system: float
    spec_tasks_per_proc: float
    written_footprint_kb: float
    priv_footprint_pct: float
    squash_rate: str


@dataclass(frozen=True)
class ApplicationProfile:
    """Generator parameters for one synthetic application."""

    name: str
    n_tasks: int
    instructions_per_task: int
    #: Coefficient of variation of the lognormal task-length distribution.
    imbalance_cv: float
    #: Every ``giant_every``-th task is ``giant_factor`` times longer
    #: (0 disables); models P3m's extreme imbalance.
    giant_every: int
    giant_factor: float
    #: Mostly-privatization pattern: lines written (then re-read) per task,
    #: drawn from a pool of ``priv_pool_lines`` shared by all tasks.
    priv_lines: int
    priv_pool_lines: int
    #: Per-task private output lines (non-privatization writes).
    out_lines: int
    #: Reads of the shared read-only region per task (plus one repeat each
    #: when ``shared_read_repeats`` > 1).
    shared_reads: int
    shared_read_repeats: int
    #: Whether shared reads alias the privatization cache sets (P3m).
    aliased_shared_reads: bool
    #: Reads of an older task's output (forwarding traffic); 0 disables.
    forward_reads: int
    forward_lag: int
    #: Fraction of tasks set up as dependence-violation victims.
    dep_victim_rate: float
    dep_gap: int
    #: Words written per privatization/output line (sparse sampling of the
    #: full line keeps event counts tractable; commit costs count lines).
    words_per_line: int
    paper: PaperCharacteristics

    def __post_init__(self) -> None:
        if self.priv_lines > self.priv_pool_lines:
            raise WorkloadError(
                f"{self.name}: priv_lines {self.priv_lines} exceeds pool "
                f"{self.priv_pool_lines}"
            )
        if not 0 <= self.dep_victim_rate <= 1:
            raise WorkloadError(f"{self.name}: bad dep_victim_rate")

    @property
    def footprint_lines(self) -> int:
        return self.priv_lines + self.out_lines

    def generate(self, *, seed: int = 0, scale: float = 1.0,
                 invocations: int = 1,
                 iterations_per_task: float = 1.0) -> Workload:
        """Build the synthetic workload.

        ``scale`` shrinks the task count; ``invocations`` concatenates
        several instances of the loop (Table 3 lists the loops executing
        many times per run — later invocations start with warm caches);
        ``iterations_per_task`` rechunks the loop: doubling it halves the
        number of tasks while doubling each task's instructions and
        footprint (the Table 3 caption's chunking knob).
        """
        if scale <= 0:
            raise WorkloadError(f"scale must be positive, got {scale}")
        if invocations < 1:
            raise WorkloadError(
                f"invocations must be >= 1, got {invocations}")
        if iterations_per_task <= 0:
            raise WorkloadError(
                f"iterations_per_task must be positive, got "
                f"{iterations_per_task}")
        profile = self
        if iterations_per_task != 1.0:
            profile = replace(
                self,
                n_tasks=max(4, round(self.n_tasks / iterations_per_task)),
                instructions_per_task=max(
                    200, round(self.instructions_per_task
                               * iterations_per_task)),
                priv_lines=max(0, round(self.priv_lines
                                        * iterations_per_task)),
                priv_pool_lines=max(1, round(self.priv_pool_lines
                                             * iterations_per_task)),
                out_lines=max(0, round(self.out_lines * iterations_per_task)),
                shared_reads=max(0, round(self.shared_reads
                                          * iterations_per_task)),
            )
        n_tasks = max(8, round(profile.n_tasks * scale))
        rng = random.Random(zlib.crc32(profile.name.encode()) ^ seed)

        # Pre-plan dependence pairs: victim reads early what producer
        # writes late. The pair count is deterministic (rate * tasks,
        # rounded, at least one when the rate is non-zero) and the pairs
        # are spread evenly through the loop, so squash frequency is a
        # stable application property rather than a seed artifact.
        victims: dict[int, int] = {}     # victim task -> pair index
        producers: dict[int, int] = {}   # producer task -> pair index
        n_pairs = 0
        if profile.dep_victim_rate > 0:
            n_pairs = max(1, round(profile.dep_victim_rate * n_tasks))
        for pair_index in range(n_pairs):
            victim = (profile.dep_gap
                      + (pair_index * 2 + 1) * n_tasks // (2 * n_pairs))
            victim = min(victim, n_tasks - 1)
            producer = victim - profile.dep_gap
            if (victim in victims or producer in producers
                    or producer in victims or victim in producers):
                continue
            victims[victim] = pair_index
            producers[producer] = pair_index

        tasks = []
        for invocation in range(invocations):
            for position in range(n_tasks):
                tid = invocation * n_tasks + position
                spec = profile._generate_task(position, n_tasks, rng,
                                              victims, producers)
                if invocation:
                    spec = TaskSpec(task_id=tid, ops=spec.ops)
                tasks.append(spec)
        return Workload(
            name=profile.name,
            tasks=tuple(tasks),
            description=(
                f"synthetic {profile.name}: {len(tasks)} tasks"
                f" ({invocations} invocation(s)), "
                f"~{profile.instructions_per_task} instr/task, "
                f"{profile.priv_lines} priv + {profile.out_lines} out lines"
            ),
        )

    # ------------------------------------------------------------------
    def _task_instructions(self, tid: int, rng: random.Random) -> int:
        cv = self.imbalance_cv
        base = self.instructions_per_task
        if cv > 0:
            import math

            sigma = math.sqrt(math.log(1 + cv * cv))
            mu = math.log(base) - sigma * sigma / 2
            instr = int(rng.lognormvariate(mu, sigma))
        else:
            instr = base
        if self.giant_every and (tid % self.giant_every
                                 == self.giant_every // 2):
            instr = int(base * self.giant_factor)
        return max(200, instr)

    def _generate_task(self, tid: int, n_tasks: int, rng: random.Random,
                       victims: dict[int, int],
                       producers: dict[int, int]) -> TaskSpec:
        builder = OpListBuilder(self._task_instructions(tid, rng))

        # Dependence-victim read: as early as possible so a concurrent
        # producer's late write arrives after it (out-of-order RAW).
        if tid in victims:
            builder.add(0.01, OP_READ, dep_word(victims[tid]))

        # Mostly-privatization writes, early in the task (Section 5.1:
        # "tasks write to mostly-privatized variables early").
        my_priv = sorted(rng.sample(range(self.priv_pool_lines),
                                    self.priv_lines))
        for j, line_idx in enumerate(my_priv):
            pos = 0.04 + 0.18 * (j / max(1, self.priv_lines))
            for w in range(self.words_per_line):
                builder.add(pos, OP_WRITE, priv_word(line_idx, w))

        # Private output writes, spread through the middle.
        stride = self.out_lines + 1
        for j in range(self.out_lines):
            pos = 0.30 + 0.45 * (j / max(1, self.out_lines))
            for w in range(self.words_per_line):
                builder.add(pos, OP_WRITE, output_word(tid, j, stride, w))

        # Shared read-only stream.
        for j in range(self.shared_reads):
            if self.aliased_shared_reads:
                word = aliased_shared_word(rng, n_alias_groups=2,
                                           set_span=self.priv_pool_lines)
            else:
                word = shared_word(rng, working_set_lines=4096)
            for rep in range(self.shared_read_repeats):
                pos = 0.10 + 0.80 * ((j + rep * 0.5) / max(
                    1, self.shared_reads))
                builder.add(min(pos, 0.93), OP_READ, word)

        # Forwarding reads from a safely-older task's output.
        if self.forward_reads and tid >= self.forward_lag:
            src = tid - self.forward_lag
            src_out = max(1, self.out_lines)
            for j in range(self.forward_reads):
                line = j % src_out
                builder.add(0.25 + 0.1 * j / max(1, self.forward_reads),
                            OP_READ, output_word(src, line, stride, 0))

        # Privatization re-reads (the work(k) consumption of Figure 1-(b)).
        for j, line_idx in enumerate(my_priv):
            pos = 0.70 + 0.20 * (j / max(1, self.priv_lines))
            builder.add(pos, OP_READ, priv_word(line_idx, 0))

        # Dependence-producer write, as late as possible.
        if tid in producers:
            builder.add(0.97, OP_WRITE, dep_word(producers[tid]))

        return TaskSpec(task_id=tid, ops=builder.build())


def _profile(**kwargs) -> ApplicationProfile:
    return ApplicationProfile(**kwargs)


#: The seven applications, calibrated against Table 3 / Figure 1.
APPLICATIONS: dict[str, ApplicationProfile] = {
    "P3m": _profile(
        name="P3m",
        n_tasks=768,
        instructions_per_task=42_000,
        imbalance_cv=0.30,
        giant_every=256,
        giant_factor=16.0,
        priv_lines=12,
        priv_pool_lines=16,
        out_lines=2,
        shared_reads=40,
        shared_read_repeats=3,
        aliased_shared_reads=True,
        forward_reads=0,
        forward_lag=0,
        dep_victim_rate=0.0,
        dep_gap=2,
        words_per_line=2,
        paper=PaperCharacteristics(
            pct_of_tseq=56.5, instr_per_task_thousands=69.1,
            commit_exec_numa_pct=0.3, commit_exec_cmp_pct=0.1,
            load_imbalance="High", priv_pattern="Med",
            commit_exec_class="Low",
            spec_tasks_in_system=800.0, spec_tasks_per_proc=50.0,
            written_footprint_kb=1.7, priv_footprint_pct=87.9,
            squash_rate="negligible",
        ),
    ),
    "Tree": _profile(
        name="Tree",
        n_tasks=160,
        instructions_per_task=24_000,
        imbalance_cv=0.50,
        giant_every=0,
        giant_factor=1.0,
        priv_lines=4,
        priv_pool_lines=4,
        out_lines=0,
        shared_reads=8,
        shared_read_repeats=1,
        aliased_shared_reads=False,
        forward_reads=0,
        forward_lag=0,
        dep_victim_rate=0.0,
        dep_gap=2,
        words_per_line=2,
        paper=PaperCharacteristics(
            pct_of_tseq=92.2, instr_per_task_thousands=28.7,
            commit_exec_numa_pct=1.4, commit_exec_cmp_pct=0.4,
            load_imbalance="Med", priv_pattern="High",
            commit_exec_class="Low",
            spec_tasks_in_system=24.0, spec_tasks_per_proc=1.5,
            written_footprint_kb=0.9, priv_footprint_pct=99.5,
            squash_rate="negligible",
        ),
    ),
    "Bdna": _profile(
        name="Bdna",
        n_tasks=160,
        instructions_per_task=34_000,
        imbalance_cv=0.15,
        giant_every=0,
        giant_factor=1.0,
        priv_lines=32,
        priv_pool_lines=32,
        out_lines=0,
        shared_reads=10,
        shared_read_repeats=1,
        aliased_shared_reads=False,
        forward_reads=0,
        forward_lag=0,
        dep_victim_rate=0.0,
        dep_gap=2,
        words_per_line=2,
        paper=PaperCharacteristics(
            pct_of_tseq=44.2, instr_per_task_thousands=103.3,
            commit_exec_numa_pct=6.0, commit_exec_cmp_pct=3.9,
            load_imbalance="Low", priv_pattern="High",
            commit_exec_class="Med",
            spec_tasks_in_system=25.6, spec_tasks_per_proc=1.6,
            written_footprint_kb=23.7, priv_footprint_pct=99.4,
            squash_rate="negligible",
        ),
    ),
    "Apsi": _profile(
        name="Apsi",
        n_tasks=160,
        instructions_per_task=22_000,
        imbalance_cv=0.15,
        giant_every=0,
        giant_factor=1.0,
        priv_lines=24,
        priv_pool_lines=24,
        out_lines=16,
        shared_reads=10,
        shared_read_repeats=1,
        aliased_shared_reads=False,
        forward_reads=0,
        forward_lag=0,
        dep_victim_rate=0.0,
        dep_gap=2,
        words_per_line=2,
        paper=PaperCharacteristics(
            pct_of_tseq=29.3, instr_per_task_thousands=102.6,
            commit_exec_numa_pct=11.4, commit_exec_cmp_pct=6.1,
            load_imbalance="Low", priv_pattern="High",
            commit_exec_class="High-Med",
            spec_tasks_in_system=28.8, spec_tasks_per_proc=1.8,
            written_footprint_kb=20.0, priv_footprint_pct=60.0,
            squash_rate="negligible",
        ),
    ),
    "Track": _profile(
        name="Track",
        n_tasks=160,
        instructions_per_task=19_000,
        imbalance_cv=0.60,
        giant_every=0,
        giant_factor=1.0,
        priv_lines=0,
        priv_pool_lines=0,
        out_lines=32,
        shared_reads=10,
        shared_read_repeats=1,
        aliased_shared_reads=False,
        forward_reads=4,
        forward_lag=48,
        dep_victim_rate=0.004,
        dep_gap=2,
        words_per_line=2,
        paper=PaperCharacteristics(
            pct_of_tseq=58.1, instr_per_task_thousands=41.2,
            commit_exec_numa_pct=12.6, commit_exec_cmp_pct=6.6,
            load_imbalance="High-Med", priv_pattern="Low",
            commit_exec_class="High-Med",
            spec_tasks_in_system=20.8, spec_tasks_per_proc=1.3,
            written_footprint_kb=2.3, priv_footprint_pct=0.6,
            squash_rate="occasional",
        ),
    ),
    "Dsmc3d": _profile(
        name="Dsmc3d",
        n_tasks=160,
        instructions_per_task=26_000,
        imbalance_cv=0.40,
        giant_every=0,
        giant_factor=1.0,
        priv_lines=0,
        priv_pool_lines=0,
        out_lines=24,
        shared_reads=10,
        shared_read_repeats=1,
        aliased_shared_reads=False,
        forward_reads=4,
        forward_lag=48,
        dep_victim_rate=0.004,
        dep_gap=2,
        words_per_line=2,
        paper=PaperCharacteristics(
            pct_of_tseq=41.2, instr_per_task_thousands=22.3,
            commit_exec_numa_pct=6.6, commit_exec_cmp_pct=3.4,
            load_imbalance="Med", priv_pattern="Low",
            commit_exec_class="Med",
            spec_tasks_in_system=17.6, spec_tasks_per_proc=1.1,
            written_footprint_kb=0.8, priv_footprint_pct=0.5,
            squash_rate="occasional",
        ),
    ),
    "Euler": _profile(
        name="Euler",
        n_tasks=160,
        instructions_per_task=17_000,
        imbalance_cv=0.20,
        giant_every=0,
        giant_factor=1.0,
        priv_lines=0,
        priv_pool_lines=0,
        out_lines=36,
        shared_reads=10,
        shared_read_repeats=1,
        aliased_shared_reads=False,
        forward_reads=4,
        forward_lag=48,
        dep_victim_rate=0.02,
        dep_gap=2,
        words_per_line=2,
        paper=PaperCharacteristics(
            pct_of_tseq=89.8, instr_per_task_thousands=5.4,
            commit_exec_numa_pct=14.5, commit_exec_cmp_pct=7.1,
            load_imbalance="Low", priv_pattern="Low",
            commit_exec_class="High",
            spec_tasks_in_system=17.4, spec_tasks_per_proc=1.1,
            written_footprint_kb=7.3, priv_footprint_pct=0.7,
            squash_rate="frequent (0.02 squashes per committed task)",
        ),
    ),
}

#: Application names in the paper's figure order.
APPLICATION_ORDER: tuple[str, ...] = (
    "P3m", "Tree", "Bdna", "Apsi", "Track", "Dsmc3d", "Euler",
)


def generate_workload(name: str, *, seed: int = 0, scale: float = 1.0,
                      invocations: int = 1,
                      iterations_per_task: float = 1.0) -> Workload:
    """Generate the synthetic workload for a paper application by name."""
    try:
        profile = APPLICATIONS[name]
    except KeyError:
        known = ", ".join(APPLICATION_ORDER)
        raise WorkloadError(
            f"unknown application {name!r}; known: {known}"
        ) from None
    return profile.generate(seed=seed, scale=scale, invocations=invocations,
                            iterations_per_task=iterations_per_task)
