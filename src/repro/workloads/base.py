"""Workload model: a speculatively-parallelized loop as a list of tasks.

A :class:`Workload` is what the engine executes: an ordered tuple of
:class:`~repro.tls.task.TaskSpec` (chunks of consecutive iterations) plus the
address-space annotations the statistics collector needs — most importantly
which lines belong to the *mostly-privatization* region, since the paper's
Figure 1 reports the privatized share of each task's written footprint.

The synthetic generators in :mod:`repro.workloads.apps` build workloads whose
measured characteristics (Table 3 / Figure 1) match the paper's seven
applications; hand-built workloads (tests, examples) can construct
:class:`Workload` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.memsys.address import line_of
from repro.tls.task import OP_READ, OP_WRITE, TaskSpec

#: Word-address region boundaries shared by all generated workloads.
#: Regions are wide enough that they never collide for any profile.
SHARED_RO_BASE = 0x0000_0000
PRIV_BASE = 0x0100_0000
OUTPUT_BASE = 0x0200_0000
DEP_BASE = 0x0300_0000
REGION_SIZE = 0x0100_0000


def region_of(word_addr: int) -> str:
    """Symbolic region of a generated address (for stats and debugging)."""
    if word_addr < PRIV_BASE:
        return "shared-ro"
    if word_addr < OUTPUT_BASE:
        return "priv"
    if word_addr < DEP_BASE:
        return "output"
    return "dep"


@dataclass(frozen=True)
class Workload:
    """An ordered set of speculative tasks plus address annotations."""

    name: str
    tasks: tuple[TaskSpec, ...]
    #: Word addresses considered "mostly-privatization" state for the
    #: Figure 1 footprint split. Generated workloads use the PRIV region.
    priv_predicate_base: int = PRIV_BASE
    priv_predicate_limit: int = OUTPUT_BASE
    description: str = ""

    def __post_init__(self) -> None:
        if not self.tasks:
            raise WorkloadError(f"workload {self.name!r} has no tasks")
        for position, task in enumerate(self.tasks):
            if task.task_id != position:
                raise WorkloadError(
                    f"workload {self.name!r}: task at position {position} "
                    f"has id {task.task_id}; ids must be dense and ordered"
                )

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    def is_priv(self, word_addr: int) -> bool:
        """True when ``word_addr`` falls in the privatization region."""
        return self.priv_predicate_base <= word_addr < self.priv_predicate_limit

    # ------------------------------------------------------------------
    # Reference semantics (oracle used by tests and baselines)
    # ------------------------------------------------------------------
    def sequential_image(self) -> dict[int, int]:
        """word -> last-writer task ID under sequential execution.

        Because task IDs encode sequential order and each task's writes are
        internally unordered at word granularity (a task writes a word at
        most... possibly several times, the writer stays the task), the
        sequential image is simply the highest task ID writing each word.
        """
        image: dict[int, int] = {}
        for task in self.tasks:
            for kind, value in task.ops:
                if kind == OP_WRITE:
                    image[value] = task.task_id
        return image

    def sequential_reads(self) -> dict[tuple[int, int], int]:
        """(reader, word) -> producer the read must observe sequentially.

        The producer is the latest task <= reader writing the word before
        the read in program order (the reader itself if it wrote first).
        Used by the correctness property tests.
        """
        last_writer: dict[int, int] = {}
        expected: dict[tuple[int, int], int] = {}
        for task in self.tasks:
            for kind, value in task.ops:
                if kind == OP_READ:
                    key = (task.task_id, value)
                    if key not in expected:
                        expected[key] = last_writer.get(value, -1)
                elif kind == OP_WRITE:
                    last_writer[value] = task.task_id
        return expected

    # ------------------------------------------------------------------
    # Static characteristics
    # ------------------------------------------------------------------
    def written_footprint_words(self) -> float:
        """Mean written words per task."""
        return sum(len(t.written_words()) for t in self.tasks) / self.n_tasks

    def written_footprint_lines(self) -> float:
        """Mean written lines per task (the commit-cost driver)."""
        return sum(len(t.written_lines()) for t in self.tasks) / self.n_tasks

    def priv_write_fraction(self) -> float:
        """Fraction of written words falling in the privatization region."""
        total = 0
        priv = 0
        for task in self.tasks:
            for word in task.written_words():
                total += 1
                if self.is_priv(word):
                    priv += 1
        return priv / total if total else 0.0

    def mean_instructions(self) -> float:
        """Mean instruction count per task."""
        return sum(t.instructions for t in self.tasks) / self.n_tasks

    def imbalance_cv(self) -> float:
        """Coefficient of variation of per-task instruction counts."""
        counts = [t.instructions for t in self.tasks]
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 0.0
        var = sum((c - mean) ** 2 for c in counts) / len(counts)
        return var**0.5 / mean

    def validate_read_your_writes(self) -> None:
        """Sanity check used by generators: privatization reads follow writes.

        Raises :class:`WorkloadError` if a task reads a PRIV word it has not
        written earlier in its own op stream (the Apsi ``work`` pattern
        writes before reading; violating it would inject unintended
        cross-task dependences).
        """
        for task in self.tasks:
            written: set[int] = set()
            for kind, value in task.ops:
                if kind == OP_WRITE:
                    written.add(value)
                elif kind == OP_READ and self.is_priv(value):
                    if value not in written:
                        raise WorkloadError(
                            f"workload {self.name!r}: task {task.task_id} "
                            f"reads priv word {value:#x} before writing it"
                        )
