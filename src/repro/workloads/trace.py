"""Trace-driven workloads: replay ``.tlstrace`` reference streams.

Three entry points, mirroring the synthetic-app pipeline end to end:

* **Replay** — :class:`TraceWorkload` is the trace-file analogue of
  :class:`~repro.runner.jobs.WorkloadSpec`: a tiny, picklable reference
  that a :class:`~repro.runner.jobs.SimJob` can carry across process
  boundaries. Its identity in the result cache is the trace's *content
  digest*, so two byte-different encodings of the same logical trace
  (different filenames, different record coalescing, different
  provenance metadata framing) share one cache entry, while any edit to
  an op stream or header field misses.
* **Capture** — :class:`repro.obs.capture.TraceCaptureHook` rides the
  zero-overhead :mod:`repro.core.hooks` interface and dumps the workload
  a simulation executed back out as a trace on completion. The
  differential contract — capture a synthetic run, replay the trace,
  get byte-identical ``canonical_result_bytes`` under every scheme — is
  enforced by :func:`verify_capture_replay` (``repro-tls trace verify``)
  and ``tests/test_trace_replay.py``.
* **Generators** — adversarial reference streams the Table 3 synthetics
  cannot express: :func:`pointer_chase` (dependent irregular loads),
  :func:`squash_storm` (dense cross-task write/read collisions), and
  :func:`hot_line_reduction` (read-modify-write chains on a few hot
  lines). All are deterministic in their parameters and runnable
  end-to-end through ``repro-tls sweep --traces``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.core.config import WORDS_PER_LINE
from repro.errors import TraceFormatError, WorkloadError
from repro.tls.task import OP_READ, OP_WRITE, TaskSpec
from repro.workloads.base import DEP_BASE, OUTPUT_BASE, SHARED_RO_BASE, Workload
from repro.workloads.patterns import OpListBuilder
from repro.workloads.traceio import (
    TRACE_SUFFIX,
    TraceInfo,
    read_trace,
    write_trace,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.config import MachineConfig
    from repro.core.taxonomy import Scheme

#: Digest -> decoded workload memo shared by every TraceWorkload in the
#: process, so the 8 schemes of one sweep decode each trace file once.
_DECODED: dict[str, Workload] = {}
_DECODED_CAP = 16


def _memoize(digest: str, workload: Workload) -> Workload:
    if digest not in _DECODED and len(_DECODED) >= _DECODED_CAP:
        _DECODED.pop(next(iter(_DECODED)))
    _DECODED[digest] = workload
    return workload


@dataclass(frozen=True)
class TraceWorkload:
    """A job-embeddable reference to a verified on-disk trace.

    Construct via :meth:`open`, which decodes and digest-verifies the
    file once. The instance itself carries only strings and ints, so it
    pickles cheaply into worker processes; :meth:`resolve` re-reads the
    file there (through a digest-keyed memo) and re-verifies that its
    content still matches the digest this reference was opened with.
    """

    path: str
    digest: str
    name: str
    n_tasks: int

    @classmethod
    def open(cls, path: Any) -> "TraceWorkload":
        """Decode, verify, and memoize the trace at ``path``."""
        decoded = read_trace(path)
        _memoize(decoded.digest, decoded.to_workload())
        return cls(path=str(path), digest=decoded.digest,
                   name=decoded.header.name,
                   n_tasks=decoded.header.n_tasks)

    def resolve(self) -> Workload:
        """The decoded workload (from the memo or re-read from disk)."""
        workload = _DECODED.get(self.digest)
        if workload is not None:
            return workload
        decoded = read_trace(self.path)
        if decoded.digest != self.digest:
            raise TraceFormatError(
                f"trace {self.path} changed on disk: expected digest "
                f"{self.digest[:12]}..., found {decoded.digest[:12]}...")
        return _memoize(decoded.digest, decoded.to_workload())

    def fingerprint(self) -> dict[str, Any]:
        """Cache-identity fragment (see :mod:`repro.runner.jobs`)."""
        return {"kind": "trace", "digest": self.digest, "name": self.name}


# ----------------------------------------------------------------------
# Adversarial generators
# ----------------------------------------------------------------------
#: Base of the region the hot-line reduction accumulators live in; clear
#: of the synthetic generators' dependence-pair words.
_HOT_BASE = DEP_BASE + 0x0080_0000


def pointer_chase(n_tasks: int = 64, *, chain_len: int = 96,
                  region_lines: int = 8192, link_lag: int = 32,
                  seed: int = 0) -> Workload:
    """Dependent irregular loads: each task walks a pseudo-random chain.

    Every task issues ``chain_len`` reads at unpredictable addresses in a
    ``region_lines``-line shared region, each followed by a short compute
    burst (the dependent-load serialization the synthetics' bulk shared
    streams cannot express), writes one result word, and reads the result
    of the task ``link_lag`` positions older — a committed producer, so
    the cross-task links stress forwarding, not squashes.
    """
    if n_tasks < 1 or chain_len < 1 or link_lag < 1:
        raise WorkloadError("pointer_chase parameters must be positive")
    rng = random.Random(0x9E3779B9 ^ seed)
    tasks = []
    for tid in range(n_tasks):
        builder = OpListBuilder(600 + 40 * chain_len)
        if tid >= link_lag:
            builder.add(0.02, OP_READ, OUTPUT_BASE
                        + (tid - link_lag) * WORDS_PER_LINE)
        for j in range(chain_len):
            word = (SHARED_RO_BASE
                    + rng.randrange(region_lines) * WORDS_PER_LINE
                    + rng.randrange(WORDS_PER_LINE))
            builder.add(0.05 + 0.88 * j / chain_len, OP_READ, word)
        builder.add(0.97, OP_WRITE, OUTPUT_BASE + tid * WORDS_PER_LINE)
        tasks.append(TaskSpec(task_id=tid, ops=builder.build()))
    return Workload(
        name="PtrChase", tasks=tuple(tasks),
        description=(f"pointer-chase trace: {n_tasks} tasks x {chain_len} "
                     f"dependent loads over {region_lines} lines, "
                     f"link lag {link_lag}, seed {seed}"),
    )


def squash_storm(n_tasks: int = 96, *, collision_every: int = 3,
                 window: int = 3, seed: int = 0) -> Workload:
    """Dense cross-task write/read collisions: an adversarial squash storm.

    Every ``collision_every``-th task writes a storm word as late as
    possible while its ``window`` successors read that word as early as
    possible — when they overlap in flight, every reader observes the
    write out of order and squashes. The synthetics cap this pattern at
    Euler's 0.02 pairs per task; here the collision density is a free
    parameter.
    """
    if n_tasks < 2 or collision_every < 1 or window < 1:
        raise WorkloadError("squash_storm parameters must be positive")
    rng = random.Random(0x5DEECE66D ^ seed)
    tasks = []
    for tid in range(n_tasks):
        builder = OpListBuilder(3000 + rng.randrange(500))
        producer = (tid // collision_every) * collision_every
        if producer != tid:
            lag = tid - producer
            if lag <= window:
                builder.add(0.01, OP_READ,
                            DEP_BASE + producer * WORDS_PER_LINE)
        for j in range(4):
            builder.add(0.30 + 0.12 * j, OP_WRITE,
                        OUTPUT_BASE + (tid * 5 + j) * WORDS_PER_LINE)
        if tid % collision_every == 0:
            builder.add(0.98, OP_WRITE, DEP_BASE + tid * WORDS_PER_LINE)
        tasks.append(TaskSpec(task_id=tid, ops=builder.build()))
    return Workload(
        name="SquashStorm", tasks=tuple(tasks),
        description=(f"squash-storm trace: {n_tasks} tasks, a late write "
                     f"every {collision_every} tasks with {window} early "
                     f"readers, seed {seed}"),
    )


def hot_line_reduction(n_tasks: int = 96, *, hot_lines: int = 2,
                       updates_per_task: int = 6,
                       seed: int = 0) -> Workload:
    """Irregular reduction: every task read-modify-writes a few hot lines.

    All tasks accumulate into the same ``hot_lines`` cache lines
    (``updates_per_task`` read+write pairs each, at seed-jittered
    positions), so every speculative task's first read of an accumulator
    races the previous task's update — the serializing RAW chain of an
    unprivatizable reduction, concentrated on lines every processor
    contends for.
    """
    if n_tasks < 2 or hot_lines < 1 or updates_per_task < 1:
        raise WorkloadError("hot_line_reduction parameters must be positive")
    rng = random.Random(0xB5297A4D ^ seed)
    tasks = []
    for tid in range(n_tasks):
        builder = OpListBuilder(2500 + rng.randrange(400))
        for j in range(updates_per_task):
            line = j % hot_lines
            word = _HOT_BASE + line * WORDS_PER_LINE + (j % WORDS_PER_LINE)
            pos = 0.08 + 0.80 * j / updates_per_task
            pos += rng.random() * 0.02
            builder.add(min(pos, 0.95), OP_READ, word)
            builder.add(min(pos + 0.01, 0.96), OP_WRITE, word)
        builder.add(0.99, OP_WRITE, OUTPUT_BASE + tid * WORDS_PER_LINE)
        tasks.append(TaskSpec(task_id=tid, ops=builder.build()))
    return Workload(
        name="HotLine", tasks=tuple(tasks),
        description=(f"hot-line reduction trace: {n_tasks} tasks x "
                     f"{updates_per_task} read-modify-writes over "
                     f"{hot_lines} shared lines, seed {seed}"),
    )


#: Generator registry for ``repro-tls trace gen``. Each callable accepts
#: ``(n_tasks, seed=...)`` plus kind-specific keyword knobs.
TRACE_GENERATORS: dict[str, Callable[..., Workload]] = {
    "pointer-chase": pointer_chase,
    "squash-storm": squash_storm,
    "hot-line": hot_line_reduction,
}


def generate_trace_workload(kind: str, *, n_tasks: int | None = None,
                            seed: int = 0) -> Workload:
    """Build one adversarial workload by registry name."""
    try:
        generator = TRACE_GENERATORS[kind]
    except KeyError:
        known = ", ".join(TRACE_GENERATORS)
        raise WorkloadError(
            f"unknown trace generator {kind!r}; known: {known}") from None
    if n_tasks is None:
        return generator(seed=seed)
    return generator(n_tasks, seed=seed)


def generate_trace_file(kind: str, path: Any, *,
                        n_tasks: int | None = None,
                        seed: int = 0) -> TraceInfo:
    """Generate an adversarial workload and write it as a trace file."""
    workload = generate_trace_workload(kind, n_tasks=n_tasks, seed=seed)
    return write_trace(path, workload,
                       meta={"generator": kind, "seed": str(seed)})


def discover_traces(directory: Any) -> "list[str]":
    """Sorted ``.tlstrace`` paths directly inside ``directory``."""
    import os

    try:
        entries = sorted(os.listdir(directory))
    except OSError as exc:
        raise WorkloadError(f"cannot list trace dir {directory}: {exc}")
    return [os.path.join(str(directory), entry) for entry in entries
            if entry.endswith(TRACE_SUFFIX)]


# ----------------------------------------------------------------------
# Differential capture -> replay verification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VerifyCell:
    """One (app x scheme) comparison of synthetic vs trace-replayed run."""

    app: str
    scheme: str
    ok: bool
    synthetic_key: str
    trace_key: str


def verify_capture_replay(
    machine: "MachineConfig",
    apps: Sequence[str],
    schemes: "Sequence[Scheme]",
    trace_dir: Any,
    *,
    scale: float = 0.1,
    seed: int = 0,
    capture_meta: Mapping[str, str] | None = None,
) -> dict[str, Any]:
    """Capture every app as a trace and replay it under every scheme.

    For each app the synthetic workload is run once with a
    :class:`~repro.obs.capture.TraceCaptureHook` attached (proving the
    hook's zero-perturbation contract on the way), then each scheme is
    simulated twice — from the synthetic :class:`WorkloadSpec` and from
    the captured :class:`TraceWorkload` — and the two results' canonical
    bytes are compared. Always cache-less: like the conformance oracle,
    verification re-runs, it never replays cached results.

    Returns ``{"passed": bool, "cells": [VerifyCell...],
    "digests": {app: digest}}``.
    """
    import os

    from repro.analysis.serialization import canonical_result_bytes
    from repro.core.engine import Simulation
    from repro.obs.capture import TraceCaptureHook
    from repro.runner import SimJob, SweepRunner, WorkloadSpec

    runner = SweepRunner(jobs=1, cache=None)
    cells: list[VerifyCell] = []
    digests: dict[str, str] = {}
    os.makedirs(trace_dir, exist_ok=True)
    for app in apps:
        spec = WorkloadSpec(app, seed=seed, scale=scale)
        path = os.path.join(str(trace_dir), f"{app}{TRACE_SUFFIX}")
        hook = TraceCaptureHook(path, meta=capture_meta)
        captured = Simulation(machine, schemes[0], spec.generate(),
                              hook=hook).run()
        digests[app] = hook.info.digest
        trace = TraceWorkload.open(path)
        for scheme in schemes:
            synthetic_job = SimJob(machine=machine, workload=spec,
                                   scheme=scheme)
            trace_job = SimJob(machine=machine, workload=trace,
                               scheme=scheme)
            synthetic = runner.run(synthetic_job)
            replayed = runner.run(trace_job)
            reference = canonical_result_bytes(synthetic)
            ok = canonical_result_bytes(replayed) == reference
            if scheme is schemes[0]:
                # The capture run itself must match too: the hook is a
                # pure observer.
                ok = ok and canonical_result_bytes(captured) == reference
            cells.append(VerifyCell(
                app=app, scheme=scheme.name, ok=ok,
                synthetic_key=synthetic_job.cache_key(),
                trace_key=trace_job.cache_key(),
            ))
    key_collisions = [c for c in cells if c.synthetic_key == c.trace_key]
    return {
        "passed": (all(c.ok for c in cells) and not key_collisions),
        "cells": cells,
        "digests": digests,
    }


def render_verify_report(report: dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`verify_capture_replay` report."""
    lines = ["capture -> replay bit-identity (canonical_result_bytes)", ""]
    by_app: dict[str, list[VerifyCell]] = {}
    for cell in report["cells"]:
        by_app.setdefault(cell.app, []).append(cell)
    for app, cells in by_app.items():
        bad = [c for c in cells if not c.ok]
        digest = report["digests"][app][:12]
        status = "ok" if not bad else f"FAIL ({len(bad)}/{len(cells)})"
        lines.append(f"  {app:>12}  digest {digest}  "
                     f"{len(cells)} schemes  {status}")
        for cell in bad:
            lines.append(f"      MISMATCH under {cell.scheme}")
    lines.append("")
    lines.append("PASS: every replay is byte-identical to its synthetic run"
                 if report["passed"] else
                 "FAIL: replay diverged from the synthetic run")
    return "\n".join(lines)
