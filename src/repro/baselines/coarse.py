"""Coarse-recovery speculation baseline (the LRPD / SUDS class of Figure 4).

These software-only schemes keep no fine-grained MHB: the only recoverable
state is the snapshot taken before the speculative section, so any
dependence violation squashes the *entire* section, which then re-executes
sequentially. Success costs the parallel execution plus a section-level
commit (software copy-out of the written footprint); failure costs the
failed parallel attempt plus the full sequential re-execution.

The model reuses the engine under MultiT&MV Eager AMM to price the parallel
attempt (any violation marks the attempt failed) and the sequential
baseline to price the re-execution — the paper does not evaluate this class
quantitatively, but it completes the taxonomy and makes a good ablation
example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.sequential import simulate_sequential
from repro.core.config import MachineConfig
from repro.core.engine import simulate
from repro.core.taxonomy import MULTI_T_MV_EAGER
from repro.workloads.base import Workload


@dataclass(frozen=True)
class CoarseRecoveryResult:
    """Outcome of the coarse-recovery (LRPD-style) model."""

    workload_name: str
    machine_name: str
    total_cycles: float
    attempt_cycles: float
    violated: bool
    sequential_fallback_cycles: float
    copy_out_cycles: float

    @property
    def succeeded(self) -> bool:
        return not self.violated


def simulate_coarse_recovery(
    machine: MachineConfig,
    workload: Workload,
    *,
    copy_out_instructions_per_word: int = 4,
) -> CoarseRecoveryResult:
    """Price ``workload`` under an LRPD-style coarse-recovery scheme."""
    attempt = simulate(machine, MULTI_T_MV_EAGER, workload)
    violated = attempt.violation_events > 0

    words_written = len({
        word
        for task in workload.tasks
        for word in task.written_words()
    })
    copy_out = (
        words_written * copy_out_instructions_per_word / machine.costs.ipc
    )

    if violated:
        sequential = simulate_sequential(machine, workload)
        total = attempt.total_cycles + sequential.total_cycles
        fallback = sequential.total_cycles
    else:
        total = attempt.total_cycles + copy_out
        fallback = 0.0

    return CoarseRecoveryResult(
        workload_name=workload.name,
        machine_name=machine.name,
        total_cycles=total,
        attempt_cycles=attempt.total_cycles,
        violated=violated,
        sequential_fallback_cycles=fallback,
        copy_out_cycles=copy_out if not violated else 0.0,
    )
