"""Baselines: sequential execution and LRPD-style coarse recovery."""

from repro.baselines.coarse import CoarseRecoveryResult, simulate_coarse_recovery
from repro.baselines.sequential import SequentialResult, simulate_sequential

__all__ = [
    "CoarseRecoveryResult",
    "SequentialResult",
    "simulate_coarse_recovery",
    "simulate_sequential",
]
