"""Sequential-execution baseline (the speedup denominator).

The paper reports speedups "over sequential execution of the code where all
data is in the local memory module". This model runs every task in order on
a single processor of the same machine: compute at the model IPC, memory
operations through the same L1/L2 cache model with every line homed locally,
and no speculation machinery (no task IDs, no commits, no stalls).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MachineConfig
from repro.memsys.address import line_of
from repro.memsys.cache import ARCH_TASK_ID, CacheLine, VersionCache
from repro.tls.task import OP_COMPUTE, OP_READ, OP_WRITE
from repro.workloads.base import Workload


@dataclass(frozen=True)
class SequentialResult:
    """Outcome of the sequential baseline run."""

    workload_name: str
    machine_name: str
    total_cycles: float
    busy_cycles: float
    memory_cycles: float
    memory_image: dict[int, int]

    @property
    def memory_fraction(self) -> float:
        return self.memory_cycles / self.total_cycles if self.total_cycles else 0.0


def simulate_sequential(machine: MachineConfig,
                        workload: Workload) -> SequentialResult:
    """Run ``workload`` sequentially on one processor of ``machine``."""
    costs = machine.costs
    l1 = VersionCache(machine.l1, name="seq.L1")
    l2 = VersionCache(machine.l2, name="seq.L2")
    local_mem = float(machine.lat_memory_by_hops[0])
    l3_lines: set[int] | None = set() if machine.lat_l3 is not None else None

    busy = 0.0
    mem = 0.0
    now = 0.0
    image: dict[int, int] = {}

    def access(line: int, dirty: bool) -> float:
        nonlocal now
        entry = l1.find(line, ARCH_TASK_ID)
        if entry is not None:
            l1.touch(entry, now)
            entry.dirty = entry.dirty or dirty
            return float(machine.lat_l1)
        l1.record_miss()
        entry = l2.find(line, ARCH_TASK_ID)
        if entry is not None:
            l2.touch(entry, now)
            entry.dirty = entry.dirty or dirty
            latency = float(machine.lat_l2)
        elif l3_lines is not None and line in l3_lines:
            latency = float(machine.lat_l3 or 0)
        else:
            latency = local_mem
            if l3_lines is not None:
                l3_lines.add(line)
        # Install into both levels; displaced dirty lines write back to
        # local memory asynchronously (no extra charge, as in the parallel
        # model's non-critical write-backs).
        l2.insert(CacheLine(line, ARCH_TASK_ID, dirty=dirty), now)
        victim = l1.insert(CacheLine(line, ARCH_TASK_ID, dirty=dirty), now)
        if victim is not None and victim.dirty:
            l2.insert(CacheLine(victim.line_addr, ARCH_TASK_ID, dirty=True),
                      now)
        return latency

    for task in workload.tasks:
        for kind, value in task.ops:
            if kind == OP_COMPUTE:
                cycles = costs.cycles_for_instructions(value)
                busy += cycles
                now += cycles
            elif kind == OP_READ:
                latency = access(line_of(value), dirty=False)
                mem += latency
                now += latency
            elif kind == OP_WRITE:
                latency = access(line_of(value), dirty=True)
                mem += latency
                now += latency
                image[value] = task.task_id

    return SequentialResult(
        workload_name=workload.name,
        machine_name=machine.name,
        total_cycles=busy + mem,
        busy_cycles=busy,
        memory_cycles=mem,
        memory_image=image,
    )
