"""Commit token and commit-wavefront tracking.

Tasks commit in strict sequential order by passing a commit token. The
controller tracks which task must commit next, whether a commit (token hold)
is in flight, and the cumulative token-hold time — the *commit wavefront*
whose position relative to the execution wavefront explains the Eager/Lazy
differences (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProtocolError


@dataclass
class CommitStats:
    """Counters for the commit token protocol."""
    commits: int = 0
    #: Total cycles the token was held (sum of commit durations).
    token_hold_cycles: float = 0.0
    #: (task_id, start, end) per commit, for wavefront plots (Figure 6).
    wavefront: list[tuple[int, float, float]] = field(default_factory=list)


class CommitController:
    """Serializes commits in task-ID order."""

    def __init__(self, n_tasks: int) -> None:
        self.n_tasks = n_tasks
        self.next_to_commit = 0
        self._in_flight: int | None = None
        self.stats = CommitStats()

    @property
    def token_free(self) -> bool:
        return self._in_flight is None

    @property
    def in_flight(self) -> int | None:
        """Task currently holding the commit token (invariant checks)."""
        return self._in_flight

    def can_commit(self, task_id: int) -> bool:
        """True when ``task_id`` is next in order and the token is free."""
        return self.token_free and task_id == self.next_to_commit

    def begin_commit(self, task_id: int, now: float) -> None:
        """Take the token for ``task_id``."""
        if not self.can_commit(task_id):
            raise ProtocolError(
                f"task {task_id} cannot commit now (next={self.next_to_commit}, "
                f"in_flight={self._in_flight})"
            )
        self._in_flight = task_id

    def finish_commit(self, task_id: int, start: float, end: float) -> None:
        """Release the token and advance the commit wavefront."""
        if self._in_flight != task_id:
            raise ProtocolError(
                f"finishing commit of task {task_id} but "
                f"{self._in_flight} is in flight"
            )
        self._in_flight = None
        self.next_to_commit += 1
        self.stats.commits += 1
        self.stats.token_hold_cycles += end - start
        self.stats.wavefront.append((task_id, start, end))

    @property
    def all_committed(self) -> bool:
        return self.next_to_commit >= self.n_tasks
