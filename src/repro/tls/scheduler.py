"""Dynamic, in-order task scheduler.

Tasks (chunks of consecutive iterations) are claimed greedily by free
processors in task-ID order — the paper's dynamic scheduling of chunks.
Squashed tasks return to the pool and, having the lowest IDs among pending
work, are re-claimed first, which preserves forward progress of the commit
wavefront.
"""

from __future__ import annotations

import heapq

from repro.errors import SimulationError
from repro.tls.task import TaskRun


class TaskScheduler:
    """A priority pool of pending tasks, claimed lowest-ID first."""

    def __init__(self, runs: dict[int, TaskRun]) -> None:
        self._runs = runs
        self._pending: list[int] = sorted(runs)
        heapq.heapify(self._pending)
        self._claimed: set[int] = set()

    def claim(self) -> TaskRun | None:
        """Pop the lowest-ID pending task, or ``None`` if the pool is empty."""
        while self._pending:
            task_id = heapq.heappop(self._pending)
            if task_id in self._claimed:
                continue
            self._claimed.add(task_id)
            return self._runs[task_id]
        return None

    def release(self, task_id: int) -> None:
        """Return a squashed task to the pool for re-execution."""
        if task_id not in self._claimed:
            raise SimulationError(
                f"releasing task {task_id} that was never claimed"
            )
        self._claimed.remove(task_id)
        heapq.heappush(self._pending, task_id)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def has_pending(self) -> bool:
        return bool(self._pending)
