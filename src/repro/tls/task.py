"""Speculative tasks: static specifications and dynamic execution state.

A *task* is a chunk of consecutive loop iterations (Section 4.2). Its static
side (:class:`TaskSpec`) is an ordered list of operations — compute segments
measured in instructions, plus word-granularity reads and writes. Its
dynamic side (:class:`TaskRun`) tracks one (re-)execution attempt: progress
through the operation list, the words written so far, and lifecycle state.

Task IDs are the sequential order of the chunks; they are assigned once and
never change across squashes, which is what makes the ID usable as the CTID
version tag throughout the memory system.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.memsys.address import line_of

#: Operation kinds. Kept as plain ints because the engine dispatches on them
#: in its hottest loop.
OP_COMPUTE = 0
OP_READ = 1
OP_WRITE = 2

#: One operation: ``(kind, value)``; value is an instruction count for
#: OP_COMPUTE and a word address for OP_READ / OP_WRITE.
Operation = tuple[int, int]

#: Step kinds of the compiled flat op stream (see :func:`compile_steps`).
#: A *step* is what the engine executes per event: either one coalesced
#: busy burst or one memory operation.
STEP_BUSY = 0
STEP_READ = 1
STEP_WRITE = 2


def compile_steps(spec: "TaskSpec", ipc: float,
                  ) -> tuple[bytearray, list[int], list[float]]:
    """Compile ``spec.ops`` into flat step columns for the given IPC.

    Returns ``(kinds, words, busys)`` — three parallel columns indexed
    by the run's step cursor (engine-core v3 stores them on the
    :class:`TaskRun`):

    * ``kinds[i]`` — :data:`STEP_BUSY`, :data:`STEP_READ` or
      :data:`STEP_WRITE`;
    * ``words[i]`` — the word address for memory steps (0 for bursts);
    * ``busys[i]`` — the burst's busy cycles (0.0 for memory steps).

    Consecutive ``OP_COMPUTE`` ops are coalesced into one burst exactly
    as the engine's advance loop historically did — the per-op
    ``value / ipc`` terms are accumulated in program order, so the
    resulting float is bit-identical to the old on-the-fly sum — and a
    run of computes totalling 0.0 busy cycles emits no step at all
    (the old loop scheduled no event for it either).

    The compiled columns depend only on ``(spec, ipc)``; they are
    memoized on the spec so every scheme simulated over the same
    workload shares one copy.
    """
    memo = spec.__dict__.get("_steps_by_ipc")
    if memo is None:
        memo = {}
        object.__setattr__(spec, "_steps_by_ipc", memo)
    cached = memo.get(ipc)
    if cached is not None:
        return cached
    kinds = bytearray()
    words: list[int] = []
    busys: list[float] = []
    ops = spec.ops
    n = len(ops)
    i = 0
    while i < n:
        kind, value = ops[i]
        if kind == OP_COMPUTE:
            busy = 0.0
            while i < n:
                op_kind, op_value = ops[i]
                if op_kind != OP_COMPUTE:
                    break
                busy += op_value / ipc
                i += 1
            if busy > 0:
                kinds.append(STEP_BUSY)
                words.append(0)
                busys.append(busy)
            continue
        kinds.append(STEP_READ if kind == OP_READ else STEP_WRITE)
        words.append(value)
        busys.append(0.0)
        i += 1
    compiled = (kinds, words, busys)
    memo[ipc] = compiled
    return compiled


@dataclass(frozen=True)
class TaskSpec:
    """Static description of one speculative task."""

    task_id: int
    ops: tuple[Operation, ...]

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise WorkloadError(f"task_id must be >= 0, got {self.task_id}")
        for kind, value in self.ops:
            if kind not in (OP_COMPUTE, OP_READ, OP_WRITE):
                raise WorkloadError(f"unknown op kind {kind}")
            if value < 0:
                raise WorkloadError(f"negative op value {value}")

    @property
    def instructions(self) -> int:
        """Total compute instructions in the task."""
        return sum(v for k, v in self.ops if k == OP_COMPUTE)

    @property
    def memory_ops(self) -> int:
        return sum(1 for k, _v in self.ops if k != OP_COMPUTE)

    def written_words(self) -> set[int]:
        return {v for k, v in self.ops if k == OP_WRITE}

    def read_words(self) -> set[int]:
        return {v for k, v in self.ops if k == OP_READ}

    def written_lines(self) -> set[int]:
        return {line_of(w) for w in self.written_words()}


class TaskState(enum.Enum):
    """Lifecycle of one task (not one attempt)."""

    PENDING = "pending"        # in the scheduler queue, not claimed
    RUNNING = "running"        # executing on a processor
    SV_STALLED = "sv-stalled"  # blocked creating a second local version
    DONE = "done"              # finished executing, still speculative
    COMMITTED = "committed"

    def __str__(self) -> str:
        return self.value


@dataclass(slots=True)
class TaskRun:
    """Dynamic state of a task across its execution attempts."""

    spec: TaskSpec
    state: TaskState = TaskState.PENDING
    proc_id: int | None = None
    #: Incremented on every (re)start; stale in-flight events compare this.
    attempt: int = 0
    op_index: int = 0
    #: Words this attempt has written so far, grouped by line (used to build
    #: write-back payloads and undo-log entries).
    words_by_line: dict[int, set[int]] = field(default_factory=dict)
    #: Words this attempt has read from other tasks / architectural state
    #: (directory reader records to drop on squash or commit).
    read_words: set[int] = field(default_factory=set)
    #: word -> producer observed at this attempt's *first* read of the word
    #: (used by the sequential-semantics invariant checks).
    observed_reads: dict[int, int] = field(default_factory=dict)
    start_time: float = 0.0
    finish_time: float = 0.0
    commit_start: float = 0.0
    commit_time: float = 0.0
    squashes: int = 0
    #: Busy cycles executed by the current attempt (for wasted-work stats).
    attempt_busy: float = 0.0
    #: Compiled flat step columns (engine-core v3): parallel arrays from
    #: :func:`compile_steps`, installed by the engine at simulation
    #: construction. ``op_index`` cursors through them; a squash resets
    #: the cursor and replays the identical step stream.
    step_kind: bytearray = field(default_factory=bytearray)
    step_word: list[int] = field(default_factory=list)
    step_busy: list[float] = field(default_factory=list)

    @property
    def task_id(self) -> int:
        return self.spec.task_id

    def begin_attempt(self, proc_id: int, now: float) -> None:
        self.state = TaskState.RUNNING
        self.proc_id = proc_id
        self.attempt += 1
        self.op_index = 0
        self.words_by_line = {}
        self.read_words = set()
        self.observed_reads = {}
        self.start_time = now
        self.attempt_busy = 0.0

    def record_write(self, word_addr: int) -> None:
        self.words_by_line.setdefault(line_of(word_addr), set()).add(word_addr)

    def squash(self) -> None:
        self.state = TaskState.PENDING
        self.proc_id = None
        self.squashes += 1
        self.op_index = 0
        self.words_by_line = {}
        self.read_words = set()
        self.observed_reads = {}

    @property
    def execution_cycles(self) -> float:
        """Wall-clock duration of the (successful) execution."""
        return max(0.0, self.finish_time - self.start_time)

    @property
    def commit_cycles(self) -> float:
        return max(0.0, self.commit_time - self.commit_start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TaskRun(id={self.task_id}, state={self.state}, "
                f"proc={self.proc_id}, attempt={self.attempt})")
