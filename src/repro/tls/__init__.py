"""Thread-level speculation protocol: tasks, versions, commits, scheduling."""

from repro.tls.commit import CommitController, CommitStats
from repro.tls.scheduler import TaskScheduler
from repro.tls.task import (
    OP_COMPUTE,
    OP_READ,
    OP_WRITE,
    Operation,
    TaskRun,
    TaskSpec,
    TaskState,
)
from repro.tls.versions import VersionDirectory

__all__ = [
    "CommitController",
    "CommitStats",
    "OP_COMPUTE",
    "OP_READ",
    "OP_WRITE",
    "Operation",
    "TaskRun",
    "TaskScheduler",
    "TaskSpec",
    "TaskState",
    "VersionDirectory",
]
