"""Global multi-version directory and violation detection.

The directory is the logical heart of the speculative parallelization
protocol: for every word it maintains the ordered set of versions (by
producer task ID) and the set of speculative readers together with the
version each one consumed. The engine charges realistic latencies for
finding and moving data; this structure answers *which* version a reader
must receive and *who* must be squashed when a write arrives out of order.

Violation rule (matching the paper's base protocol, from Prvulovic01):
squashes are triggered only by an out-of-order RAW on the same word — a
write by task T squashes reader U > T if U consumed a version older than T.
Word granularity means false sharing within a line never squashes.

Storage layout (engine-core v2): per-word state is interned into two flat
parallel maps — ``word -> sorted producer list`` and ``word -> {reader:
oldest version seen}`` — instead of one dict of per-word record objects.
The hot protocol operations (:meth:`version_for_read`,
:meth:`record_read`, :meth:`record_write`,
:meth:`latest_version_at_most`) run several times per simulated memory
op; dropping the record-object indirection removes an allocation and an
attribute load from each of them.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass

from repro.memsys.cache import ARCH_TASK_ID

_EMPTY: dict = {}


@dataclass
class DirectoryStats:
    """Counters for version-directory traffic."""
    reads: int = 0
    writes: int = 0
    violations: int = 0
    forwarded_reads: int = 0


class VersionDirectory:
    """System-wide word-granularity version order and reader tracking."""

    def __init__(self) -> None:
        #: word -> sorted producer task IDs with a live version of it.
        self._producers: dict[int, list[int]] = {}
        #: word -> {reader task ID: oldest producer ID that reader consumed}.
        self._readers: dict[int, dict[int, int]] = {}
        self.stats = DirectoryStats()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def version_for_read(self, word_addr: int, reader: int) -> int:
        """Producer whose version ``reader`` must consume for ``word_addr``.

        The latest version with producer ID <= ``reader``; reading your own
        version is allowed (a task has at most one version of a word).
        Returns :data:`ARCH_TASK_ID` if no speculative version precedes the
        reader.
        """
        producers = self._producers.get(word_addr)
        if not producers:
            return ARCH_TASK_ID
        idx = bisect_right(producers, reader)
        if idx == 0:
            return ARCH_TASK_ID
        return producers[idx - 1]

    def record_read(self, word_addr: int, reader: int, version_seen: int) -> None:
        """Note that ``reader`` consumed ``version_seen`` of ``word_addr``.

        Only reads of *other* tasks' state (or architectural state) are
        recorded: a task reading its own version can never be violated by a
        predecessor write newer than that version's own task.
        """
        self.stats.reads += 1
        if version_seen == reader:
            return
        if version_seen != ARCH_TASK_ID:
            self.stats.forwarded_reads += 1
        readers = self._readers.get(word_addr)
        if readers is None:
            self._readers[word_addr] = {reader: version_seen}
            return
        previous = readers.get(reader)
        if previous is None or version_seen < previous:
            readers[reader] = version_seen

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def record_write(self, word_addr: int, producer: int) -> list[int]:
        """Insert ``producer``'s version; return violated readers.

        A reader U is violated when U > producer and U consumed a version
        older than ``producer`` (out-of-order RAW). The caller squashes the
        earliest violated reader and its successors.
        """
        self.stats.writes += 1
        producers = self._producers.get(word_addr)
        if producers is None:
            self._producers[word_addr] = [producer]
        else:
            idx = bisect_right(producers, producer)
            if idx == 0 or producers[idx - 1] != producer:
                insort(producers, producer)
        # Inline violated_readers: the reader map is already in hand, so
        # the hot path does a single dict lookup per write.
        readers = self._readers.get(word_addr)
        if not readers:
            return []
        violated = sorted(
            reader
            for reader, seen in readers.items()
            if reader > producer and seen < producer
        )
        if violated:
            self.stats.violations += 1
        return violated

    def violated_readers(self, word_addr: int, producer: int) -> list[int]:
        """Readers of ``word_addr`` that a write by ``producer`` violates.

        Read-only check (no version inserted); the line-granularity
        detection mode uses it to find false-sharing victims on the other
        words of the written line.
        """
        readers = self._readers.get(word_addr)
        if not readers:
            return []
        return sorted(
            reader
            for reader, seen in readers.items()
            if reader > producer and seen < producer
        )

    # ------------------------------------------------------------------
    # Squash / commit bookkeeping
    # ------------------------------------------------------------------
    def purge_task(self, task_id: int, written: set[int],
                   read: set[int]) -> None:
        """Remove a squashed task's versions and read records.

        ``written`` / ``read`` are the word sets the squashed attempt
        touched (the engine tracks them per attempt), so the purge is
        targeted rather than a full directory sweep.
        """
        all_producers = self._producers
        for word in written:
            producers = all_producers.get(word)
            if producers:
                idx = bisect_right(producers, task_id)
                if idx and producers[idx - 1] == task_id:
                    producers.pop(idx - 1)
        all_readers = self._readers
        for word in read:
            readers = all_readers.get(word)
            if readers is not None:
                readers.pop(task_id, None)

    def purge_tasks(self, task_ids: set[int]) -> None:
        """Full-sweep removal of versions and reads of ``task_ids``.

        Slower than :meth:`purge_task`; kept for hand-driven protocol tests
        that do not track per-attempt word sets.
        """
        for word, producers in self._producers.items():
            if producers:
                self._producers[word] = [p for p in producers
                                         if p not in task_ids]
        for readers in self._readers.values():
            for tid in task_ids.intersection(readers):
                del readers[tid]

    def forget_reader(self, task_id: int, read: set[int] | None = None) -> None:
        """Drop reader records of a committed task (it can't be violated)."""
        all_readers = self._readers
        if read is not None:
            for word in read:
                readers = all_readers.get(word)
                if readers is not None:
                    readers.pop(task_id, None)
            return
        for readers in all_readers.values():
            readers.pop(task_id, None)

    # ------------------------------------------------------------------
    # Introspection (used by write-back payload building and invariants)
    # ------------------------------------------------------------------
    def iter_states(self):
        """Yield ``(word, producers, readers)`` for every tracked word.

        The yielded lists/dicts are the live internal structures (no
        copies); callers — the invariant checker sweeps them after every
        engine event — must treat them as read-only. Words with reader
        records but no live version yield an empty producer list, and
        vice versa.
        """
        all_readers = self._readers
        for word, producers in self._producers.items():
            yield word, producers, all_readers.get(word, _EMPTY)
        all_producers = self._producers
        for word, readers in all_readers.items():
            if word not in all_producers:
                yield word, [], readers

    def producers_of(self, word_addr: int) -> list[int]:
        """Task IDs with a live version of ``word_addr``, in order."""
        producers = self._producers.get(word_addr)
        return list(producers) if producers else []

    def latest_version_at_most(self, word_addr: int, bound: int) -> int:
        """Latest producer <= ``bound`` for ``word_addr`` (ARCH if none)."""
        producers = self._producers.get(word_addr)
        if not producers:
            return ARCH_TASK_ID
        idx = bisect_right(producers, bound)
        return producers[idx - 1] if idx else ARCH_TASK_ID

    def latest_version_below(self, word_addr: int, bound: int) -> int:
        """Latest producer strictly < ``bound`` (ARCH if none).

        Used by the line-granularity detection mode: a task re-reading its
        own word still exposes the rest of its line copy, whose other words
        date from before the task's own version.
        """
        return self.latest_version_at_most(word_addr, bound - 1)

    def has_version(self, word_addr: int, producer: int) -> bool:
        """True when ``producer`` holds a live version of ``word_addr``."""
        producers = self._producers.get(word_addr)
        if not producers:
            return False
        idx = bisect_right(producers, producer)
        return idx > 0 and producers[idx - 1] == producer

    def final_image(self) -> dict[int, int]:
        """word -> last producer, assuming every remaining task committed.

        Used by the correctness invariant: after a full run this must equal
        both the sequential last-writer image and (for merged words) the
        main-memory image.
        """
        return {
            word: producers[-1]
            for word, producers in self._producers.items()
            if producers
        }

    def words_written(self) -> set[int]:
        """Every word address with at least one recorded version."""
        return {w for w, producers in self._producers.items() if producers}
