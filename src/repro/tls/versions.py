"""Global multi-version directory and violation detection.

The directory is the logical heart of the speculative parallelization
protocol: for every word it maintains the ordered set of versions (by
producer task ID) and the set of speculative readers together with the
version each one consumed. The engine charges realistic latencies for
finding and moving data; this structure answers *which* version a reader
must receive and *who* must be squashed when a write arrives out of order.

Violation rule (matching the paper's base protocol, from Prvulovic01):
squashes are triggered only by an out-of-order RAW on the same word — a
write by task T squashes reader U > T if U consumed a version older than T.
Word granularity means false sharing within a line never squashes.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.memsys.cache import ARCH_TASK_ID


@dataclass(slots=True)
class _WordState:
    """Versions and speculative readers of one word."""

    #: Sorted producer task IDs that currently have a version of this word.
    producers: list[int] = field(default_factory=list)
    #: reader task ID -> oldest producer ID that reader consumed.
    readers: dict[int, int] = field(default_factory=dict)


@dataclass
class DirectoryStats:
    """Counters for version-directory traffic."""
    reads: int = 0
    writes: int = 0
    violations: int = 0
    forwarded_reads: int = 0


class VersionDirectory:
    """System-wide word-granularity version order and reader tracking."""

    def __init__(self) -> None:
        self._words: dict[int, _WordState] = {}
        self.stats = DirectoryStats()

    def _state(self, word_addr: int) -> _WordState:
        state = self._words.get(word_addr)
        if state is None:
            state = _WordState()
            self._words[word_addr] = state
        return state

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def version_for_read(self, word_addr: int, reader: int) -> int:
        """Producer whose version ``reader`` must consume for ``word_addr``.

        The latest version with producer ID <= ``reader``; reading your own
        version is allowed (a task has at most one version of a word).
        Returns :data:`ARCH_TASK_ID` if no speculative version precedes the
        reader.
        """
        state = self._words.get(word_addr)
        if state is None or not state.producers:
            return ARCH_TASK_ID
        idx = bisect_right(state.producers, reader)
        if idx == 0:
            return ARCH_TASK_ID
        return state.producers[idx - 1]

    def record_read(self, word_addr: int, reader: int, version_seen: int) -> None:
        """Note that ``reader`` consumed ``version_seen`` of ``word_addr``.

        Only reads of *other* tasks' state (or architectural state) are
        recorded: a task reading its own version can never be violated by a
        predecessor write newer than that version's own task.
        """
        self.stats.reads += 1
        if version_seen == reader:
            return
        if version_seen != ARCH_TASK_ID:
            self.stats.forwarded_reads += 1
        state = self._words.get(word_addr)
        if state is None:
            state = _WordState()
            self._words[word_addr] = state
        readers = state.readers
        previous = readers.get(reader)
        if previous is None or version_seen < previous:
            readers[reader] = version_seen

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def record_write(self, word_addr: int, producer: int) -> list[int]:
        """Insert ``producer``'s version; return violated readers.

        A reader U is violated when U > producer and U consumed a version
        older than ``producer`` (out-of-order RAW). The caller squashes the
        earliest violated reader and its successors.
        """
        self.stats.writes += 1
        state = self._words.get(word_addr)
        if state is None:
            state = _WordState()
            self._words[word_addr] = state
        producers = state.producers
        idx = bisect_right(producers, producer)
        if idx == 0 or producers[idx - 1] != producer:
            insort(producers, producer)
        # Inline violated_readers: the state is already in hand, so the
        # hot path does a single dict lookup per write.
        readers = state.readers
        if not readers:
            return []
        violated = sorted(
            reader
            for reader, seen in readers.items()
            if reader > producer and seen < producer
        )
        if violated:
            self.stats.violations += 1
        return violated

    def violated_readers(self, word_addr: int, producer: int) -> list[int]:
        """Readers of ``word_addr`` that a write by ``producer`` violates.

        Read-only check (no version inserted); the line-granularity
        detection mode uses it to find false-sharing victims on the other
        words of the written line.
        """
        state = self._words.get(word_addr)
        if state is None or not state.readers:
            return []
        return sorted(
            reader
            for reader, seen in state.readers.items()
            if reader > producer and seen < producer
        )

    # ------------------------------------------------------------------
    # Squash / commit bookkeeping
    # ------------------------------------------------------------------
    def purge_task(self, task_id: int, written: set[int],
                   read: set[int]) -> None:
        """Remove a squashed task's versions and read records.

        ``written`` / ``read`` are the word sets the squashed attempt
        touched (the engine tracks them per attempt), so the purge is
        targeted rather than a full directory sweep.
        """
        for word in written:
            state = self._words.get(word)
            if state is not None and state.producers:
                idx = bisect_right(state.producers, task_id)
                if idx and state.producers[idx - 1] == task_id:
                    state.producers.pop(idx - 1)
        for word in read:
            state = self._words.get(word)
            if state is not None:
                state.readers.pop(task_id, None)

    def purge_tasks(self, task_ids: set[int]) -> None:
        """Full-sweep removal of versions and reads of ``task_ids``.

        Slower than :meth:`purge_task`; kept for hand-driven protocol tests
        that do not track per-attempt word sets.
        """
        for state in self._words.values():
            if state.producers:
                state.producers = [p for p in state.producers
                                   if p not in task_ids]
            if state.readers:
                for tid in task_ids.intersection(state.readers):
                    del state.readers[tid]

    def forget_reader(self, task_id: int, read: set[int] | None = None) -> None:
        """Drop reader records of a committed task (it can't be violated)."""
        if read is not None:
            for word in read:
                state = self._words.get(word)
                if state is not None:
                    state.readers.pop(task_id, None)
            return
        for state in self._words.values():
            state.readers.pop(task_id, None)

    # ------------------------------------------------------------------
    # Introspection (used by write-back payload building and invariants)
    # ------------------------------------------------------------------
    def iter_states(self):
        """Yield ``(word, producers, readers)`` for every tracked word.

        The yielded lists/dicts are the live internal structures (no
        copies); callers — the invariant checker sweeps them after every
        engine event — must treat them as read-only.
        """
        for word, state in self._words.items():
            yield word, state.producers, state.readers

    def producers_of(self, word_addr: int) -> list[int]:
        """Task IDs with a live version of ``word_addr``, in order."""
        state = self._words.get(word_addr)
        return list(state.producers) if state else []

    def latest_version_at_most(self, word_addr: int, bound: int) -> int:
        """Latest producer <= ``bound`` for ``word_addr`` (ARCH if none)."""
        state = self._words.get(word_addr)
        if state is None or not state.producers:
            return ARCH_TASK_ID
        idx = bisect_right(state.producers, bound)
        return state.producers[idx - 1] if idx else ARCH_TASK_ID

    def latest_version_below(self, word_addr: int, bound: int) -> int:
        """Latest producer strictly < ``bound`` (ARCH if none).

        Used by the line-granularity detection mode: a task re-reading its
        own word still exposes the rest of its line copy, whose other words
        date from before the task's own version.
        """
        return self.latest_version_at_most(word_addr, bound - 1)

    def has_version(self, word_addr: int, producer: int) -> bool:
        """True when ``producer`` holds a live version of ``word_addr``."""
        state = self._words.get(word_addr)
        if state is None:
            return False
        idx = bisect_right(state.producers, producer)
        return idx > 0 and state.producers[idx - 1] == producer

    def final_image(self) -> dict[int, int]:
        """word -> last producer, assuming every remaining task committed.

        Used by the correctness invariant: after a full run this must equal
        both the sequential last-writer image and (for merged words) the
        main-memory image.
        """
        return {
            word: state.producers[-1]
            for word, state in self._words.items()
            if state.producers
        }

    def words_written(self) -> set[int]:
        """Every word address with at least one recorded version."""
        return {w for w, s in self._words.items() if s.producers}
