"""Global multi-version directory and violation detection.

The directory is the logical heart of the speculative parallelization
protocol: for every word it maintains the ordered set of versions (by
producer task ID) and the set of speculative readers together with the
version each one consumed. The engine charges realistic latencies for
finding and moving data; this structure answers *which* version a reader
must receive and *who* must be squashed when a write arrives out of order.

Violation rule (matching the paper's base protocol, from Prvulovic01):
squashes are triggered only by an out-of-order RAW on the same word — a
write by task T squashes reader U > T if U consumed a version older than T.
Word granularity means false sharing within a line never squashes.

Storage layout (engine-core v3): per-word state is interned into *rows*.
``_row`` maps a word address to its row index, assigned on the word's
first tracked access and never freed; ``_producers[row]`` (sorted task-ID
list), ``_readers[row]`` (reader -> oldest version seen) and
``_words[row]`` (the reverse mapping) are flat parallel columns. The hot
protocol operations (:meth:`version_for_read`, :meth:`record_read`,
:meth:`record_write`, :meth:`latest_version_at_most`) run several times
per simulated memory op; one shared interning dict plus list indexing
replaces the two independent per-word dict probes of the v2 layout, and
the engine's batched drain loop binds the columns directly for its
inlined read/write fast paths (which must mirror the methods here
mutation for mutation).
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass

from repro.memsys.cache import ARCH_TASK_ID

_EMPTY: dict = {}


@dataclass
class DirectoryStats:
    """Counters for version-directory traffic."""
    reads: int = 0
    writes: int = 0
    violations: int = 0
    forwarded_reads: int = 0


class VersionDirectory:
    """System-wide word-granularity version order and reader tracking."""

    def __init__(self) -> None:
        #: word -> row index (assigned on first tracked access, never freed).
        self._row: dict[int, int] = {}
        #: row -> sorted producer task IDs with a live version of the word.
        self._producers: list[list[int]] = []
        #: row -> {reader task ID: oldest producer ID that reader consumed}.
        self._readers: list[dict[int, int]] = []
        #: row -> word address (reverse mapping for sweeps and images).
        self._words: list[int] = []
        self.stats = DirectoryStats()

    def _intern(self, word_addr: int) -> int:
        """Row index for ``word_addr``, creating an empty row if needed."""
        row = self._row.get(word_addr)
        if row is None:
            row = len(self._words)
            self._row[word_addr] = row
            self._producers.append([])
            self._readers.append({})
            self._words.append(word_addr)
        return row

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def version_for_read(self, word_addr: int, reader: int) -> int:
        """Producer whose version ``reader`` must consume for ``word_addr``.

        The latest version with producer ID <= ``reader``; reading your own
        version is allowed (a task has at most one version of a word).
        Returns :data:`ARCH_TASK_ID` if no speculative version precedes the
        reader.
        """
        row = self._row.get(word_addr)
        if row is None:
            return ARCH_TASK_ID
        producers = self._producers[row]
        if not producers:
            return ARCH_TASK_ID
        idx = bisect_right(producers, reader)
        if idx == 0:
            return ARCH_TASK_ID
        return producers[idx - 1]

    def record_read(self, word_addr: int, reader: int, version_seen: int) -> None:
        """Note that ``reader`` consumed ``version_seen`` of ``word_addr``.

        Only reads of *other* tasks' state (or architectural state) are
        recorded: a task reading its own version can never be violated by a
        predecessor write newer than that version's own task.
        """
        self.stats.reads += 1
        if version_seen == reader:
            return
        if version_seen != ARCH_TASK_ID:
            self.stats.forwarded_reads += 1
        readers = self._readers[self._intern(word_addr)]
        previous = readers.get(reader)
        if previous is None or version_seen < previous:
            readers[reader] = version_seen

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def record_write(self, word_addr: int, producer: int) -> list[int]:
        """Insert ``producer``'s version; return violated readers.

        A reader U is violated when U > producer and U consumed a version
        older than ``producer`` (out-of-order RAW). The caller squashes the
        earliest violated reader and its successors.
        """
        self.stats.writes += 1
        row = self._intern(word_addr)
        producers = self._producers[row]
        idx = bisect_right(producers, producer)
        if idx == 0 or producers[idx - 1] != producer:
            insort(producers, producer)
        # Inline violated_readers: the reader map is already in hand, so
        # the hot path does a single list index per write.
        readers = self._readers[row]
        if not readers:
            return []
        violated = sorted(
            reader
            for reader, seen in readers.items()
            if reader > producer and seen < producer
        )
        if violated:
            self.stats.violations += 1
        return violated

    def violated_readers(self, word_addr: int, producer: int) -> list[int]:
        """Readers of ``word_addr`` that a write by ``producer`` violates.

        Read-only check (no version inserted); the line-granularity
        detection mode uses it to find false-sharing victims on the other
        words of the written line.
        """
        row = self._row.get(word_addr)
        if row is None:
            return []
        readers = self._readers[row]
        if not readers:
            return []
        return sorted(
            reader
            for reader, seen in readers.items()
            if reader > producer and seen < producer
        )

    # ------------------------------------------------------------------
    # Squash / commit bookkeeping
    # ------------------------------------------------------------------
    def purge_task(self, task_id: int, written: set[int],
                   read: set[int]) -> None:
        """Remove a squashed task's versions and read records.

        ``written`` / ``read`` are the word sets the squashed attempt
        touched (the engine tracks them per attempt), so the purge is
        targeted rather than a full directory sweep.
        """
        rows = self._row
        all_producers = self._producers
        for word in written:
            row = rows.get(word)
            if row is None:
                continue
            producers = all_producers[row]
            if producers:
                idx = bisect_right(producers, task_id)
                if idx and producers[idx - 1] == task_id:
                    producers.pop(idx - 1)
        all_readers = self._readers
        for word in read:
            row = rows.get(word)
            if row is not None:
                all_readers[row].pop(task_id, None)

    def purge_tasks(self, task_ids: set[int]) -> None:
        """Full-sweep removal of versions and reads of ``task_ids``.

        Slower than :meth:`purge_task`; kept for hand-driven protocol tests
        that do not track per-attempt word sets.
        """
        all_producers = self._producers
        for row, producers in enumerate(all_producers):
            if producers:
                all_producers[row] = [p for p in producers
                                      if p not in task_ids]
        for readers in self._readers:
            for tid in task_ids.intersection(readers):
                del readers[tid]

    def forget_reader(self, task_id: int, read: set[int] | None = None) -> None:
        """Drop reader records of a committed task (it can't be violated)."""
        all_readers = self._readers
        if read is not None:
            rows = self._row
            for word in read:
                row = rows.get(word)
                if row is not None:
                    all_readers[row].pop(task_id, None)
            return
        for readers in all_readers:
            readers.pop(task_id, None)

    # ------------------------------------------------------------------
    # Introspection (used by write-back payload building and invariants)
    # ------------------------------------------------------------------
    def iter_states(self):
        """Yield ``(word, producers, readers)`` for every tracked word.

        The yielded lists/dicts are the live internal structures (no
        copies); callers — the invariant checker sweeps them after every
        engine event — must treat them as read-only. Words with reader
        records but no live version yield an empty producer list, and
        vice versa.
        """
        all_producers = self._producers
        all_readers = self._readers
        for row, word in enumerate(self._words):
            yield word, all_producers[row], all_readers[row]

    def producers_of(self, word_addr: int) -> list[int]:
        """Task IDs with a live version of ``word_addr``, in order."""
        row = self._row.get(word_addr)
        if row is None:
            return []
        return list(self._producers[row])

    def latest_version_at_most(self, word_addr: int, bound: int) -> int:
        """Latest producer <= ``bound`` for ``word_addr`` (ARCH if none)."""
        row = self._row.get(word_addr)
        if row is None:
            return ARCH_TASK_ID
        producers = self._producers[row]
        if not producers:
            return ARCH_TASK_ID
        idx = bisect_right(producers, bound)
        return producers[idx - 1] if idx else ARCH_TASK_ID

    def latest_version_below(self, word_addr: int, bound: int) -> int:
        """Latest producer strictly < ``bound`` (ARCH if none).

        Used by the line-granularity detection mode: a task re-reading its
        own word still exposes the rest of its line copy, whose other words
        date from before the task's own version.
        """
        return self.latest_version_at_most(word_addr, bound - 1)

    def has_version(self, word_addr: int, producer: int) -> bool:
        """True when ``producer`` holds a live version of ``word_addr``."""
        row = self._row.get(word_addr)
        if row is None:
            return False
        producers = self._producers[row]
        if not producers:
            return False
        idx = bisect_right(producers, producer)
        return idx > 0 and producers[idx - 1] == producer

    def final_image(self) -> dict[int, int]:
        """word -> last producer, assuming every remaining task committed.

        Used by the correctness invariant: after a full run this must equal
        both the sequential last-writer image and (for merged words) the
        main-memory image.
        """
        return {
            word: producers[-1]
            for word, producers in zip(self._words, self._producers)
            if producers
        }

    def words_written(self) -> set[int]:
        """Every word address with at least one recorded version."""
        return {
            word
            for word, producers in zip(self._words, self._producers)
            if producers
        }
