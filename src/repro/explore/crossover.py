"""Crossover and saturation search over design-space axes.

Two generic searches over a sorted candidate list, plus the two wired
questions from the paper's Section 7.3 discussion:

* :func:`find_crossover` — bisection for the smallest axis value whose
  (monotone non-increasing) metric drops to a threshold. Used for
  "at what L2 size does Lazy.L2 close the FMM gap on P3m?" (the paper's
  Figure 10 answer: a 4-MB L2 makes Lazy match FMM).
* :func:`find_saturation` — linear scan for the first axis value whose
  marginal improvement falls below a relative cutoff. Used for "at what
  processor count does MultiT&MV's advantage over SingleT saturate?".

Metric evaluations go through the shared result cache, so bisection
probes that land on already-simulated grid points replay for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.config import NUMA_16, MachineConfig
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_FMM,
    MULTI_T_MV_LAZY,
    SINGLE_T_EAGER,
)
from repro.errors import ConfigurationError
from repro.explore.space import ParamSpace
from repro.runner import SimJob, SweepRunner, WorkloadSpec


@dataclass(frozen=True)
class CrossoverResult:
    """Outcome of one search: the value found (if any) and the probes."""

    #: True when a candidate satisfying the criterion exists.
    found: bool
    #: The smallest satisfying candidate (``None`` when not found).
    value: Any
    #: The candidate's display label.
    label: str
    #: Metric at ``value`` (at the last probed candidate when not found).
    metric: float
    #: Number of metric evaluations the search performed.
    evaluations: int
    #: Every ``(label, metric)`` probe, in probe order.
    history: tuple[tuple[str, float], ...]


def find_crossover(
    candidates: list[Any],
    metric: Callable[[Any], float],
    *,
    threshold: float,
    label: Callable[[Any], str] = str,
) -> CrossoverResult:
    """Bisect for the smallest candidate with ``metric(c) <= threshold``.

    ``candidates`` must be in increasing axis order and ``metric`` must
    be monotone non-increasing along them (more hardware, smaller gap) —
    the property every wired axis question has. The search probes
    O(log n) candidates; each probe is memoized.
    """
    if not candidates:
        raise ConfigurationError("find_crossover needs at least one candidate")
    memo: dict[int, float] = {}
    history: list[tuple[str, float]] = []

    def probe(index: int) -> float:
        if index not in memo:
            memo[index] = metric(candidates[index])
            history.append((label(candidates[index]), memo[index]))
        return memo[index]

    last = len(candidates) - 1
    if probe(last) > threshold:
        return CrossoverResult(
            found=False, value=None, label=label(candidates[last]),
            metric=memo[last], evaluations=len(memo),
            history=tuple(history))
    lo, hi = 0, last
    while lo < hi:
        mid = (lo + hi) // 2
        if probe(mid) <= threshold:
            hi = mid
        else:
            lo = mid + 1
    return CrossoverResult(
        found=True, value=candidates[lo], label=label(candidates[lo]),
        metric=probe(lo), evaluations=len(memo), history=tuple(history))


def find_saturation(
    candidates: list[Any],
    metric: Callable[[Any], float],
    *,
    marginal: float = 0.05,
    label: Callable[[Any], str] = str,
) -> CrossoverResult:
    """First candidate whose marginal metric improvement is < ``marginal``.

    ``metric`` is an improving-downward quantity (e.g. normalized time
    ratio); the scan walks the candidates in order and stops at the
    first whose relative improvement over its predecessor falls below
    the cutoff — the knee where spending more of the axis stops paying.
    """
    if len(candidates) < 2:
        raise ConfigurationError(
            "find_saturation needs at least two candidates")
    history: list[tuple[str, float]] = []
    previous = metric(candidates[0])
    history.append((label(candidates[0]), previous))
    for candidate in candidates[1:]:
        current = metric(candidate)
        history.append((label(candidate), current))
        improvement = (previous - current) / abs(previous) if previous else 0.0
        if improvement < marginal:
            return CrossoverResult(
                found=True, value=candidate, label=label(candidate),
                metric=current, evaluations=len(history),
                history=tuple(history))
        previous = current
    return CrossoverResult(
        found=False, value=None, label=label(candidates[-1]),
        metric=history[-1][1], evaluations=len(history),
        history=tuple(history))


# ----------------------------------------------------------------------
# Wired questions
# ----------------------------------------------------------------------
def _tls_cycles(runner: SweepRunner, machine: MachineConfig, scheme,
                app: str, seed: int, scale: float) -> float:
    """Total cycles of one (machine, scheme, app) cell via the runner."""
    job = SimJob(machine=machine, scheme=scheme,
                 workload=WorkloadSpec(app, seed=seed, scale=scale))
    return runner.run(job).total_cycles


def lazy_l2_crossover(
    *,
    runner: SweepRunner,
    base: MachineConfig = NUMA_16,
    app: str = "P3m",
    tolerance: float = 0.05,
    scale: float = 1.0,
    seed: int = 0,
    sizes: tuple[int, ...] | None = None,
) -> CrossoverResult:
    """The L2 size where Lazy AMM comes within ``tolerance`` of FMM.

    Reproduces the paper's Lazy.L2 argument (Figure 10 / Section 7.3):
    FMM's advantage on ``app`` comes from relieving L2 buffer pressure,
    so enlarging the L2 should let plain Lazy AMM close the gap. The
    metric is the relative gap ``lazy(variant) / fmm(base) - 1``;
    candidates are L2 sizes from the base size upward.
    """
    space = ParamSpace(base, axes=("l2_size",))
    axis = space.axis("l2_size")
    chosen = sizes if sizes is not None else tuple(
        s for s in axis.values if s >= base.l2.size_bytes)
    fmm = _tls_cycles(runner, base, MULTI_T_MV_FMM, app, seed, scale)

    def gap(size: int) -> float:
        lazy = _tls_cycles(runner, space.variant("l2_size", size).machine,
                           MULTI_T_MV_LAZY, app, seed, scale)
        return lazy / fmm - 1.0

    return find_crossover(sorted(chosen), gap, threshold=tolerance,
                          label=axis.label)


def mv_gain_saturation(
    *,
    runner: SweepRunner,
    base: MachineConfig = NUMA_16,
    app: str = "P3m",
    marginal: float = 0.05,
    scale: float = 1.0,
    seed: int = 0,
    counts: tuple[int, ...] | None = None,
) -> CrossoverResult:
    """The processor count where MultiT&MV's advantage saturates.

    The paper argues MultiT&MV's benefit (absorbing load imbalance with
    multiple speculative tasks per processor) grows with the machine but
    eventually saturates. The metric is the time ratio
    ``MultiT&MV Eager / SingleT Eager`` on the ``n_procs`` variant —
    lower is better for MV — and saturation is the first count whose
    marginal improvement drops below ``marginal``.
    """
    space = ParamSpace(base, axes=("n_procs",))
    axis = space.axis("n_procs")
    chosen = sorted(counts if counts is not None else axis.values)

    def ratio(n: int) -> float:
        machine = space.variant("n_procs", n).machine
        mv = _tls_cycles(runner, machine, MULTI_T_MV_EAGER, app, seed, scale)
        single = _tls_cycles(runner, machine, SINGLE_T_EAGER, app, seed,
                             scale)
        return mv / single if single else 0.0

    return find_saturation(chosen, ratio, marginal=marginal,
                           label=axis.label)
