"""Design-space exploration: parameterized machines, sweeps, frontiers.

The paper evaluates its taxonomy on two fixed machines; this subsystem
maps where those conclusions hold as the hardware varies. It layers on
the existing runner infrastructure:

* :mod:`repro.explore.space` — named axes (L2 geometry, processor
  count, overflow capacity, latency/cost multipliers) deriving
  cache-key-safe :class:`~repro.core.config.MachineConfig` variants;
* :mod:`repro.explore.sweep` — per-axis sensitivity curves through the
  cached parallel :class:`~repro.runner.SweepRunner`;
* :mod:`repro.explore.crossover` — bisection/saturation searches for
  the paper's Section 7.3 questions (the Lazy.L2 crossover, the
  MultiT&MV saturation point);
* :mod:`repro.explore.pareto` — the complexity/performance Pareto
  frontier over the Table 1/2 support scores;
* :mod:`repro.explore.report` — the ``repro-tls explore`` renderer.
"""

from repro.explore.crossover import (
    CrossoverResult,
    find_crossover,
    find_saturation,
    lazy_l2_crossover,
    mv_gain_saturation,
)
from repro.explore.pareto import ParetoPoint, frontier_for, pareto_frontier
from repro.explore.report import build_explore
from repro.explore.space import (
    AXES,
    Axis,
    MachineVariant,
    ParamSpace,
    describe_machine,
    machine_registry,
)
from repro.explore.sweep import SensitivityCurve, SensitivitySweep, SweepPoint

__all__ = [
    "AXES",
    "Axis",
    "CrossoverResult",
    "MachineVariant",
    "ParamSpace",
    "ParetoPoint",
    "SensitivityCurve",
    "SensitivitySweep",
    "SweepPoint",
    "build_explore",
    "describe_machine",
    "find_crossover",
    "find_saturation",
    "frontier_for",
    "lazy_l2_crossover",
    "machine_registry",
    "mv_gain_saturation",
    "pareto_frontier",
]
