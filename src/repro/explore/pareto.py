"""Complexity/performance Pareto frontier over the taxonomy.

The paper's core argument is a tradeoff: each taxonomy point buys
execution time with hardware-support complexity (Tables 1 and 2). This
module makes the tradeoff explicit — every evaluated scheme becomes a
point (complexity score, normalized execution time), dominated points
are marked with *who* dominates them, and the survivors form the Pareto
frontier a designer would actually choose from, per machine and app.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MachineConfig
from repro.core.supports import complexity_score
from repro.core.taxonomy import EVALUATED_SCHEMES, Scheme
from repro.runner import SimJob, SweepRunner, WorkloadSpec


@dataclass(frozen=True)
class ParetoPoint:
    """One scheme's position in the complexity/time plane."""

    scheme_name: str
    #: Section 3.3.5 hardware-support complexity score.
    complexity: int
    #: Execution time normalized to the sequential baseline.
    norm_time: float
    #: True when no other scheme is at least as good on both dimensions
    #: (and strictly better on one).
    on_frontier: bool
    #: Names of the schemes dominating this one (empty on the frontier).
    dominated_by: tuple[str, ...]


def _dominates(a_complexity: int, a_time: float,
               b_complexity: int, b_time: float) -> bool:
    """True when point A is no worse than B everywhere, better somewhere."""
    return (a_complexity <= b_complexity and a_time <= b_time
            and (a_complexity < b_complexity or a_time < b_time))


def pareto_frontier(
    norm_times: dict[str, float],
    complexities: dict[str, int] | None = None,
) -> list[ParetoPoint]:
    """Classify schemes into frontier and dominated points.

    ``norm_times`` maps scheme name to normalized execution time;
    ``complexities`` defaults to the Table 1/2
    :func:`~repro.core.supports.complexity_score` of each evaluated
    scheme. Points come back sorted by (complexity, time) — the order a
    designer walks the frontier in.
    """
    if complexities is None:
        complexities = {s.name: complexity_score(s)
                        for s in EVALUATED_SCHEMES}
    points = []
    for name, time in norm_times.items():
        complexity = complexities[name]
        dominators = tuple(sorted(
            other for other, other_time in norm_times.items()
            if other != name and _dominates(
                complexities[other], other_time, complexity, time)
        ))
        points.append(ParetoPoint(
            scheme_name=name, complexity=complexity, norm_time=time,
            on_frontier=not dominators, dominated_by=dominators))
    points.sort(key=lambda p: (p.complexity, p.norm_time, p.scheme_name))
    return points


def frontier_for(
    machine: MachineConfig,
    apps: tuple[str, ...] | list[str],
    *,
    runner: SweepRunner,
    schemes: tuple[Scheme, ...] = EVALUATED_SCHEMES,
    scale: float = 1.0,
    seed: int = 0,
) -> dict[str, list[ParetoPoint]]:
    """Per-app Pareto classification of ``schemes`` on ``machine``.

    Runs (or replays) every scheme plus the sequential baseline for each
    app in one runner batch and classifies the normalized times.
    """
    specs = [WorkloadSpec(app, seed=seed, scale=scale) for app in apps]
    jobs = SimJob.grid([machine], [None, *schemes], specs)
    results = runner.run_many(jobs)
    by_cell = {(job.scheme.name if job.scheme else None,
                job.workload_name): result
               for job, result in zip(jobs, results)}

    out: dict[str, list[ParetoPoint]] = {}
    for app in apps:
        seq = by_cell[(None, app)].total_cycles
        norm_times = {
            scheme.name: (by_cell[(scheme.name, app)].total_cycles / seq
                          if seq else 0.0)
            for scheme in schemes
        }
        out[app] = pareto_frontier(norm_times)
    return out
