"""Sensitivity sweeps: per-axis response curves through the runner.

:class:`SensitivitySweep` fans a (machine-variant x scheme x app) grid —
every variant of every requested axis, plus a sequential baseline per
variant — through one :class:`~repro.runner.SweepRunner` batch, so cache
hits replay and misses run in parallel. The output is one
:class:`SensitivityCurve` per (axis, scheme, app): normalized execution
time, squash counts, and overflow pressure at every axis value, in
response-curve order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.taxonomy import Scheme
from repro.explore.space import MachineVariant, ParamSpace
from repro.runner import ResultCache, SimJob, SweepRunner, WorkloadSpec


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a response curve: one variant under one scheme/app."""

    axis: str
    label: str
    machine_name: str
    scheme_name: str
    app: str
    #: TLS and sequential wall-clock cycles on this variant.
    tls_cycles: float
    seq_cycles: float
    violation_events: int
    squashed_executions: int
    overflow_spills: int
    peak_overflow_lines: int

    @property
    def norm_time(self) -> float:
        """Execution time normalized to the variant's sequential run."""
        return self.tls_cycles / self.seq_cycles if self.seq_cycles else 0.0

    @property
    def speedup(self) -> float:
        """Speedup over the variant's sequential run."""
        return self.seq_cycles / self.tls_cycles if self.tls_cycles else 0.0


@dataclass(frozen=True)
class SensitivityCurve:
    """One axis response: points in axis-value order for one scheme/app."""

    axis: str
    scheme_name: str
    app: str
    points: tuple[SweepPoint, ...]

    @property
    def labels(self) -> tuple[str, ...]:
        """The x-axis tick labels of this curve."""
        return tuple(p.label for p in self.points)

    @property
    def norm_times(self) -> tuple[float, ...]:
        """The normalized-time y values of this curve."""
        return tuple(p.norm_time for p in self.points)


class SensitivitySweep:
    """Drive per-axis sensitivity grids through the sweep runner."""

    def __init__(
        self,
        space: ParamSpace,
        schemes: tuple[Scheme, ...] | list[Scheme],
        apps: tuple[str, ...] | list[str],
        *,
        scale: float = 1.0,
        seed: int = 0,
        runner: SweepRunner | None = None,
    ) -> None:
        self.space = space
        self.schemes = tuple(schemes)
        self.apps = tuple(apps)
        self.scale = scale
        self.seed = seed
        self.runner = runner if runner is not None else SweepRunner(
            cache=ResultCache())

    # ------------------------------------------------------------------
    def _specs(self) -> list[WorkloadSpec]:
        return [WorkloadSpec(app, seed=self.seed, scale=self.scale)
                for app in self.apps]

    def run(
        self, axes: tuple[str, ...] | list[str] | None = None,
        values: dict[str, tuple] | None = None,
    ) -> dict[str, list[SensitivityCurve]]:
        """Sweep the requested axes (default: all in the space).

        ``values`` optionally restricts an axis to a subset of its grid
        (``{"l2_size": (262144, 524288)}``). Every simulation across
        every axis is submitted as one batch, so the runner dedupes
        shared cells (each axis's base-value variant is the base
        machine) and parallelizes the rest.
        """
        names = list(axes) if axes is not None else list(self.space.axes)
        chosen = values or {}
        per_axis = {name: self.space.variants(name, chosen.get(name))
                    for name in names}
        specs = self._specs()
        schemes: list[Scheme | None] = [None, *self.schemes]

        all_jobs: list[SimJob] = []
        for name, variants in per_axis.items():
            all_jobs.extend(
                SimJob.grid([v.machine for v in variants], schemes, specs))
        # Jobs hold dict-valued configs (unhashable), so results are
        # keyed by their content address.
        results = {job.cache_key(): result
                   for job, result in zip(all_jobs,
                                          self.runner.run_many(all_jobs))}

        return {
            name: self._curves(name, per_axis[name], results)
            for name in names
        }

    # ------------------------------------------------------------------
    def _curves(
        self,
        axis: str,
        variants: list[MachineVariant],
        results: dict[str, object],
    ) -> list[SensitivityCurve]:
        """Assemble the per-(scheme, app) curves of one axis."""
        def cell(machine, scheme, app):
            job = SimJob(
                machine=machine, scheme=scheme,
                workload=WorkloadSpec(app, seed=self.seed, scale=self.scale))
            return results[job.cache_key()]

        curves = []
        for scheme in self.schemes:
            for app in self.apps:
                points = []
                for variant in variants:
                    tls = cell(variant.machine, scheme, app)
                    seq = cell(variant.machine, None, app)
                    points.append(SweepPoint(
                        axis=axis,
                        label=variant.label,
                        machine_name=variant.machine.name,
                        scheme_name=scheme.name,
                        app=app,
                        tls_cycles=tls.total_cycles,
                        seq_cycles=seq.total_cycles,
                        violation_events=tls.violation_events,
                        squashed_executions=tls.squashed_executions,
                        overflow_spills=tls.traffic.overflow_spills,
                        peak_overflow_lines=tls.peak_overflow_lines,
                    ))
                curves.append(SensitivityCurve(
                    axis=axis, scheme_name=scheme.name, app=app,
                    points=tuple(points)))
        return curves
