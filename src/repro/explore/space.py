"""Parameterized machine derivation: the axes of the design space.

The paper evaluates two fixed machines (plus the single enlarged-L2
point of Figure 10). This module turns :class:`~repro.core.config.\
MachineConfig` into a *space*: a set of named axes — L2 size and
associativity, processor count, overflow-area capacity, network hop
latency, squash and commit cost multipliers — each of which derives
config variants from a base machine.

Derived configs are cache-key-safe by construction: a variant's name is
the deterministic ``"{base}~{axis}={label}"`` and its full config enters
the :meth:`~repro.runner.jobs.SimJob.identity` hash, so two identical
derivations share one cache entry and any parameter change misses.
Deriving an axis's *base* value returns the base config unchanged (same
name, same object), so exploration runs share cache entries with the
figure and report pipelines wherever the grids overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.core.config import (
    MACHINES,
    NUMA_16,
    CacheGeometry,
    CostModel,
    MachineConfig,
    scaled_machine,
)
from repro.errors import ConfigurationError


def _fmt_bytes(n: int) -> str:
    """``262144`` -> ``"256K"``, ``4194304`` -> ``"4M"``."""
    if n % (1024 * 1024) == 0:
        return f"{n // (1024 * 1024)}M"
    if n % 1024 == 0:
        return f"{n // 1024}K"
    return str(n)


def _scale_int(value: int, factor: float) -> int:
    """An integer cost knob scaled by ``factor`` (floor at 1 cycle)."""
    return max(1, round(value * factor))


def _scale_hop_table(table: dict[int, int], factor: float) -> dict[int, int]:
    """Scale the hop-distance-dependent part of a latency table.

    The local (0-hop) latency is the node's own memory pipeline and does
    not change with the network; only the per-hop network contribution is
    multiplied.
    """
    local = table[0]
    return {hop: local + max(0, round((lat - local) * factor))
            for hop, lat in table.items()}


@dataclass(frozen=True)
class Axis:
    """One named direction of the design space.

    ``derive(base, value)`` builds the raw variant config (naming is
    handled by :class:`ParamSpace`); ``base_value(base)`` reports the
    value at which the axis leaves ``base`` untouched; ``label(value)``
    is the short, deterministic display/name token of a value.
    """

    name: str
    description: str
    values: tuple[Any, ...]
    derive: Callable[[MachineConfig, Any], MachineConfig]
    base_value: Callable[[MachineConfig], Any]
    label: Callable[[Any], str]

    def sort_key(self, value: Any) -> float:
        """Ordering key for response curves; ``None`` sorts last."""
        return float("inf") if value is None else float(value)


def _derive_l2_size(base: MachineConfig, size: int) -> MachineConfig:
    return base.with_l2(CacheGeometry(size_bytes=size, assoc=base.l2.assoc))


def _derive_l2_assoc(base: MachineConfig, assoc: int) -> MachineConfig:
    return base.with_l2(
        CacheGeometry(size_bytes=base.l2.size_bytes, assoc=assoc))


def _derive_n_procs(base: MachineConfig, n: int) -> MachineConfig:
    return scaled_machine(base, n)


def _derive_overflow(base: MachineConfig, cap: int | None) -> MachineConfig:
    return base.with_costs(replace(base.costs, overflow_capacity_lines=cap))


def _derive_hop_latency(base: MachineConfig, factor: float) -> MachineConfig:
    return replace(
        base,
        lat_memory_by_hops=_scale_hop_table(base.lat_memory_by_hops, factor),
        lat_remote_cache_by_hops=_scale_hop_table(
            base.lat_remote_cache_by_hops, factor),
    )


def _derive_squash_cost(base: MachineConfig, factor: float) -> MachineConfig:
    costs = base.costs
    return base.with_costs(replace(
        costs,
        squash_fixed=_scale_int(costs.squash_fixed, factor),
        amm_invalidate_per_line=costs.amm_invalidate_per_line * factor,
    ))


def _derive_commit_cost(base: MachineConfig, factor: float) -> MachineConfig:
    costs = base.costs
    return base.with_costs(replace(
        costs,
        commit_writeback_per_line=_scale_int(
            costs.commit_writeback_per_line, factor),
        token_pass=_scale_int(costs.token_pass, factor),
        final_merge_per_line=_scale_int(costs.final_merge_per_line, factor),
        orb_request_per_line=_scale_int(costs.orb_request_per_line, factor),
    ))


def _mult_label(factor: float) -> str:
    return f"{factor:g}x"


#: The named axes of the design space, in presentation order.
AXES: dict[str, Axis] = {
    axis.name: axis
    for axis in (
        Axis(
            name="l2_size",
            description="Per-processor L2 capacity (associativity kept)",
            values=(256 * 1024, 512 * 1024, 1024 * 1024,
                    2 * 1024 * 1024, 4 * 1024 * 1024),
            derive=_derive_l2_size,
            base_value=lambda base: base.l2.size_bytes,
            label=_fmt_bytes,
        ),
        Axis(
            name="l2_assoc",
            description="Per-processor L2 associativity (capacity kept)",
            values=(1, 2, 4, 8, 16),
            derive=_derive_l2_assoc,
            base_value=lambda base: base.l2.assoc,
            label=lambda v: f"{v}way",
        ),
        Axis(
            name="n_procs",
            description="Processor count (mesh regrown, latencies "
                        "extrapolated to the new diameter)",
            values=(2, 4, 8, 16, 32),
            derive=_derive_n_procs,
            base_value=lambda base: base.n_procs,
            label=lambda v: f"{v}p",
        ),
        Axis(
            name="overflow_capacity",
            description="Per-processor overflow-area reservation in lines "
                        "(None = the paper's unbounded area)",
            values=(2, 4, 8, 16, 64, None),
            derive=_derive_overflow,
            base_value=lambda base: base.costs.overflow_capacity_lines,
            label=lambda v: "unbounded" if v is None else str(v),
        ),
        Axis(
            name="hop_latency",
            description="Multiplier on the network (non-local) part of "
                        "every hop latency",
            values=(0.5, 1.0, 2.0, 4.0),
            derive=_derive_hop_latency,
            base_value=lambda base: 1.0,
            label=_mult_label,
        ),
        Axis(
            name="squash_cost",
            description="Multiplier on squash recovery costs "
                        "(fixed trap + per-line invalidation)",
            values=(0.5, 1.0, 2.0, 4.0),
            derive=_derive_squash_cost,
            base_value=lambda base: 1.0,
            label=_mult_label,
        ),
        Axis(
            name="commit_cost",
            description="Multiplier on commit-side costs (write-backs, "
                        "token pass, final merge, ORB requests)",
            values=(0.5, 1.0, 2.0, 4.0),
            derive=_derive_commit_cost,
            base_value=lambda base: 1.0,
            label=_mult_label,
        ),
    )
}


@dataclass(frozen=True)
class MachineVariant:
    """One derived point on one axis: the value, its label, the config."""

    axis: str
    value: Any
    label: str
    machine: MachineConfig
    #: True when this variant *is* the base machine (axis at base value).
    is_base: bool


class ParamSpace:
    """A base machine plus the axes along which it is varied.

    >>> space = ParamSpace(NUMA_16, axes=("l2_size",))
    >>> [v.label for v in space.variants("l2_size")]
    ['256K', '512K', '1M', '2M', '4M']

    Variant names are deterministic (``"CC-NUMA-16~l2_size=1M"``), so
    identical derivations hash to identical
    :meth:`~repro.runner.jobs.SimJob.cache_key` values.
    """

    def __init__(self, base: MachineConfig = NUMA_16,
                 axes: tuple[str, ...] | list[str] | None = None) -> None:
        self.base = base
        names = list(axes) if axes is not None else list(AXES)
        unknown = [n for n in names if n not in AXES]
        if unknown:
            raise ConfigurationError(
                f"unknown axis/axes: {', '.join(unknown)}; "
                f"known: {', '.join(AXES)}")
        self.axes: dict[str, Axis] = {n: AXES[n] for n in names}

    def axis(self, name: str) -> Axis:
        """The axis registered under ``name`` in this space."""
        if name not in self.axes:
            raise ConfigurationError(
                f"axis {name!r} is not part of this space; "
                f"available: {', '.join(self.axes)}")
        return self.axes[name]

    def variant(self, axis_name: str, value: Any) -> MachineVariant:
        """Derive one point: ``base`` varied along ``axis_name``.

        Deriving the axis's base value returns the base config itself
        (same name), so those runs share cache entries with every other
        pipeline that simulates the base machine.
        """
        axis = self.axis(axis_name)
        if value == axis.base_value(self.base):
            return MachineVariant(axis=axis.name, value=value,
                                  label=axis.label(value),
                                  machine=self.base, is_base=True)
        label = axis.label(value)
        machine = replace(axis.derive(self.base, value),
                          name=f"{self.base.name}~{axis.name}={label}")
        return MachineVariant(axis=axis.name, value=value, label=label,
                              machine=machine, is_base=False)

    def variants(self, axis_name: str,
                 values: tuple[Any, ...] | None = None,
                 ) -> list[MachineVariant]:
        """Every point of one axis, in response-curve order."""
        axis = self.axis(axis_name)
        chosen = axis.values if values is None else tuple(values)
        ordered = sorted(chosen, key=axis.sort_key)
        return [self.variant(axis_name, value) for value in ordered]

    def all_variants(self) -> list[MachineVariant]:
        """Every point of every axis in this space (axes in order)."""
        return [variant
                for name in self.axes
                for variant in self.variants(name)]


def machine_registry(base: MachineConfig = NUMA_16) -> dict[str, MachineConfig]:
    """Preset machines plus every derived explore variant of ``base``.

    Used by ``repro-tls list`` to print the full registry; base-valued
    variants are skipped (they are the presets themselves).
    """
    registry: dict[str, MachineConfig] = dict(MACHINES)
    for variant in ParamSpace(base).all_variants():
        if not variant.is_base:
            registry[variant.machine.name] = variant.machine
    return registry


def describe_machine(machine: MachineConfig) -> str:
    """One-line geometry and latency summary for the registry listing."""
    if machine.mesh_side is not None:
        net = f"mesh {machine.mesh_side}x{machine.mesh_side}"
    else:
        net = "crossbar"
    mem = machine.lat_memory_by_hops
    mem_span = (f"{mem[0]}" if len(set(mem.values())) == 1
                else f"{mem[0]}..{mem[max(mem)]}")
    cap = machine.costs.overflow_capacity_lines
    overflow = "" if cap is None else f"  overflow {cap} lines"
    return (f"{machine.n_procs:>2} procs  {net:<9}  "
            f"L2 {_fmt_bytes(machine.l2.size_bytes)}/"
            f"{machine.l2.assoc}-way  mem {mem_span}{overflow}")
