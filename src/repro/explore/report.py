"""Design-space exploration report: ``repro-tls explore``.

Drives the :class:`~repro.explore.sweep.SensitivitySweep` over the
requested axes, answers the two wired Section 7.3 crossover questions,
classifies the taxonomy's complexity/performance Pareto frontier, and
renders everything under ``docs/report/``:

* ``explore.md`` / ``explore.html`` — response-curve tables, crossover
  findings, and the per-app frontier classification.
* ``sensitivity_<axis>_<app>.svg`` — one line chart per (axis, app),
  one colored line per scheme, normalized to each variant's sequential
  baseline.

Like the main report the output is deterministic — no timestamps, fixed
float formatting — so a warm-cache rebuild is byte-identical.
"""

from __future__ import annotations

import html as _html
from pathlib import Path

from repro.analysis.svgplot import LineSeries, render_line_chart_svg
from repro.core.config import MACHINES, MachineConfig
from repro.core.engine import ENGINE_VERSION
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_FMM,
    MULTI_T_MV_LAZY,
    SINGLE_T_EAGER,
)
from repro.explore.crossover import (
    CrossoverResult,
    lazy_l2_crossover,
    mv_gain_saturation,
)
from repro.explore.pareto import frontier_for
from repro.explore.space import AXES, ParamSpace
from repro.explore.sweep import SensitivityCurve, SensitivitySweep
from repro.obs.report import _CSS, DEFAULT_REPORT_DIR, html_table, md_table
from repro.runner import ResultCache, SweepRunner

#: Schemes the exploration sweeps: the taxonomy's complexity ladder from
#: no-support SingleT Eager up to full FMM.
EXPLORE_SCHEMES = (SINGLE_T_EAGER, MULTI_T_MV_EAGER, MULTI_T_MV_LAZY,
                   MULTI_T_MV_FMM)

#: Smoke configuration: the two apps where the paper's axis effects are
#: strongest (P3m buffer pressure, Euler squashes) and the three axes the
#: acceptance gate requires curves for.
SMOKE_APPS = ("P3m", "Euler")
SMOKE_AXES = ("l2_size", "n_procs", "overflow_capacity")

#: Full-run defaults: every axis, the smoke apps plus a priv-heavy one.
FULL_APPS = ("P3m", "Euler", "Apsi")


def _curve_table(curves: list[SensitivityCurve], app: str,
                 ) -> tuple[list[str], list[list[str]]]:
    """Header and rows of one axis/app response table."""
    app_curves = [c for c in curves if c.app == app]
    header = ["Scheme"] + list(app_curves[0].labels)
    rows = [
        [curve.scheme_name] + [f"{t:.3f}" for t in curve.norm_times]
        for curve in app_curves
    ]
    # Squash and overflow-pressure context rows, from the scheme most
    # exposed to buffer pressure (MultiT&MV Eager when swept).
    context = next(
        (c for c in app_curves
         if c.scheme_name == MULTI_T_MV_EAGER.name), app_curves[0])
    rows.append([f"squash events ({context.scheme_name})"]
                + [str(p.violation_events) for p in context.points])
    rows.append([f"overflow spills ({context.scheme_name})"]
                + [str(p.overflow_spills) for p in context.points])
    return header, rows


def _curve_svg(curves: list[SensitivityCurve], axis: str, app: str) -> str:
    """The line chart of one (axis, app): one series per scheme."""
    app_curves = [c for c in curves if c.app == app]
    series = [LineSeries(label=c.scheme_name, values=c.norm_times)
              for c in app_curves]
    return render_line_chart_svg(
        series, list(app_curves[0].labels),
        f"{app} — sensitivity to {axis}",
    )


def _crossover_rows(result: CrossoverResult) -> list[list[str]]:
    """Probe-history rows of one crossover/saturation search."""
    return [[label, f"{metric:.4f}"] for label, metric in result.history]


def _crossover_summary(name: str, result: CrossoverResult,
                       criterion: str) -> str:
    """One finding line: what was searched, what was found."""
    if result.found:
        return (f"**{name}**: {criterion} first satisfied at "
                f"**{result.label}** (metric {result.metric:.4f}, "
                f"{result.evaluations} probes).")
    return (f"**{name}**: {criterion} not reached within the candidate "
            f"grid (best probe {result.label}, metric "
            f"{result.metric:.4f}, {result.evaluations} probes).")


def _pareto_rows(points) -> list[list[str]]:
    """Table rows of one app's Pareto classification."""
    return [
        [p.scheme_name, str(p.complexity), f"{p.norm_time:.3f}",
         "frontier" if p.on_frontier else
         "dominated by " + ", ".join(p.dominated_by)]
        for p in points
    ]


_PARETO_HEADER = ["Scheme", "Complexity", "Norm. time", "Status"]


def build_explore(
    out_dir: str | Path = DEFAULT_REPORT_DIR,
    *,
    scale: float = 1.0,
    seed: int = 0,
    jobs: int | None = None,
    cache: bool = True,
    smoke: bool = False,
    base: MachineConfig | None = None,
    apps: tuple[str, ...] | None = None,
    axes: tuple[str, ...] | None = None,
) -> dict[str, Path]:
    """Run the exploration and write the report; returns output paths.

    ``smoke`` selects the CI configuration (two apps, the three
    acceptance axes); explicit ``apps``/``axes`` override either preset.
    All simulations ride the shared result cache, so a warm rerun is
    replay + rendering and reproduces the files byte for byte.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    base = base if base is not None else MACHINES["numa16"]
    apps = apps if apps is not None else (SMOKE_APPS if smoke else FULL_APPS)
    axes = axes if axes is not None else (
        SMOKE_AXES if smoke else tuple(AXES))

    runner = SweepRunner(jobs=jobs, cache=ResultCache() if cache else None)
    space = ParamSpace(base, axes=axes)
    sweep = SensitivitySweep(space, EXPLORE_SCHEMES, apps,
                             scale=scale, seed=seed, runner=runner)
    curves_by_axis = sweep.run()

    lazy_l2 = lazy_l2_crossover(runner=runner, base=base, scale=scale,
                                seed=seed)
    mv_sat = mv_gain_saturation(runner=runner, base=base, scale=scale,
                                seed=seed)
    frontier = frontier_for(base, apps, runner=runner, scale=scale,
                            seed=seed)

    svgs: dict[str, str] = {}
    for axis, curves in curves_by_axis.items():
        for app in apps:
            svgs[f"sensitivity_{axis}_{app}.svg"] = _curve_svg(
                curves, axis, app)
    for name, svg in svgs.items():
        (out / name).write_text(svg + "\n")

    params_rows = [
        ["Engine version", ENGINE_VERSION],
        ["Base machine", base.name],
        ["Workload scale", f"{scale:g}"],
        ["Workload seed", str(seed)],
        ["Axes", ", ".join(axes)],
        ["Schemes", ", ".join(s.name for s in EXPLORE_SCHEMES)],
        ["Applications", ", ".join(apps)],
    ]

    crossover_lines = [
        _crossover_summary(
            "Lazy.L2 crossover (P3m)", lazy_l2,
            "Lazy AMM within 5% of FMM (gap = lazy/fmm − 1 ≤ 0.05)"),
        _crossover_summary(
            "MultiT&MV saturation (P3m)", mv_sat,
            "marginal improvement of MV/SingleT time ratio < 5% "
            "per processor-count step"),
    ]

    sections_md = [
        "# Design-space exploration — TLS buffering (HPCA 2003)",
        "",
        "Generated by `repro-tls explore`. Sensitivity of the taxonomy "
        "to the machine parameters the paper holds fixed, plus the "
        "complexity/performance Pareto frontier. Every number comes "
        "from seeded, deterministic simulations; a warm-cache rebuild "
        "is byte-identical.",
        "",
        md_table(["Parameter", "Value"], params_rows),
        "",
        "## Crossover findings (Section 7.3 questions)",
        "",
        "\n".join(f"- {line}" for line in crossover_lines),
        "",
        "Probe history (Lazy.L2 gap by L2 size):",
        "",
        md_table(["L2 size", "gap (lazy/fmm − 1)"],
                 _crossover_rows(lazy_l2)),
        "",
        "Probe history (MV/SingleT time ratio by processor count):",
        "",
        md_table(["Processors", "MV / SingleT time"],
                 _crossover_rows(mv_sat)),
        "",
    ]
    html_body = [
        "<h1>Design-space exploration — TLS buffering (HPCA 2003)</h1>",
        '<p class="small">Generated by <code>repro-tls explore</code>. '
        "Sensitivity of the taxonomy to the machine parameters the paper "
        "holds fixed, plus the complexity/performance Pareto frontier. "
        "Deterministic: a warm-cache rebuild is byte-identical.</p>",
        html_table(["Parameter", "Value"], params_rows),
        "<h2>Crossover findings (Section 7.3 questions)</h2>",
        "<ul>" + "".join(
            f"<li>{_html.escape(line).replace('**', '')}</li>"
            for line in crossover_lines) + "</ul>",
        "<p>Probe history (Lazy.L2 gap by L2 size):</p>",
        html_table(["L2 size", "gap (lazy/fmm − 1)"],
                   _crossover_rows(lazy_l2)),
        "<p>Probe history (MV/SingleT time ratio by processor count):</p>",
        html_table(["Processors", "MV / SingleT time"],
                   _crossover_rows(mv_sat)),
    ]

    for axis in axes:
        curves = curves_by_axis[axis]
        sections_md.extend([
            f"## Sensitivity — {axis}",
            "",
            AXES[axis].description + ".",
            "",
        ])
        html_body.append(f"<h2>Sensitivity — {_html.escape(axis)}</h2>")
        html_body.append(
            f'<p class="small">{_html.escape(AXES[axis].description)}.</p>')
        for app in apps:
            name = f"sensitivity_{axis}_{app}.svg"
            header, rows = _curve_table(curves, app)
            sections_md.extend([
                f"### {app}",
                "",
                f"![{axis} sensitivity, {app}]({name})",
                "",
                md_table(header, rows),
                "",
            ])
            html_body.append(f"<h3>{_html.escape(app)}</h3>")
            html_body.append(f"<figure>{svgs[name]}</figure>")
            html_body.append(html_table(header, rows))

    sections_md.extend([
        f"## Pareto frontier — complexity vs time on {base.name}",
        "",
        "Complexity is the Section 3.3.5 hardware-support score "
        "(Tables 1 and 2); time is normalized to the sequential "
        "baseline. A scheme is on the frontier when no other evaluated "
        "scheme is at least as simple *and* at least as fast.",
        "",
    ])
    html_body.append(
        f"<h2>Pareto frontier — complexity vs time on "
        f"{_html.escape(base.name)}</h2>")
    html_body.append(
        '<p class="small">Complexity is the Section 3.3.5 '
        "hardware-support score (Tables 1 and 2); time is normalized to "
        "the sequential baseline.</p>")
    for app in apps:
        rows = _pareto_rows(frontier[app])
        sections_md.extend([
            f"### {app}",
            "",
            md_table(_PARETO_HEADER, rows),
            "",
        ])
        html_body.append(f"<h3>{_html.escape(app)}</h3>")
        html_body.append(html_table(_PARETO_HEADER, rows))

    (out / "explore.md").write_text("\n".join(sections_md))
    html_doc = (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        "<title>TLS buffering design-space exploration</title>\n"
        f"<style>{_CSS}</style></head>\n<body>\n"
        + "\n".join(html_body)
        + "\n</body></html>\n"
    )
    (out / "explore.html").write_text(html_doc)

    return {
        "html": out / "explore.html",
        "markdown": out / "explore.md",
        **{name: out / name for name in sorted(svgs)},
    }
