"""JSON serialization of workloads and results.

Lets users archive runs, diff reproductions across machines, or feed the
measurements into external tooling. Workloads round-trip exactly;
results serialize the measured quantities (the full memory image is
optional, as it can be megabytes for large runs).
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.results import SimulationResult
from repro.core.taxonomy import scheme_from_name
from repro.errors import WorkloadError
from repro.processor.processor import CycleCategory
from repro.tls.task import TaskSpec
from repro.workloads.base import Workload

_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def workload_to_dict(workload: Workload) -> dict[str, Any]:
    """A JSON-ready representation of a workload (exact round-trip)."""
    return {
        "format": _FORMAT_VERSION,
        "name": workload.name,
        "description": workload.description,
        "priv_base": workload.priv_predicate_base,
        "priv_limit": workload.priv_predicate_limit,
        "tasks": [
            {"id": task.task_id, "ops": [list(op) for op in task.ops]}
            for task in workload.tasks
        ],
    }


def workload_from_dict(data: dict[str, Any]) -> Workload:
    """Rebuild a workload serialized by :func:`workload_to_dict`."""
    if data.get("format") != _FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported workload format {data.get('format')!r}")
    tasks = tuple(
        TaskSpec(task_id=t["id"],
                 ops=tuple((kind, value) for kind, value in t["ops"]))
        for t in data["tasks"]
    )
    return Workload(
        name=data["name"],
        tasks=tasks,
        priv_predicate_base=data["priv_base"],
        priv_predicate_limit=data["priv_limit"],
        description=data.get("description", ""),
    )


def save_workload(workload: Workload, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(workload_to_dict(workload), handle)


def load_workload(path: str) -> Workload:
    with open(path) as handle:
        return workload_from_dict(json.load(handle))


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def result_to_dict(result: SimulationResult,
                   include_image: bool = False) -> dict[str, Any]:
    """A JSON-ready representation of a simulation result.

    ``include_image`` adds the word -> producer memory image (large).
    """
    data: dict[str, Any] = {
        "format": _FORMAT_VERSION,
        "scheme": result.scheme.name,
        "machine": result.machine_name,
        "workload": result.workload_name,
        "n_procs": result.n_procs,
        "n_tasks": result.n_tasks,
        "total_cycles": result.total_cycles,
        "cycles_by_category": {
            category.value: cycles
            for category, cycles in result.cycles_by_category.items()
        },
        "violation_events": result.violation_events,
        "squashed_executions": result.squashed_executions,
        "token_hold_cycles": result.token_hold_cycles,
        "avg_spec_tasks_in_system": result.avg_spec_tasks_in_system,
        "avg_written_footprint_bytes": result.avg_written_footprint_bytes,
        "priv_footprint_fraction": result.priv_footprint_fraction,
        "commit_exec_ratio": result.commit_exec_ratio(),
        "busy_fraction": result.busy_fraction(),
        "peak_overflow_lines": result.peak_overflow_lines,
        "peak_undolog_entries": result.peak_undolog_entries,
        "wasted_busy_cycles": result.wasted_busy_cycles,
        "l2_hit_rate": result.l2_hit_rate,
        "traffic": {
            "remote_cache_fetches": result.traffic.remote_cache_fetches,
            "memory_fetches": result.traffic.memory_fetches,
            "line_writebacks": result.traffic.line_writebacks,
            "vcl_merges": result.traffic.vcl_merges,
            "overflow_spills": result.traffic.overflow_spills,
            "overflow_fetches": result.traffic.overflow_fetches,
        },
    }
    if include_image:
        data["memory_image"] = {
            str(word): producer
            for word, producer in result.memory_image.items()
        }
    return data


def result_summary_from_dict(data: dict[str, Any]) -> dict[str, Any]:
    """Validate and normalize a serialized result for external analysis.

    Returns a flat summary dict with the scheme resolved back to its
    taxonomy object and category names validated.
    """
    if data.get("format") != _FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported result format {data.get('format')!r}")
    known = {c.value for c in CycleCategory}
    unknown = set(data["cycles_by_category"]) - known
    if unknown:
        raise WorkloadError(f"unknown cycle categories: {sorted(unknown)}")
    return {
        "scheme": scheme_from_name(data["scheme"]),
        "machine": data["machine"],
        "workload": data["workload"],
        "total_cycles": float(data["total_cycles"]),
        "busy_fraction": float(data["busy_fraction"]),
        "violation_events": int(data["violation_events"]),
    }


def save_result(result: SimulationResult, path: str,
                include_image: bool = False) -> None:
    with open(path, "w") as handle:
        json.dump(result_to_dict(result, include_image=include_image), handle)
