"""JSON serialization of workloads and results.

Lets users archive runs, diff reproductions across machines, or feed the
measurements into external tooling. Workloads round-trip exactly;
results serialize the measured quantities (the full memory image is
optional, as it can be megabytes for large runs).

``full=True`` serialization round-trips a :class:`SimulationResult`
exactly (every field, including task timings and observed reads); it is
what the on-disk result cache (:mod:`repro.runner.cache`) stores, and
:func:`canonical_result_bytes` derives the deterministic byte form used
to assert that serial, process-pool, and cache-replayed runs agree
bit for bit.
"""

from __future__ import annotations

import json
from typing import Any

from repro.baselines.sequential import SequentialResult
from repro.core.results import SimulationResult, TaskTiming, TrafficStats
from repro.core.taxonomy import scheme_from_name
from repro.errors import WorkloadError
from repro.processor.processor import CycleCategory
from repro.tls.task import TaskSpec
from repro.workloads.base import Workload

_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def workload_to_dict(workload: Workload) -> dict[str, Any]:
    """A JSON-ready representation of a workload (exact round-trip)."""
    return {
        "format": _FORMAT_VERSION,
        "name": workload.name,
        "description": workload.description,
        "priv_base": workload.priv_predicate_base,
        "priv_limit": workload.priv_predicate_limit,
        "tasks": [
            {"id": task.task_id, "ops": [list(op) for op in task.ops]}
            for task in workload.tasks
        ],
    }


def workload_from_dict(data: dict[str, Any]) -> Workload:
    """Rebuild a workload serialized by :func:`workload_to_dict`."""
    if data.get("format") != _FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported workload format {data.get('format')!r}")
    tasks = tuple(
        TaskSpec(task_id=t["id"],
                 ops=tuple((kind, value) for kind, value in t["ops"]))
        for t in data["tasks"]
    )
    return Workload(
        name=data["name"],
        tasks=tasks,
        priv_predicate_base=data["priv_base"],
        priv_predicate_limit=data["priv_limit"],
        description=data.get("description", ""),
    )


def save_workload(workload: Workload, path: str) -> None:
    """Write a workload to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(workload_to_dict(workload), handle)


def load_workload(path: str) -> Workload:
    """Read a workload written by :func:`save_workload`."""
    with open(path) as handle:
        return workload_from_dict(json.load(handle))


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def result_to_dict(result: SimulationResult,
                   include_image: bool = False,
                   full: bool = False) -> dict[str, Any]:
    """A JSON-ready representation of a simulation result.

    ``include_image`` adds the word -> producer memory image (large).
    ``full`` serializes *every* field so :func:`result_from_dict` can
    rebuild the result exactly (implies ``include_image``).
    """
    data: dict[str, Any] = {
        "format": _FORMAT_VERSION,
        "scheme": result.scheme.name,
        "machine": result.machine_name,
        "workload": result.workload_name,
        "n_procs": result.n_procs,
        "n_tasks": result.n_tasks,
        "total_cycles": result.total_cycles,
        "cycles_by_category": {
            category.value: cycles
            for category, cycles in result.cycles_by_category.items()
        },
        "violation_events": result.violation_events,
        "squashed_executions": result.squashed_executions,
        "token_hold_cycles": result.token_hold_cycles,
        "avg_spec_tasks_in_system": result.avg_spec_tasks_in_system,
        "avg_written_footprint_bytes": result.avg_written_footprint_bytes,
        "priv_footprint_fraction": result.priv_footprint_fraction,
        "commit_exec_ratio": result.commit_exec_ratio(),
        "busy_fraction": result.busy_fraction(),
        "peak_overflow_lines": result.peak_overflow_lines,
        "peak_undolog_entries": result.peak_undolog_entries,
        "wasted_busy_cycles": result.wasted_busy_cycles,
        "l2_hit_rate": result.l2_hit_rate,
        "traffic": {
            "remote_cache_fetches": result.traffic.remote_cache_fetches,
            "memory_fetches": result.traffic.memory_fetches,
            "line_writebacks": result.traffic.line_writebacks,
            "vcl_merges": result.traffic.vcl_merges,
            "overflow_spills": result.traffic.overflow_spills,
            "overflow_fetches": result.traffic.overflow_fetches,
        },
        "events_processed": result.events_processed,
        "wall_clock_seconds": result.wall_clock_seconds,
    }
    if include_image or full:
        data["memory_image"] = {
            str(word): producer
            for word, producer in result.memory_image.items()
        }
    if full:
        data["full"] = True
        data["l2_speculative_displacements"] = (
            result.l2_speculative_displacements)
        data["commit_wavefront"] = [
            [tid, start, end] for tid, start, end in result.commit_wavefront
        ]
        data["task_timings"] = [
            [t.task_id, t.proc_id, t.start_time, t.finish_time,
             t.commit_start, t.commit_end, t.squashes]
            for t in result.task_timings
        ]
        data["observed_reads"] = [
            [task, word, producer]
            for (task, word), producer in sorted(
                result.observed_reads.items())
        ]
    return data


def result_from_dict(data: dict[str, Any]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` serialized with ``full=True``."""
    if data.get("format") != _FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported result format {data.get('format')!r}")
    if not data.get("full"):
        raise WorkloadError(
            "result_from_dict needs a full serialization "
            "(result_to_dict(..., full=True))")
    categories = {c.value: c for c in CycleCategory}
    return SimulationResult(
        scheme=scheme_from_name(data["scheme"]),
        machine_name=data["machine"],
        workload_name=data["workload"],
        n_procs=int(data["n_procs"]),
        n_tasks=int(data["n_tasks"]),
        total_cycles=float(data["total_cycles"]),
        cycles_by_category={
            categories[name]: cycles
            for name, cycles in data["cycles_by_category"].items()
        },
        violation_events=int(data["violation_events"]),
        squashed_executions=int(data["squashed_executions"]),
        commit_wavefront=[
            (int(tid), start, end)
            for tid, start, end in data["commit_wavefront"]
        ],
        token_hold_cycles=float(data["token_hold_cycles"]),
        task_timings=[
            TaskTiming(task_id=int(row[0]), proc_id=int(row[1]),
                       start_time=row[2], finish_time=row[3],
                       commit_start=row[4], commit_end=row[5],
                       squashes=int(row[6]))
            for row in data["task_timings"]
        ],
        avg_spec_tasks_in_system=float(data["avg_spec_tasks_in_system"]),
        avg_written_footprint_bytes=float(
            data["avg_written_footprint_bytes"]),
        priv_footprint_fraction=float(data["priv_footprint_fraction"]),
        memory_image={
            int(word): producer
            for word, producer in data["memory_image"].items()
        },
        observed_reads={
            (int(task), int(word)): producer
            for task, word, producer in data["observed_reads"]
        },
        peak_overflow_lines=int(data["peak_overflow_lines"]),
        peak_undolog_entries=int(data["peak_undolog_entries"]),
        wasted_busy_cycles=float(data["wasted_busy_cycles"]),
        l2_hit_rate=float(data["l2_hit_rate"]),
        l2_speculative_displacements=int(
            data["l2_speculative_displacements"]),
        traffic=TrafficStats(**data["traffic"]),
        events_processed=int(data["events_processed"]),
        wall_clock_seconds=float(data["wall_clock_seconds"]),
    )


def canonical_result_bytes(result: SimulationResult) -> bytes:
    """Deterministic byte form of a result (for determinism checks).

    Serializes the full result with sorted keys and drops the fields that
    measure the *host* rather than the simulated machine
    (``wall_clock_seconds``); two runs of the same job are bit-identical
    under this form no matter how (or where) they executed.
    """
    data = result_to_dict(result, full=True)
    del data["wall_clock_seconds"]
    return json.dumps(data, sort_keys=True).encode()


# ----------------------------------------------------------------------
# Sequential-baseline results
# ----------------------------------------------------------------------
def sequential_result_to_dict(result: SequentialResult) -> dict[str, Any]:
    """A JSON-ready (exact round-trip) sequential-baseline result."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "sequential",
        "workload": result.workload_name,
        "machine": result.machine_name,
        "total_cycles": result.total_cycles,
        "busy_cycles": result.busy_cycles,
        "memory_cycles": result.memory_cycles,
        "memory_image": {
            str(word): producer
            for word, producer in result.memory_image.items()
        },
    }


def sequential_result_from_dict(data: dict[str, Any]) -> SequentialResult:
    """Rebuild a :func:`sequential_result_to_dict` serialization."""
    if data.get("format") != _FORMAT_VERSION or data.get("kind") != "sequential":
        raise WorkloadError(
            f"unsupported sequential-result payload "
            f"(format {data.get('format')!r}, kind {data.get('kind')!r})")
    return SequentialResult(
        workload_name=data["workload"],
        machine_name=data["machine"],
        total_cycles=float(data["total_cycles"]),
        busy_cycles=float(data["busy_cycles"]),
        memory_cycles=float(data["memory_cycles"]),
        memory_image={
            int(word): producer
            for word, producer in data["memory_image"].items()
        },
    )


def result_summary_from_dict(data: dict[str, Any]) -> dict[str, Any]:
    """Validate and normalize a serialized result for external analysis.

    Returns a flat summary dict with the scheme resolved back to its
    taxonomy object and category names validated.
    """
    if data.get("format") != _FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported result format {data.get('format')!r}")
    known = {c.value for c in CycleCategory}
    unknown = set(data["cycles_by_category"]) - known
    if unknown:
        raise WorkloadError(f"unknown cycle categories: {sorted(unknown)}")
    return {
        "scheme": scheme_from_name(data["scheme"]),
        "machine": data["machine"],
        "workload": data["workload"],
        "total_cycles": float(data["total_cycles"]),
        "busy_fraction": float(data["busy_fraction"]),
        "violation_events": int(data["violation_events"]),
    }


def save_result(result: SimulationResult, path: str,
                include_image: bool = False) -> None:
    """Write a result to ``path`` as JSON (optionally with the workload)."""
    with open(path, "w") as handle:
        json.dump(result_to_dict(result, include_image=include_image), handle)
