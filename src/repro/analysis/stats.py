"""Cross-run statistics: seed sweeps and robustness summaries.

The paper reports single-run numbers from deterministic simulation; this
module adds the machinery a reproduction needs to show its conclusions are
not artifacts of one generated reference stream — run the same experiment
across several workload seeds and summarize the spread.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.config import MachineConfig
from repro.core.engine import simulate
from repro.core.results import SimulationResult
from repro.core.taxonomy import Scheme
from repro.errors import ConfigurationError
from repro.workloads.apps import generate_workload


@dataclass(frozen=True)
class SampleStats:
    """Mean / spread summary of one measured quantity across seeds."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError("SampleStats needs at least one value")

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n

    @property
    def std(self) -> float:
        """Sample standard deviation (0 for a single value)."""
        if self.n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((v - mean) ** 2 for v in self.values)
                         / (self.n - 1))

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    def all_positive(self) -> bool:
        """True when every sample is strictly positive."""
        return all(v > 0 for v in self.values)

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f} (n={self.n})"


def seed_sweep(machine: MachineConfig, scheme: Scheme, app: str,
               seeds: Sequence[int], *, scale: float = 1.0,
               ) -> list[SimulationResult]:
    """Simulate one (machine, scheme, app) across several workload seeds."""
    if not seeds:
        raise ConfigurationError("seed_sweep needs at least one seed")
    return [
        simulate(machine, scheme, generate_workload(app, seed=seed,
                                                    scale=scale))
        for seed in seeds
    ]


def metric_over_seeds(results: Iterable[SimulationResult],
                      metric: Callable[[SimulationResult], float],
                      ) -> SampleStats:
    """Collect one metric across a seed sweep."""
    return SampleStats(values=tuple(metric(r) for r in results))


def reduction_over_seeds(machine: MachineConfig, faster: Scheme,
                         reference: Scheme, app: str, seeds: Sequence[int],
                         *, scale: float = 1.0) -> SampleStats:
    """Per-seed relative execution-time reduction of ``faster`` vs
    ``reference`` — the quantity behind every headline claim."""
    fast_runs = seed_sweep(machine, faster, app, seeds, scale=scale)
    ref_runs = seed_sweep(machine, reference, app, seeds, scale=scale)
    values = tuple(
        1.0 - fast.total_cycles / ref.total_cycles
        for fast, ref in zip(fast_runs, ref_runs)
    )
    return SampleStats(values=values)
