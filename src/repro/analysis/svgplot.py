"""Self-contained SVG rendering of the reproduced figures.

The benchmark outputs are plain text; this module additionally renders the
stacked-bar figures (9, 10, 11) as standalone SVG files — no plotting
library required — so the reproduction can ship paper-style artifacts.

The layout mirrors the paper's figures: one group of bars per application,
bars split into a busy (solid) and stall (hatched-light) segment, heights
proportional to normalized execution time, speedups printed above.
"""

from __future__ import annotations

import html
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Colors chosen for print-friendliness (dark busy, light stall).
BUSY_COLOR = "#26547c"
STALL_COLOR = "#b8d0e8"
AXIS_COLOR = "#444444"
TEXT_COLOR = "#222222"


@dataclass(frozen=True)
class SvgBar:
    """One stacked bar: normalized height split into busy and stall."""

    label: str
    normalized: float
    busy_fraction: float
    annotation: str = ""

    def __post_init__(self) -> None:
        if self.normalized < 0:
            raise ConfigurationError(
                f"bar {self.label!r} has negative height")
        if not 0.0 <= self.busy_fraction <= 1.0:
            raise ConfigurationError(
                f"bar {self.label!r} busy fraction outside [0, 1]")


def render_grouped_bars_svg(
    groups: dict[str, list[SvgBar]],
    title: str,
    *,
    bar_width: int = 18,
    bar_gap: int = 4,
    group_gap: int = 30,
    plot_height: int = 260,
) -> str:
    """Render groups of stacked bars as a standalone SVG document."""
    if not groups:
        raise ConfigurationError("no bar groups to render")
    peak = max(
        (bar.normalized for bars in groups.values() for bar in bars),
        default=1.0,
    )
    peak = max(peak, 1e-9)

    margin_left = 48
    margin_top = 48
    margin_bottom = 96
    x = margin_left
    elements: list[str] = []
    baseline = margin_top + plot_height

    def esc(text: str) -> str:
        return html.escape(text, quote=True)

    for group_name, bars in groups.items():
        group_start = x
        for bar in bars:
            height = plot_height * bar.normalized / peak
            busy_height = height * bar.busy_fraction
            stall_height = height - busy_height
            top = baseline - height
            # Stall segment sits on top of the busy segment (paper style:
            # busy at the bottom of the bar).
            elements.append(
                f'<rect x="{x}" y="{top:.1f}" width="{bar_width}" '
                f'height="{stall_height:.1f}" fill="{STALL_COLOR}" '
                f'stroke="{AXIS_COLOR}" stroke-width="0.5"/>'
            )
            elements.append(
                f'<rect x="{x}" y="{top + stall_height:.1f}" '
                f'width="{bar_width}" height="{busy_height:.1f}" '
                f'fill="{BUSY_COLOR}" stroke="{AXIS_COLOR}" '
                f'stroke-width="0.5"/>'
            )
            if bar.annotation:
                elements.append(
                    f'<text x="{x + bar_width / 2:.1f}" y="{top - 4:.1f}" '
                    f'font-size="8" text-anchor="middle" '
                    f'fill="{TEXT_COLOR}">{esc(bar.annotation)}</text>'
                )
            elements.append(
                f'<text x="{x + bar_width / 2:.1f}" y="{baseline + 10}" '
                f'font-size="7" text-anchor="end" fill="{TEXT_COLOR}" '
                f'transform="rotate(-55 {x + bar_width / 2:.1f} '
                f'{baseline + 10})">{esc(bar.label)}</text>'
            )
            x += bar_width + bar_gap
        group_center = (group_start + x - bar_gap) / 2
        elements.append(
            f'<text x="{group_center:.1f}" y="{margin_top - 8}" '
            f'font-size="11" text-anchor="middle" font-weight="bold" '
            f'fill="{TEXT_COLOR}">{esc(group_name)}</text>'
        )
        x += group_gap

    width = x + 8
    height = baseline + margin_bottom

    # Axis with a reference line at 1.0 (the normalization baseline).
    reference_y = baseline - plot_height * 1.0 / peak
    axis = [
        f'<line x1="{margin_left - 6}" y1="{baseline}" x2="{width - 4}" '
        f'y2="{baseline}" stroke="{AXIS_COLOR}" stroke-width="1"/>',
        f'<line x1="{margin_left - 6}" y1="{reference_y:.1f}" '
        f'x2="{width - 4}" y2="{reference_y:.1f}" stroke="{AXIS_COLOR}" '
        f'stroke-width="0.5" stroke-dasharray="4 3"/>',
        f'<text x="{margin_left - 10}" y="{reference_y + 3:.1f}" '
        f'font-size="8" text-anchor="end" fill="{TEXT_COLOR}">1.0</text>',
        f'<text x="{margin_left - 10}" y="{baseline + 3}" font-size="8" '
        f'text-anchor="end" fill="{TEXT_COLOR}">0</text>',
    ]

    legend_y = height - 40
    legend = [
        f'<rect x="{margin_left}" y="{legend_y}" width="10" height="10" '
        f'fill="{BUSY_COLOR}"/>',
        f'<text x="{margin_left + 14}" y="{legend_y + 9}" font-size="9" '
        f'fill="{TEXT_COLOR}">busy</text>',
        f'<rect x="{margin_left + 60}" y="{legend_y}" width="10" '
        f'height="10" fill="{STALL_COLOR}" stroke="{AXIS_COLOR}" '
        f'stroke-width="0.5"/>',
        f'<text x="{margin_left + 74}" y="{legend_y + 9}" font-size="9" '
        f'fill="{TEXT_COLOR}">stall</text>',
    ]

    return "\n".join([
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{margin_left}" y="16" font-size="12" font-weight="bold" '
        f'fill="{TEXT_COLOR}">{esc(title)}</text>',
        *axis,
        *elements,
        *legend,
        "</svg>",
    ])


#: Print-friendly line colors, cycled by series index.
LINE_COLORS = ("#26547c", "#b42318", "#1a7f37", "#b8860b",
               "#6a3d9a", "#0e7c86", "#874f2c", "#555555")


@dataclass(frozen=True)
class LineSeries:
    """One polyline of a sensitivity chart: a label and its y values."""

    label: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError(
                f"series {self.label!r} has no values")


def render_line_chart_svg(
    series: list[LineSeries],
    x_labels: list[str],
    title: str,
    *,
    y_label: str = "normalized time",
    plot_width: int = 360,
    plot_height: int = 220,
) -> str:
    """Render sensitivity curves as a standalone SVG document.

    Categorical x axis (one tick per axis value, evenly spaced), y from
    zero to the peak value, a dashed reference line at 1.0 (the
    sequential baseline), one colored polyline with point markers per
    series, and a legend. Output is deterministic: fixed float
    formatting, no timestamps.
    """
    if not series:
        raise ConfigurationError("no series to render")
    for s in series:
        if len(s.values) != len(x_labels):
            raise ConfigurationError(
                f"series {s.label!r} has {len(s.values)} values for "
                f"{len(x_labels)} x labels")

    peak = max(max(s.values) for s in series)
    peak = max(peak, 1.0, 1e-9)

    margin_left = 52
    margin_top = 40
    margin_bottom = 40
    baseline = margin_top + plot_height
    n = len(x_labels)
    step = plot_width / max(n - 1, 1)

    def esc(text: str) -> str:
        return html.escape(text, quote=True)

    def x_at(i: int) -> float:
        return margin_left + i * step

    def y_at(value: float) -> float:
        return baseline - plot_height * value / peak

    reference_y = y_at(1.0)
    elements = [
        f'<line x1="{margin_left}" y1="{baseline}" '
        f'x2="{margin_left + plot_width}" y2="{baseline}" '
        f'stroke="{AXIS_COLOR}" stroke-width="1"/>',
        f'<line x1="{margin_left}" y1="{margin_top}" '
        f'x2="{margin_left}" y2="{baseline}" '
        f'stroke="{AXIS_COLOR}" stroke-width="1"/>',
        f'<line x1="{margin_left}" y1="{reference_y:.1f}" '
        f'x2="{margin_left + plot_width}" y2="{reference_y:.1f}" '
        f'stroke="{AXIS_COLOR}" stroke-width="0.5" '
        f'stroke-dasharray="4 3"/>',
        f'<text x="{margin_left - 6}" y="{reference_y + 3:.1f}" '
        f'font-size="8" text-anchor="end" fill="{TEXT_COLOR}">1.0</text>',
        f'<text x="{margin_left - 6}" y="{margin_top + 3}" font-size="8" '
        f'text-anchor="end" fill="{TEXT_COLOR}">{peak:.2f}</text>',
        f'<text x="{margin_left - 6}" y="{baseline + 3}" font-size="8" '
        f'text-anchor="end" fill="{TEXT_COLOR}">0</text>',
        f'<text x="14" y="{margin_top + plot_height / 2:.1f}" '
        f'font-size="9" text-anchor="middle" fill="{TEXT_COLOR}" '
        f'transform="rotate(-90 14 {margin_top + plot_height / 2:.1f})">'
        f'{esc(y_label)}</text>',
    ]
    for i, label in enumerate(x_labels):
        elements.append(
            f'<text x="{x_at(i):.1f}" y="{baseline + 14}" font-size="8" '
            f'text-anchor="middle" fill="{TEXT_COLOR}">{esc(label)}</text>'
        )
        elements.append(
            f'<line x1="{x_at(i):.1f}" y1="{baseline}" x2="{x_at(i):.1f}" '
            f'y2="{baseline + 3}" stroke="{AXIS_COLOR}" stroke-width="1"/>'
        )

    legend_x = margin_left + plot_width + 16
    for idx, s in enumerate(series):
        color = LINE_COLORS[idx % len(LINE_COLORS)]
        points = " ".join(f"{x_at(i):.1f},{y_at(v):.1f}"
                          for i, v in enumerate(s.values))
        elements.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="1.5"/>'
        )
        elements.extend(
            f'<circle cx="{x_at(i):.1f}" cy="{y_at(v):.1f}" r="2.2" '
            f'fill="{color}"/>'
            for i, v in enumerate(s.values)
        )
        legend_y = margin_top + 4 + idx * 14
        elements.append(
            f'<line x1="{legend_x}" y1="{legend_y}" x2="{legend_x + 16}" '
            f'y2="{legend_y}" stroke="{color}" stroke-width="2"/>'
        )
        elements.append(
            f'<text x="{legend_x + 20}" y="{legend_y + 3}" font-size="8" '
            f'fill="{TEXT_COLOR}">{esc(s.label)}</text>'
        )

    width = legend_x + 150
    height = baseline + margin_bottom
    return "\n".join([
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{margin_left}" y="16" font-size="12" font-weight="bold" '
        f'fill="{TEXT_COLOR}">{esc(title)}</text>',
        *elements,
        "</svg>",
    ])


def scheme_bars_to_svg(result, title: str | None = None) -> str:
    """Render a :class:`~repro.analysis.experiments.SchemeBarsResult`.

    One bar group per application, one stacked bar per scheme, speedup
    annotated above each bar — the layout of Figures 9-11.
    """
    groups: dict[str, list[SvgBar]] = {}
    for app, per_scheme in result.cells.items():
        bars = []
        for scheme in result.schemes:
            normalized, busy, speedup = per_scheme[scheme.name]
            bars.append(SvgBar(
                label=scheme.name.replace(" AMM", ""),
                normalized=normalized,
                busy_fraction=busy,
                annotation=f"{speedup:.1f}",
            ))
        groups[app] = bars
    return render_grouped_bars_svg(groups, title or result.title)


def save_svg(svg_text: str, path: str) -> None:
    """Write an SVG document to ``path``."""
    with open(path, "w") as handle:
        handle.write(svg_text + "\n")
