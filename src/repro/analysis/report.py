"""Plain-text rendering of the reproduced tables and figures.

The paper's figures are stacked-bar charts; the harness renders them as
unicode bars (busy portion solid, stall portion shaded) with the same
normalization the paper uses (execution time relative to SingleT Eager AMM,
speedup over sequential printed above each bar). Tables render as aligned
ASCII grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

_BAR_WIDTH = 44
_FULL = "█"
_LIGHT = "░"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)


@dataclass(frozen=True)
class Bar:
    """One stacked bar: normalized length split into busy and stall."""

    label: str
    normalized: float
    busy_fraction: float
    annotation: str = ""


def render_bars(bars: Sequence[Bar], title: str | None = None,
                reference: float = 1.0) -> str:
    """Render stacked bars, scaled so ``reference`` fills the bar width.

    Busy cycles render solid, stalls render shaded — the two-way split of
    Figures 9-11.
    """
    lines = []
    if title:
        lines.append(title)
    if not bars:
        return "\n".join(lines)
    label_w = max(len(b.label) for b in bars)
    peak = max(max(b.normalized for b in bars), reference)
    for bar in bars:
        total_cells = round(_BAR_WIDTH * bar.normalized / peak)
        busy_cells = round(total_cells * bar.busy_fraction)
        stall_cells = total_cells - busy_cells
        body = _FULL * busy_cells + _LIGHT * stall_cells
        lines.append(
            f"{bar.label.ljust(label_w)} |{body.ljust(_BAR_WIDTH)}| "
            f"{bar.normalized:5.2f}  {bar.annotation}"
        )
    lines.append(f"{''.ljust(label_w)}  ({_FULL} busy, {_LIGHT} stall; "
                 f"bar length = time normalized to reference)")
    return "\n".join(lines)


def render_timeline(segments: dict[int, list[tuple[str, float, float]]],
                    total: float, title: str | None = None,
                    width: int = 72) -> str:
    """Render per-processor execution/commit timelines (Figures 5 and 6).

    ``segments`` maps processor id to (kind, start, end) intervals; kind
    "exec" renders as the task digit block, "commit" as ``c``, gaps as
    spaces.
    """
    lines = []
    if title:
        lines.append(title)
    scale = width / total if total else 1.0
    for proc_id in sorted(segments):
        row = [" "] * width
        for kind, start, end in segments[proc_id]:
            lo = min(width - 1, int(start * scale))
            hi = min(width, max(lo + 1, int(end * scale)))
            fill = kind[0] if kind else "?"
            for i in range(lo, hi):
                row[i] = fill
        lines.append(f"P{proc_id} |{''.join(row)}|")
    lines.append(f"   0{'cycles'.rjust(width - 1)}={total:,.0f}")
    return "\n".join(lines)


def render_task_timeline(
    intervals: list[tuple[int, int, float, float, float, float]],
    total: float, n_procs: int, title: str | None = None,
    width: int = 72,
) -> str:
    """Render task execution (digits) and commit (c) per processor.

    ``intervals`` holds (task_id, proc_id, start, finish, commit_start,
    commit_end) tuples.
    """
    rows = {p: [" "] * width for p in range(n_procs)}
    scale = width / total if total else 1.0
    for task_id, proc_id, start, finish, cstart, cend in intervals:
        if proc_id not in rows:
            continue
        digit = str(task_id % 10)
        lo = min(width - 1, int(start * scale))
        hi = min(width, max(lo + 1, int(finish * scale)))
        for i in range(lo, hi):
            rows[proc_id][i] = digit
        clo = min(width - 1, int(cstart * scale))
        chi = min(width, max(clo + 1, int(cend * scale)))
        for i in range(clo, chi):
            rows[proc_id][i] = "c"
    lines = []
    if title:
        lines.append(title)
    for proc_id in sorted(rows):
        lines.append(f"P{proc_id} |{''.join(rows[proc_id])}|")
    lines.append(f"   (digits: executing task id mod 10; c: committing; "
                 f"span = {total:,.0f} cycles)")
    return "\n".join(lines)
