"""Whole-application speedup estimation (Section 4.2 of the paper).

The evaluation simulates only the non-analyzable loops; Section 4.2 notes
that, because barriers separate analyzable from non-analyzable sections,
"the overall application speedup can be estimated by weighting the speedups
[of the speculative sections] by the % of Tseq from the table". That is
Amdahl's law with the non-analyzable fraction running at the measured
speculative speedup and the rest of the application assumed ideally
parallelized (optimistic bound) or left sequential (pessimistic bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.sequential import simulate_sequential
from repro.core.config import MachineConfig
from repro.core.engine import simulate
from repro.core.taxonomy import Scheme
from repro.errors import ConfigurationError
from repro.workloads.apps import APPLICATIONS, generate_workload


def overall_speedup(loop_speedup: float, loop_fraction: float,
                    rest_speedup: float = 1.0) -> float:
    """Amdahl combination of the speculative loops with the rest.

    ``loop_fraction`` is the non-analyzable share of sequential execution
    time (the paper's "% of Tseq"); ``rest_speedup`` is what the analyzable
    remainder achieves (1.0 = left sequential; n_procs = ideally
    parallelized by the compiler).
    """
    if not 0.0 <= loop_fraction <= 1.0:
        raise ConfigurationError(
            f"loop_fraction must be in [0, 1], got {loop_fraction}")
    if loop_speedup <= 0 or rest_speedup <= 0:
        raise ConfigurationError("speedups must be positive")
    return 1.0 / (loop_fraction / loop_speedup
                  + (1.0 - loop_fraction) / rest_speedup)


@dataclass(frozen=True)
class ApplicationSpeedup:
    """Loop and whole-application speedups for one application."""

    app: str
    scheme_name: str
    machine_name: str
    loop_fraction: float
    loop_speedup: float
    #: Whole-application speedup with the analyzable rest left sequential.
    overall_rest_sequential: float
    #: Whole-application speedup with the rest ideally parallelized.
    overall_rest_parallel: float


def application_speedup(machine: MachineConfig, scheme: Scheme, app: str,
                        *, scale: float = 1.0,
                        seed: int = 0) -> ApplicationSpeedup:
    """Measure the loop speedup and combine it with the paper's %Tseq."""
    profile = APPLICATIONS[app]
    workload = generate_workload(app, scale=scale, seed=seed)
    sequential = simulate_sequential(machine, workload)
    result = simulate(machine, scheme, workload)
    loop_speedup = result.speedup_over(sequential.total_cycles)
    fraction = profile.paper.pct_of_tseq / 100.0
    return ApplicationSpeedup(
        app=app,
        scheme_name=scheme.name,
        machine_name=machine.name,
        loop_fraction=fraction,
        loop_speedup=loop_speedup,
        overall_rest_sequential=overall_speedup(loop_speedup, fraction, 1.0),
        overall_rest_parallel=overall_speedup(loop_speedup, fraction,
                                              float(machine.n_procs)),
    )
