"""Command-line interface: ``repro-tls <experiment|run|bench|list>``.

* ``repro-tls list`` — enumerate the available experiments.
* ``repro-tls <experiment>`` — regenerate one of the paper's tables or
  figures (``all`` runs every one). ``--jobs N`` fans independent
  simulations across N worker processes (default: all cores);
  ``--no-cache`` disables the persistent result cache.
* ``repro-tls run --app Apsi --scheme "MultiT&MV Lazy AMM"`` — one
  simulation with full control over machine, seed, scale, and the
  extension features (HLAP, ORB commits, bank contention).
* ``repro-tls bench [--smoke]`` — the perf harness: engine events/sec,
  Figure-9 sweep wall-clock (serial / parallel / warm cache), and a
  cross-mode determinism probe; writes ``BENCH_sweep.json``. Exits
  non-zero if determinism is violated.
* ``repro-tls validate [--smoke]`` — the conformance oracle: runs each
  workload under every evaluated taxonomy point with the runtime
  invariant checker attached and asserts the schemes agree on final
  memory state, committed dataflow, and timing-independent violation
  facts. Exits non-zero on any invariant violation or divergence.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import EXPERIMENTS, ExperimentContext


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (task-count multiplier, default 1.0)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload generation seed (default 0)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for experiment sweeps "
             "(default: os.cpu_count())",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent on-disk simulation result cache",
    )


def _run_single(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.baselines.sequential import simulate_sequential
    from repro.core.config import MACHINES
    from repro.core.engine import Simulation
    from repro.core.taxonomy import scheme_from_name
    from repro.workloads.apps import generate_workload

    machine = MACHINES[args.machine]
    costs = machine.costs
    if args.orb:
        costs = replace(costs, eager_commit_mode="orb")
    if args.bank_service:
        costs = replace(costs, memory_bank_service=args.bank_service)
    machine = machine.with_costs(costs)

    scheme = scheme_from_name(args.scheme)
    workload = generate_workload(args.app, seed=args.seed, scale=args.scale,
                                 invocations=args.invocations)
    result = Simulation(machine, scheme, workload,
                        high_level_patterns=args.hlap).run()
    sequential = simulate_sequential(machine, workload)

    print(result.summary())
    print(f"speedup over sequential : "
          f"{result.speedup_over(sequential.total_cycles):.2f}x")
    print(f"commit/execution ratio  : {result.commit_exec_ratio():.2%}")
    print(f"spec tasks in system    : {result.avg_spec_tasks_in_system:.1f}"
          f" ({result.avg_spec_tasks_per_proc:.2f}/proc)")
    print(f"squashes                : {result.violation_events} events, "
          f"{result.squashed_executions} task executions")
    total = sum(result.cycles_by_category.values())
    for category, cycles in result.cycles_by_category.items():
        print(f"  {category.value:<13} {cycles / total:6.1%}")
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    from repro.runner.bench import render_report, run_bench

    report = run_bench(smoke=args.smoke, jobs=args.jobs, seed=args.seed,
                       output=args.bench_output)
    print(render_report(report))
    if not report["determinism"]["bit_identical"]:
        print("FAIL: results differ across serial/pool/cache-replay",
              file=sys.stderr)
        return 1
    return 0


def _run_validate(args: argparse.Namespace) -> int:
    from repro.core.config import MACHINES
    from repro.core.taxonomy import EVALUATED_SCHEMES
    from repro.runner import SweepRunner, WorkloadSpec
    from repro.validate import render_conformance_report, run_conformance
    from repro.workloads.apps import APPLICATIONS

    if args.smoke:
        apps = ["Euler", "Apsi"]
        scale = 0.1
    else:
        apps = ([a.strip() for a in args.apps.split(",") if a.strip()]
                if args.apps else list(APPLICATIONS))
        scale = args.scale
    unknown = [a for a in apps if a not in APPLICATIONS]
    if unknown:
        print(f"unknown application(s): {', '.join(unknown)}; "
              f"known: {', '.join(APPLICATIONS)}", file=sys.stderr)
        return 2

    specs = [WorkloadSpec(app=app, seed=args.seed, scale=scale)
             for app in apps]
    # Cache-less on purpose: the oracle must re-verify, not replay.
    runner = SweepRunner(jobs=args.jobs, cache=None)
    report = run_conformance(
        MACHINES[args.machine], specs, EVALUATED_SCHEMES,
        runner=runner, check_invariants=not args.no_invariants,
    )
    print(render_conformance_report(report))
    return 0 if report.passed else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-tls",
        description=("Reproduce tables/figures from 'Tradeoffs in Buffering "
                     "Memory State for Thread-Level Speculation in "
                     "Multiprocessors' (HPCA 2003)"),
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'run' for a single simulation, 'bench' "
             "for the perf harness, 'validate' for the conformance "
             "oracle, 'list', or 'all'",
    )
    _add_common(parser)
    parser.add_argument("--app", default="Apsi",
                        help="application for 'run' (default Apsi)")
    parser.add_argument("--scheme", default="MultiT&MV Lazy AMM",
                        help="scheme name for 'run'")
    parser.add_argument("--machine", default="numa16",
                        choices=["numa16", "numa16-bigl2", "cmp8"],
                        help="machine preset for 'run'")
    parser.add_argument("--invocations", type=int, default=1,
                        help="loop invocations for 'run' (default 1)")
    parser.add_argument("--hlap", action="store_true",
                        help="enable High-Level Access Patterns for 'run'")
    parser.add_argument("--orb", action="store_true",
                        help="use ORB ownership-request eager commits")
    parser.add_argument("--bank-service", type=int, default=0,
                        help="memory-bank occupancy cycles (contention)")
    parser.add_argument("--smoke", action="store_true",
                        help="for 'bench'/'validate': small workloads, "
                             "finishes in well under 30s")
    parser.add_argument("--apps", default=None, metavar="A,B,...",
                        help="for 'validate': comma-separated applications "
                             "(default: all)")
    parser.add_argument("--no-invariants", action="store_true",
                        help="for 'validate': skip the runtime invariant "
                             "checker, run the differential oracle only")
    parser.add_argument("--bench-output", default="BENCH_sweep.json",
                        help="for 'bench': report path "
                             "(default BENCH_sweep.json)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        print("run")
        print("bench")
        print("validate")
        return 0
    if args.experiment == "run":
        return _run_single(args)
    if args.experiment == "bench":
        return _run_bench(args)
    if args.experiment == "validate":
        return _run_validate(args)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"try 'repro-tls list'", file=sys.stderr)
        return 2

    ctx = ExperimentContext(scale=args.scale, seed=args.seed,
                            jobs=args.jobs, cache=not args.no_cache)
    for name in names:
        runner = EXPERIMENTS[name]
        try:
            result = runner(ctx)  # type: ignore[call-arg]
        except TypeError:
            result = runner()  # static experiments take no context
        print(result.render())
        print()
    return 0


def entry() -> int:
    """Console-script entry point: exits quietly on a closed pipe."""
    try:
        return main()
    except BrokenPipeError:
        import os
        import sys

        # Piping into `head` closes stdout early; that is not an error.
        try:
            sys.stdout.close()
        except Exception:
            os._exit(0)
        return 0


if __name__ == "__main__":
    raise SystemExit(entry())
