"""Command-line interface: ``repro-tls <command|experiment>``.

Commands (each has its own ``--help`` with examples):

* ``repro-tls list`` — enumerate experiments and commands.
* ``repro-tls <experiment>`` — regenerate one of the paper's tables or
  figures (``all`` runs every one).
* ``repro-tls run`` — one simulation with full control over machine,
  scheme, seed, scale, and the extension features.
* ``repro-tls sweep`` — a (machine x scheme x app) grid through the
  parallel runner, one summary line per cell.
* ``repro-tls bench`` — the perf harness; writes ``BENCH_sweep.json``.
* ``repro-tls validate`` — the conformance oracle + runtime invariants.
* ``repro-tls report`` — build the HTML/Markdown reproduction report
  under ``docs/report/``.
* ``repro-tls explore`` — design-space sensitivity sweeps, crossover
  search, and the complexity/performance Pareto frontier.
* ``repro-tls trace`` — ``capture|gen|info|convert|verify``: binary
  ``.tlstrace`` workloads (capture synthetic runs, generate adversarial
  streams, verify capture->replay bit-identity).
* ``repro-tls serve`` — the HTTP/JSON simulation service (async job and
  sweep submission, streaming progress, warm cached lookups); ``sweep
  --server URL`` routes a sweep through a running frontend.
* ``repro-tls worker`` — a fleet worker agent: connect to a sweep
  coordinator, pull job chunks, push bit-identical result envelopes
  (``sweep --dispatch fleet`` starts the coordinator side).
* ``repro-tls cache`` — cache maintenance: ``stats`` and ``migrate``
  (one-shot move of a pre-shard flat layout into ``<key[:2]>/`` shards).

``--smoke`` (on ``bench``/``validate``/``report``) means: small
workloads at scale 0.1, a fixed two-app subset where applicable,
finishing in well under 30 seconds — the configuration CI runs.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import EXPERIMENTS, ExperimentContext

_SMOKE_HELP = ("smoke mode: scale 0.1 workloads, finishes in well under "
               "30s; the exact configuration CI gates on")


def _add_common(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every simulation-running command."""
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (task-count multiplier, default 1.0)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload generation seed (default 0)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for simulation sweeps "
             "(default: os.cpu_count())",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent on-disk simulation result cache",
    )


def _run_single(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.baselines.sequential import simulate_sequential
    from repro.core.config import MACHINES
    from repro.core.engine import Simulation
    from repro.core.taxonomy import scheme_from_name
    from repro.workloads.apps import generate_workload

    machine = MACHINES[args.machine]
    costs = machine.costs
    if args.orb:
        costs = replace(costs, eager_commit_mode="orb")
    if args.bank_service:
        costs = replace(costs, memory_bank_service=args.bank_service)
    machine = machine.with_costs(costs)

    scheme = scheme_from_name(args.scheme)
    workload = generate_workload(args.app, seed=args.seed, scale=args.scale,
                                 invocations=args.invocations)
    result = Simulation(machine, scheme, workload,
                        high_level_patterns=args.hlap).run()
    sequential = simulate_sequential(machine, workload)

    print(result.summary())
    print(f"speedup over sequential : "
          f"{result.speedup_over(sequential.total_cycles):.2f}x")
    print(f"commit/execution ratio  : {result.commit_exec_ratio():.2%}")
    print(f"spec tasks in system    : {result.avg_spec_tasks_in_system:.1f}"
          f" ({result.avg_spec_tasks_per_proc:.2f}/proc)")
    print(f"squashes                : {result.violation_events} events, "
          f"{result.squashed_executions} task executions")
    total = sum(result.cycles_by_category.values())
    for category, cycles in result.cycles_by_category.items():
        print(f"  {category.value:<13} {cycles / total:6.1%}")
    return 0


def _sweep_trace_workloads(args: argparse.Namespace) -> list:
    """Resolve ``--traces`` / ``--trace-dir`` into TraceWorkload refs."""
    from repro.workloads.trace import TraceWorkload, discover_traces

    paths: list[str] = []
    if getattr(args, "traces", None):
        paths.extend(p.strip() for p in args.traces.split(",") if p.strip())
    if getattr(args, "trace_dir", None):
        paths.extend(discover_traces(args.trace_dir))
    return [TraceWorkload.open(path) for path in paths]


def _sweep_via_server(args: argparse.Namespace) -> "list | int":
    """Route ``sweep --server URL`` through a service frontend.

    Returns the reconstructed (and digest-verified) results, or an exit
    status on refusal. Progress events stream to stdout as they land.
    """
    from repro.service import ServiceClient, ServiceClientError

    if getattr(args, "traces", None) or getattr(args, "trace_dir", None):
        print("--server sweeps accept synthetic apps only: trace files "
              "live on this machine, not the server", file=sys.stderr)
        return 2
    request: dict = {"machine": args.machine, "seed": args.seed,
                     "scale": args.scale, "collect_metrics": args.metrics}
    if args.apps:
        request["apps"] = [a.strip() for a in args.apps.split(",")
                           if a.strip()]
    if args.schemes:
        request["schemes"] = [s.strip() for s in args.schemes.split(",")
                              if s.strip()]
    client = ServiceClient(args.server)
    try:
        sweep = client.submit_sweep(request)
        for event in client.stream_events(sweep["sweep_id"]):
            if event.get("event") == "result":
                print(f"[{event['done']}/{event['total']}] "
                      f"{event['source']:<9} {event['key'][:16]}")
            elif (event.get("event") == "end"
                    and event.get("status") != "done"):
                print(f"sweep failed on the server: "
                      f"{event.get('error', 'unknown error')}",
                      file=sys.stderr)
                return 1
        results = [
            ServiceClient.result_from_envelope(client.get_job(key))
            for key in sweep["keys"]
        ]
    except ServiceClientError as exc:
        print(f"server error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()
    return results


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.core.config import MACHINES
    from repro.core.taxonomy import EVALUATED_SCHEMES, scheme_from_name
    from repro.errors import ReproError
    from repro.runner import ResultCache, SimJob, SweepRunner, WorkloadSpec
    from repro.workloads.apps import APPLICATIONS

    runner = None
    if args.server:
        results = _sweep_via_server(args)
        if isinstance(results, int):
            return results
    else:
        try:
            traces = _sweep_trace_workloads(args)
        except ReproError as exc:
            print(f"trace error: {exc}", file=sys.stderr)
            return 2
        if args.apps or not traces:
            apps = ([a.strip() for a in args.apps.split(",") if a.strip()]
                    if args.apps else list(APPLICATIONS))
        else:
            apps = []  # traces only, unless apps were requested explicitly
        unknown = [a for a in apps if a not in APPLICATIONS]
        if unknown:
            print(f"unknown application(s): {', '.join(unknown)}; "
                  f"known: {', '.join(APPLICATIONS)}", file=sys.stderr)
            return 2
        if args.schemes:
            schemes = [scheme_from_name(s.strip())
                       for s in args.schemes.split(",") if s.strip()]
        else:
            schemes = list(EVALUATED_SCHEMES)

        machine = MACHINES[args.machine]
        cache = None if args.no_cache else ResultCache()
        dispatcher = None
        if args.dispatch == "fleet":
            dispatcher = _make_fleet_dispatcher(
                args.fleet_bind, args.workers,
                str(cache.root) if cache is not None else None)
            print(f"fleet coordinator on {dispatcher.address} "
                  f"({args.workers} local workers)")
        runner = SweepRunner(jobs=args.jobs, cache=cache,
                             dispatcher=dispatcher)
        workloads = [WorkloadSpec(app, seed=args.seed, scale=args.scale)
                     for app in apps] + traces
        jobs = [
            SimJob(machine=machine, workload=workload,
                   scheme=scheme, collect_metrics=args.metrics)
            for workload in workloads for scheme in schemes
        ]
        try:
            results = runner.run_many(jobs)
        except ReproError as exc:
            print(f"sweep failed: {exc}", file=sys.stderr)
            return 1
        finally:
            if dispatcher is not None:
                dispatcher.stop()
    for result in results:
        print(result.summary())
    if args.metrics:
        from repro.obs import aggregate_by_scheme

        print()
        for name, snap in aggregate_by_scheme(results).items():
            squashes = snap.counters.get("squash.events", 0)
            spills = snap.counters.get("overflow.spills", 0)
            lookups = (snap.counters.get("directory.reads", 0)
                       + snap.counters.get("directory.writes", 0))
            print(f"{name:<24} squash events {squashes:8,.0f} | "
                  f"overflow spills {spills:8,.0f} | "
                  f"directory lookups {lookups:10,.0f}")
    if runner is not None and runner.cache is not None:
        stats = runner.cache.stats
        print(f"\ncache: {stats.hits} hits, {stats.misses} misses, "
              f"{stats.stores} stores")
    return 0


def _make_fleet_dispatcher(bind: str, workers: int,
                           cache_dir: "str | None") -> "object":
    """Start a coordinator + N localhost worker subprocesses.

    The workers share ``cache_dir`` (when caching is on), so a fleet
    sweep warms the same sharded tier a local sweep would.
    """
    from repro.dist import FleetDispatcher, parse_address

    host, port = parse_address(bind)
    dispatcher = FleetDispatcher(
        host, port, min_workers=max(1, workers), local_workers=workers,
        worker_cache_dir=cache_dir)
    return dispatcher.start()


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import SimulationService, serve_forever

    dispatcher = None
    if args.dispatch == "fleet":
        dispatcher = _make_fleet_dispatcher(
            args.fleet_bind, args.fleet_workers,
            None if args.no_cache else args.cache_dir)
        print(f"fleet coordinator on {dispatcher.address} "
              f"({args.fleet_workers} local workers)")
    service = SimulationService(
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        workers=args.workers,
        use_disk=not args.no_cache,
        dispatcher=dispatcher,
    )
    try:
        asyncio.run(serve_forever(service, args.host, args.port))
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        service.close()
        if dispatcher is not None:
            dispatcher.stop()
    return 0


def _run_worker(args: argparse.Namespace) -> int:
    from repro.dist import WorkerAgent, WorkerRefusedError
    from repro.errors import ReproError
    from repro.runner import ResultCache

    cache = None
    if not args.no_cache:
        cache = (ResultCache(args.cache_dir) if args.cache_dir
                 else ResultCache())
    agent = WorkerAgent(args.connect, cache=cache,
                        connect_timeout=args.connect_timeout)
    agent.install_signal_handlers()
    try:
        summary = agent.run()
    except WorkerRefusedError as exc:
        print(f"refused: {exc}", file=sys.stderr)
        return 2
    except (ReproError, OSError, ValueError) as exc:
        print(f"worker error: {exc}", file=sys.stderr)
        return 2
    print(f"worker {summary['worker_id']}: {summary['chunks']} chunks, "
          f"{summary['jobs']} jobs ({summary['cache_hits']} cache hits)"
          f"{', drained' if summary['drained'] else ''}")
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    import json as _json

    from repro.runner import ResultCache
    from repro.runner.cache import migrate_flat_layout

    cache = (ResultCache(args.cache_dir) if args.cache_dir
             else ResultCache())
    if args.cache_command == "migrate":
        counts = migrate_flat_layout(cache.root)
        print(f"migrated {counts['migrated']} flat entries into shards "
              f"({counts['skipped_existing']} already sharded, "
              f"{counts['ignored']} non-entry files left alone)")
        return 0
    # stats (the default)
    print(_json.dumps({
        "backend": cache.describe(),
        "entries": len(cache),
        "flat_entries": sum(
            1 for _ in cache.root.glob("*.json")) if cache.root.is_dir()
        else 0,
    }, indent=2))
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    from repro.runner.bench import (
        profile_engine,
        render_report,
        run_bench,
    )

    if args.profile:
        listing = profile_engine(output=args.profile_output)
        print(listing.splitlines()[0])
        print(f"profile written to {args.profile_output}")
        return 0
    report = run_bench(smoke=args.smoke, jobs=args.jobs, seed=args.seed,
                       output=args.bench_output,
                       kernel_compare=args.compare_kernel,
                       fleet=args.fleet)
    print(render_report(report))
    dispatch = report.get("dispatch")
    if dispatch is not None and not dispatch["byte_identical"]:
        print("FAIL: fleet results differ from the serial path",
              file=sys.stderr)
        return 1
    if not report["determinism"]["bit_identical"]:
        print("FAIL: results differ across serial/pool/cache-replay",
              file=sys.stderr)
        return 1
    if args.check_floor and not report["floor"]["passed"]:
        print("FAIL: engine throughput below the committed perf floor",
              file=sys.stderr)
        return 1
    if (args.compare_kernel
            and not report["kernel_compare"]["byte_identical"]):
        print("FAIL: kernel and reference drain loops diverged",
              file=sys.stderr)
        return 1
    return 0


def _run_validate(args: argparse.Namespace) -> int:
    from repro.core.config import MACHINES
    from repro.core.taxonomy import EVALUATED_SCHEMES
    from repro.runner import SweepRunner, WorkloadSpec
    from repro.validate import render_conformance_report, run_conformance
    from repro.workloads.apps import APPLICATIONS

    if args.smoke:
        apps = ["Euler", "Apsi"]
        scale = 0.1
    else:
        apps = ([a.strip() for a in args.apps.split(",") if a.strip()]
                if args.apps else list(APPLICATIONS))
        scale = args.scale
    unknown = [a for a in apps if a not in APPLICATIONS]
    if unknown:
        print(f"unknown application(s): {', '.join(unknown)}; "
              f"known: {', '.join(APPLICATIONS)}", file=sys.stderr)
        return 2

    specs = [WorkloadSpec(app=app, seed=args.seed, scale=scale)
             for app in apps]
    # Cache-less on purpose: the oracle must re-verify, not replay.
    runner = SweepRunner(jobs=args.jobs, cache=None)
    report = run_conformance(
        MACHINES[args.machine], specs, EVALUATED_SCHEMES,
        runner=runner, check_invariants=not args.no_invariants,
    )
    print(render_conformance_report(report))
    return 0 if report.passed else 1


def _run_report(args: argparse.Namespace) -> int:
    from repro.obs.report import build_report

    # Smoke uses scale 0.25 (not bench/validate's 0.1): the paper's
    # qualitative effects the claim badges check — SV privatization
    # stalls, P3m buffer pressure — only emerge with enough tasks, and
    # 0.25 is the scale the integration test suite asserts them at.
    scale = 0.25 if args.smoke else args.scale
    paths = build_report(
        args.out, scale=scale, seed=args.seed, jobs=args.jobs,
        cache=not args.no_cache,
    )
    print(f"report written to {paths['html']}")
    print(f"markdown companion at {paths['markdown']}")
    return 0


def _run_experiments(args: argparse.Namespace) -> int:
    names = (list(EXPERIMENTS) if args.experiment == "all"
             else [args.experiment])
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"try 'repro-tls list'", file=sys.stderr)
        return 2

    ctx = ExperimentContext(scale=args.scale, seed=args.seed,
                            jobs=args.jobs, cache=not args.no_cache)
    for name in names:
        runner = EXPERIMENTS[name]
        try:
            result = runner(ctx)  # type: ignore[call-arg]
        except TypeError:
            result = runner()  # static experiments take no context
        print(result.render())
        print()
    return 0


def _run_explore(args: argparse.Namespace) -> int:
    from repro.core.config import MACHINES
    from repro.explore import AXES, build_explore
    from repro.workloads.apps import APPLICATIONS

    apps = axes = None
    if args.apps:
        apps = tuple(a.strip() for a in args.apps.split(",") if a.strip())
        unknown = [a for a in apps if a not in APPLICATIONS]
        if unknown:
            print(f"unknown application(s): {', '.join(unknown)}; "
                  f"known: {', '.join(APPLICATIONS)}", file=sys.stderr)
            return 2
    if args.axes:
        axes = tuple(a.strip() for a in args.axes.split(",") if a.strip())
        unknown = [a for a in axes if a not in AXES]
        if unknown:
            print(f"unknown axis/axes: {', '.join(unknown)}; "
                  f"known: {', '.join(AXES)}", file=sys.stderr)
            return 2

    # Like `report --smoke`, exploration smoke runs at scale 0.25: the
    # buffer-pressure effects its axes probe only emerge with enough
    # tasks in flight.
    scale = 0.25 if args.smoke else args.scale
    paths = build_explore(
        args.out, scale=scale, seed=args.seed, jobs=args.jobs,
        cache=not args.no_cache, smoke=args.smoke,
        base=MACHINES[args.machine], apps=apps, axes=axes,
    )
    print(f"exploration report written to {paths['html']}")
    print(f"markdown companion at {paths['markdown']}")
    return 0


def _run_list(args: argparse.Namespace) -> int:
    from repro.explore import describe_machine, machine_registry
    from repro.workloads.apps import APPLICATIONS

    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("commands:")
    for command in ("run", "sweep", "bench", "validate", "report",
                    "explore", "trace", "serve", "worker", "cache"):
        print(f"  {command}")
    print("applications (synthetic registry):")
    for name, profile in APPLICATIONS.items():
        print(f"  {name:<12} {profile.n_tasks} tasks, "
              f"~{profile.instructions_per_task} instr/task")
    if getattr(args, "trace_dir", None):
        from repro.errors import ReproError
        from repro.workloads.trace import discover_traces
        from repro.workloads.traceio import peek_trace

        print(f"trace workloads ({args.trace_dir}):")
        try:
            paths = discover_traces(args.trace_dir)
        except ReproError as exc:
            print(f"trace error: {exc}", file=sys.stderr)
            return 2
        if not paths:
            print("  (none found)")
        for path in paths:
            try:
                info = peek_trace(path)
            except ReproError as exc:
                print(f"  {path}: UNREADABLE ({exc})")
                continue
            print(f"  {path}: {info.header.name}, "
                  f"{info.header.n_tasks} tasks, "
                  f"{info.n_records} records, {info.file_bytes} bytes, "
                  f"digest {info.digest[:12]}")
    print("machines (presets + derived explore variants):")
    for name, machine in machine_registry().items():
        print(f"  {name:<36} {describe_machine(machine)}")
    return 0


# ----------------------------------------------------------------------
# trace subcommands
# ----------------------------------------------------------------------
def _run_trace_capture(args: argparse.Namespace) -> int:
    from repro.core.config import MACHINES
    from repro.core.engine import Simulation
    from repro.core.taxonomy import scheme_from_name
    from repro.obs.capture import TraceCaptureHook
    from repro.workloads.apps import generate_workload
    from repro.workloads.traceio import TRACE_SUFFIX

    out = args.out or f"{args.app}{TRACE_SUFFIX}"
    workload = generate_workload(args.app, seed=args.seed, scale=args.scale)
    hook = TraceCaptureHook(out, meta={
        "app": args.app, "seed": str(args.seed), "scale": str(args.scale),
    })
    Simulation(MACHINES[args.machine], scheme_from_name(args.scheme),
               workload, hook=hook).run()
    print(f"captured {hook.info.summary()}")
    print(f"written to {out}")
    for name, value in sorted(hook.counters.items()):
        print(f"  {name:<24} {value}")
    return 0


def _run_trace_gen(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.workloads.trace import generate_trace_file
    from repro.workloads.traceio import TRACE_SUFFIX

    out = args.out or f"{args.kind}{TRACE_SUFFIX}"
    try:
        info = generate_trace_file(args.kind, out, n_tasks=args.tasks,
                                   seed=args.seed)
    except ReproError as exc:
        print(f"trace error: {exc}", file=sys.stderr)
        return 2
    print(f"generated {info.summary()}")
    print(f"written to {out}")
    return 0


def _run_trace_info(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.workloads.traceio import read_trace

    status = 0
    for path in args.files:
        try:
            decoded = read_trace(path)
        except (OSError, ReproError) as exc:
            print(f"{path}: INVALID: {exc}", file=sys.stderr)
            status = 1
            continue
        header = decoded.header
        print(f"{path}:")
        print(f"  name         {header.name}")
        print(f"  tasks        {header.n_tasks}")
        print(f"  records      {decoded.n_records} "
              f"({sum(len(t.ops) for t in decoded.tasks)} ops)")
        print(f"  bytes        {decoded.file_bytes}")
        print(f"  digest       {decoded.digest}")
        print(f"  priv region  [{header.priv_base:#x}, "
              f"{header.priv_limit:#x})")
        if header.description:
            print(f"  description  {header.description}")
        for key, value in header.meta:
            print(f"  meta         {key} = {value}")
    return status


def _run_trace_convert(args: argparse.Namespace) -> int:
    from repro.analysis.serialization import load_workload, save_workload
    from repro.errors import ReproError
    from repro.workloads.traceio import read_trace, write_trace

    try:
        if args.input.endswith(".json"):
            workload = load_workload(args.input)
            out = args.out or args.input[:-len(".json")] + ".tlstrace"
            info = write_trace(out, workload,
                               meta={"converted-from": args.input})
            print(f"converted {info.summary()}")
        else:
            decoded = read_trace(args.input)
            out = args.out or args.input + ".json"
            save_workload(decoded.to_workload(), out)
            print(f"converted {decoded.header.name}: "
                  f"{decoded.header.n_tasks} tasks to workload JSON")
        print(f"written to {out}")
    except (OSError, ReproError) as exc:
        print(f"trace error: {exc}", file=sys.stderr)
        return 2
    return 0


def _run_trace_verify(args: argparse.Namespace) -> int:
    import tempfile

    from repro.core.config import MACHINES
    from repro.core.taxonomy import EVALUATED_SCHEMES
    from repro.workloads.apps import APPLICATIONS
    from repro.workloads.trace import (
        render_verify_report,
        verify_capture_replay,
    )

    if args.smoke:
        apps = list(APPLICATIONS)
        scale = 0.1
    else:
        apps = ([a.strip() for a in args.apps.split(",") if a.strip()]
                if args.apps else list(APPLICATIONS))
        scale = args.scale
    unknown = [a for a in apps if a not in APPLICATIONS]
    if unknown:
        print(f"unknown application(s): {', '.join(unknown)}; "
              f"known: {', '.join(APPLICATIONS)}", file=sys.stderr)
        return 2
    trace_dir = args.trace_dir or tempfile.mkdtemp(prefix="repro-tls-trace-")
    report = verify_capture_replay(
        MACHINES[args.machine], apps, EVALUATED_SCHEMES, trace_dir,
        scale=scale, seed=args.seed,
    )
    print(render_verify_report(report))
    if not report["passed"]:
        print("replay digests drifted: either the trace round-trip lost "
              "content or the engine changed without an ENGINE_VERSION "
              "bump", file=sys.stderr)
    return 0 if report["passed"] else 1


_COMMANDS = ("run", "sweep", "bench", "validate", "report", "explore",
             "trace", "serve", "worker", "cache", "list")

_DESCRIPTION = (
    "Reproduce tables/figures from 'Tradeoffs in Buffering Memory State "
    "for Thread-Level Speculation in Multiprocessors' (HPCA 2003)"
)

_TOP_EPILOG = """\
examples:
  repro-tls list                       # every experiment and command
  repro-tls figure9                    # one figure, full scale
  repro-tls all --scale 0.25 --jobs 8  # everything, quarter-size, 8 workers
  repro-tls run --app Apsi --scheme "MultiT&MV Lazy AMM"
  repro-tls sweep --apps Euler,Apsi --metrics
  repro-tls bench --smoke              # CI perf + determinism gate
  repro-tls validate --smoke           # CI conformance gate
  repro-tls report --smoke             # build docs/report/index.html
  repro-tls explore --smoke            # design-space sweeps + frontier
  repro-tls trace gen --kind squash-storm --out storm.tlstrace
  repro-tls sweep --traces storm.tlstrace
  repro-tls trace verify --smoke       # capture/replay bit-identity gate
  repro-tls serve --port 8321          # HTTP/JSON simulation service
  repro-tls sweep --server http://127.0.0.1:8321 --apps Euler
  repro-tls sweep --dispatch fleet --workers 2 --apps Euler
  repro-tls worker --connect 127.0.0.1:8422  # join a remote fleet
  repro-tls cache migrate              # flat layout -> sharded layout
"""


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tls",
        description=_DESCRIPTION,
        epilog=_TOP_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", metavar="command")

    p_list = sub.add_parser(
        "list", help="enumerate experiments, commands, and workloads")
    p_list.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="also enumerate .tlstrace workloads in DIR "
                             "(with per-trace header summaries)")
    p_list.set_defaults(func=_run_list)

    p_run = sub.add_parser(
        "run", help="one simulation with full control",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
examples:
  repro-tls run --app Apsi --scheme "MultiT&MV Lazy AMM"
  repro-tls run --app P3m --machine cmp8 --scale 0.5 --hlap
  repro-tls run --app Euler --scheme "SingleT Eager AMM" --orb
""")
    _add_common(p_run)
    p_run.add_argument("--app", default="Apsi",
                       help="application workload (default Apsi)")
    p_run.add_argument("--scheme", default="MultiT&MV Lazy AMM",
                       help='scheme name (default "MultiT&MV Lazy AMM")')
    p_run.add_argument("--machine", default="numa16",
                       choices=["numa16", "numa16-bigl2", "cmp8"],
                       help="machine preset (default numa16)")
    p_run.add_argument("--invocations", type=int, default=1,
                       help="loop invocations (default 1)")
    p_run.add_argument("--hlap", action="store_true",
                       help="enable High-Level Access Patterns")
    p_run.add_argument("--orb", action="store_true",
                       help="use ORB ownership-request eager commits")
    p_run.add_argument("--bank-service", type=int, default=0,
                       help="memory-bank occupancy cycles (contention)")
    p_run.set_defaults(func=_run_single)

    p_sweep = sub.add_parser(
        "sweep", help="a (machine x scheme x app) grid, one line per cell",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
examples:
  repro-tls sweep                              # all apps x all 8 schemes
  repro-tls sweep --apps Euler,Apsi --jobs 8   # two apps, 8 workers
  repro-tls sweep --schemes "MultiT&MV Lazy AMM,MultiT&MV FMM" --metrics
""")
    _add_common(p_sweep)
    p_sweep.add_argument("--machine", default="numa16",
                         choices=["numa16", "numa16-bigl2", "cmp8"],
                         help="machine preset (default numa16)")
    p_sweep.add_argument("--apps", default=None, metavar="A,B,...",
                         help="comma-separated applications (default: all)")
    p_sweep.add_argument("--schemes", default=None, metavar="S1,S2,...",
                         help="comma-separated scheme names "
                              "(default: all 8 evaluated schemes)")
    p_sweep.add_argument("--metrics", action="store_true",
                         help="attach the metrics hook and print "
                              "per-scheme aggregates")
    p_sweep.add_argument("--traces", default=None, metavar="T1,T2,...",
                         help="comma-separated .tlstrace files to sweep "
                              "(replaces the app list unless --apps is "
                              "also given)")
    p_sweep.add_argument("--trace-dir", default=None, metavar="DIR",
                         help="sweep every .tlstrace file in DIR")
    p_sweep.add_argument("--server", default=None, metavar="URL",
                         help="route the sweep through a running "
                              "'repro-tls serve' frontend (e.g. "
                              "http://127.0.0.1:8321); results are "
                              "digest-verified locally")
    p_sweep.add_argument("--dispatch", default="local",
                         choices=["local", "fleet"],
                         help="compute backend: the in-process pool "
                              "(local, default) or a worker fleet over "
                              "TCP (fleet); results are bit-identical "
                              "either way")
    p_sweep.add_argument("--workers", type=int, default=2, metavar="N",
                         help="with --dispatch fleet: localhost worker "
                              "subprocesses to spawn (default 2); point "
                              "remote 'repro-tls worker' agents at the "
                              "--fleet-bind address for a real fleet")
    p_sweep.add_argument("--fleet-bind", default="127.0.0.1:0",
                         metavar="HOST:PORT",
                         help="with --dispatch fleet: coordinator bind "
                              "address (default 127.0.0.1:0 — an "
                              "ephemeral localhost port)")
    p_sweep.set_defaults(func=_run_sweep)

    p_bench = sub.add_parser(
        "bench", help="perf harness + cross-mode determinism gate",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
measures engine events/sec and Figure-9 sweep wall-clock (serial /
parallel / warm cache), probes that serial, process-pool, and
cache-replayed results are bit-identical, and writes the JSON report.
exits non-zero if determinism is violated.

examples:
  repro-tls bench --smoke                # sanity configuration
  repro-tls bench --smoke --check-floor  # the CI perf gate
  repro-tls bench --jobs 16 --bench-output /tmp/bench.json
  repro-tls bench --profile              # cProfile one cell to docs/report/
""")
    _add_common(p_bench)
    p_bench.add_argument("--smoke", action="store_true", help=_SMOKE_HELP)
    p_bench.add_argument("--bench-output", default="BENCH_sweep.json",
                         help="report path (default BENCH_sweep.json)")
    p_bench.add_argument("--check-floor", action="store_true",
                         help="exit non-zero if engine events/sec falls "
                              "below the committed regression floor")
    p_bench.add_argument("--fleet", type=int, default=0, metavar="N",
                         help="also measure the fleet dispatcher with N "
                              "localhost worker subprocesses: serial vs "
                              "fleet wall-clock + byte-identity on the "
                              "16-cell grid (the 'dispatch' report block)")
    p_bench.add_argument("--compare-kernel", action="store_true",
                         help="also A/B the REPRO_TLS_KERNEL drain loop "
                              "against the reference loop (byte-identity "
                              "gate)")
    p_bench.add_argument("--profile", action="store_true",
                         help="skip the bench; cProfile one representative "
                              "cell and write the top-30 cumulative listing")
    p_bench.add_argument("--profile-output", default="docs/report/profile.txt",
                         help="profile listing path "
                              "(default docs/report/profile.txt)")
    p_bench.set_defaults(func=_run_bench)

    p_validate = sub.add_parser(
        "validate", help="conformance oracle + runtime invariants",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
runs each workload under every evaluated taxonomy point with the runtime
invariant checker attached, then asserts all schemes agree with
sequential semantics on final memory state, committed dataflow, and
timing-independent violation facts. exits non-zero on any invariant
violation or divergence. always cache-less: the oracle re-verifies, it
never replays.

examples:
  repro-tls validate --smoke             # Euler+Apsi at scale 0.1 (CI)
  repro-tls validate --apps P3m --scale 0.5
  repro-tls validate --no-invariants     # differential oracle only
""")
    _add_common(p_validate)
    p_validate.add_argument("--smoke", action="store_true",
                            help=_SMOKE_HELP + " (Euler+Apsi only)")
    p_validate.add_argument("--machine", default="numa16",
                            choices=["numa16", "numa16-bigl2", "cmp8"],
                            help="machine preset (default numa16)")
    p_validate.add_argument("--apps", default=None, metavar="A,B,...",
                            help="comma-separated applications "
                                 "(default: all)")
    p_validate.add_argument("--no-invariants", action="store_true",
                            help="skip the runtime invariant checker, run "
                                 "the differential oracle only")
    p_validate.set_defaults(func=_run_validate)

    p_report = sub.add_parser(
        "report", help="build the HTML/Markdown reproduction report",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
runs (or replays from cache) the full 16-cell machine x scheme grid and
writes a self-contained docs/report/index.html plus report.md: Figure
9/10/11 analogues, the Table 1/2 support matrix, per-scheme metrics
tables, and pass/fail badges for the paper's four headline claims. the
output is deterministic — a warm-cache rebuild is byte-identical.

examples:
  repro-tls report --smoke               # ~30s, the CI artifact
  repro-tls report                       # full scale
  repro-tls report --out /tmp/report --jobs 8
""")
    _add_common(p_report)
    p_report.add_argument("--smoke", action="store_true",
                          help="smoke mode: scale 0.25 workloads (the "
                               "integration-test scale, where the paper's "
                               "qualitative effects emerge); the "
                               "configuration CI builds and uploads")
    p_report.add_argument("--out", default="docs/report",
                          help="output directory (default docs/report)")
    p_report.set_defaults(func=_run_report)

    p_explore = sub.add_parser(
        "explore", help="design-space sensitivity sweeps + Pareto frontier",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
derives machine variants along named axes (l2_size, l2_assoc, n_procs,
overflow_capacity, hop_latency, squash_cost, commit_cost), sweeps each
axis over the scheme ladder, locates the Section 7.3 crossover points
(the L2 size where Lazy closes the FMM gap on P3m; the processor count
where MultiT&MV's gain saturates), classifies the complexity/performance
Pareto frontier, and renders docs/report/explore.html + explore.md +
sensitivity SVGs. deterministic: a warm-cache rebuild is byte-identical.

examples:
  repro-tls explore --smoke              # CI configuration (3 axes, 2 apps)
  repro-tls explore --axes l2_size,n_procs --apps P3m
  repro-tls explore --machine cmp8 --scale 0.5 --jobs 8
""")
    _add_common(p_explore)
    p_explore.add_argument("--smoke", action="store_true",
                           help="smoke mode: scale 0.25, axes l2_size/"
                                "n_procs/overflow_capacity, apps P3m+Euler; "
                                "the configuration CI builds and uploads")
    p_explore.add_argument("--machine", default="numa16",
                           choices=["numa16", "numa16-bigl2", "cmp8"],
                           help="base machine the axes vary (default numa16)")
    p_explore.add_argument("--apps", default=None, metavar="A,B,...",
                           help="comma-separated applications "
                                "(default: P3m,Euler,Apsi; smoke: P3m,Euler)")
    p_explore.add_argument("--axes", default=None, metavar="X,Y,...",
                           help="comma-separated axes (default: all; smoke: "
                                "l2_size,n_procs,overflow_capacity)")
    p_explore.add_argument("--out", default="docs/report",
                           help="output directory (default docs/report)")
    p_explore.set_defaults(func=_run_explore)

    p_trace = sub.add_parser(
        "trace", help="capture, generate, inspect, convert, and verify "
                      ".tlstrace workloads",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
binary trace files (.tlstrace) replay arbitrary per-task memory
reference streams through the same engine/runner/cache pipeline as the
synthetic apps; a trace's content digest is its cache identity.

examples:
  repro-tls trace capture --app Apsi --out apsi.tlstrace
  repro-tls trace gen --kind pointer-chase --tasks 64 --out chase.tlstrace
  repro-tls trace info chase.tlstrace
  repro-tls trace convert apsi.tlstrace --out apsi.json
  repro-tls trace verify --smoke       # capture/replay bit-identity gate
""")
    tsub = p_trace.add_subparsers(dest="trace_command", metavar="subcommand")

    t_capture = tsub.add_parser(
        "capture", help="run a synthetic app and dump it as a trace")
    t_capture.add_argument("--app", default="Apsi",
                           help="application workload (default Apsi)")
    t_capture.add_argument("--scheme", default="MultiT&MV Lazy AMM",
                           help='scheme for the capture run (default '
                                '"MultiT&MV Lazy AMM")')
    t_capture.add_argument("--machine", default="numa16",
                           choices=["numa16", "numa16-bigl2", "cmp8"],
                           help="machine preset (default numa16)")
    t_capture.add_argument("--seed", type=int, default=0,
                           help="workload generation seed (default 0)")
    t_capture.add_argument("--scale", type=float, default=1.0,
                           help="workload scale factor (default 1.0)")
    t_capture.add_argument("--out", default=None, metavar="FILE",
                           help="output path (default <app>.tlstrace)")
    t_capture.set_defaults(func=_run_trace_capture)

    t_gen = tsub.add_parser(
        "gen", help="generate an adversarial trace workload")
    t_gen.add_argument("--kind", default="squash-storm",
                       choices=["pointer-chase", "squash-storm", "hot-line"],
                       help="generator (default squash-storm)")
    t_gen.add_argument("--tasks", type=int, default=None,
                       help="task count (default: generator-specific)")
    t_gen.add_argument("--seed", type=int, default=0,
                       help="generation seed (default 0)")
    t_gen.add_argument("--out", default=None, metavar="FILE",
                       help="output path (default <kind>.tlstrace)")
    t_gen.set_defaults(func=_run_trace_gen)

    t_info = tsub.add_parser(
        "info", help="decode, verify, and summarize trace files")
    t_info.add_argument("files", nargs="+", metavar="FILE",
                        help=".tlstrace files to inspect")
    t_info.set_defaults(func=_run_trace_info)

    t_convert = tsub.add_parser(
        "convert", help="convert between .tlstrace and workload JSON")
    t_convert.add_argument("input", metavar="FILE",
                           help="input file (.json converts to binary, "
                                "anything else converts to JSON)")
    t_convert.add_argument("--out", default=None, metavar="FILE",
                           help="output path (default: derived from input)")
    t_convert.set_defaults(func=_run_trace_convert)

    t_verify = tsub.add_parser(
        "verify", help="capture every app, replay the trace, assert "
                       "bit-identity under all 8 schemes")
    t_verify.add_argument("--apps", default=None, metavar="A,B,...",
                          help="comma-separated applications (default: all)")
    t_verify.add_argument("--machine", default="numa16",
                          choices=["numa16", "numa16-bigl2", "cmp8"],
                          help="machine preset (default numa16)")
    t_verify.add_argument("--scale", type=float, default=0.1,
                          help="workload scale factor (default 0.1)")
    t_verify.add_argument("--seed", type=int, default=0,
                          help="workload generation seed (default 0)")
    t_verify.add_argument("--smoke", action="store_true",
                          help="all apps at scale 0.1: the CI trace gate")
    t_verify.add_argument("--trace-dir", default=None, metavar="DIR",
                          help="directory for the captured traces "
                               "(default: a fresh temp dir)")
    t_verify.set_defaults(func=_run_trace_verify)
    p_trace.set_defaults(func=lambda _a: (p_trace.print_help(), 2)[1])

    p_serve = sub.add_parser(
        "serve", help="the HTTP/JSON simulation service frontend",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
an asyncio HTTP/JSON API (stdlib only) over the shared result-cache
stack: POST /v1/jobs and /v1/sweeps submit content-addressed work,
GET /v1/jobs/{key} serves warm results sub-millisecond from the memory
tier, GET /v1/sweeps/{id}/events streams per-cell progress as JSON
lines, and GET /v1/cache/stats exposes every tier's counters. identical
submissions collapse into one computation (single-flight). see
docs/service.md for the API reference.

examples:
  repro-tls serve                              # 127.0.0.1:8321
  repro-tls serve --port 9000 --jobs 8         # wider compute pool
  repro-tls serve --cache-dir /var/tmp/tls     # shared disk tier
  repro-tls sweep --server http://127.0.0.1:8321 --apps Euler,Apsi
  curl -s localhost:8321/v1/cache/stats
""")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="TCP port (default 8321)")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="sharded disk-tier root (default: the "
                              "standard per-user cache directory)")
    p_serve.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes per sweep "
                              "(default: os.cpu_count())")
    p_serve.add_argument("--workers", type=int, default=8, metavar="N",
                         help="concurrent sweep dispatch threads "
                              "(default 8)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="serve from the in-memory tier only (no "
                              "shared disk tier)")
    p_serve.add_argument("--dispatch", default="local",
                         choices=["local", "fleet"],
                         help="sweep compute backend: the in-process "
                              "pool (local, default) or a worker fleet "
                              "(fleet)")
    p_serve.add_argument("--fleet-workers", type=int, default=2,
                         metavar="N",
                         help="with --dispatch fleet: localhost worker "
                              "subprocesses to spawn (default 2)")
    p_serve.add_argument("--fleet-bind", default="127.0.0.1:0",
                         metavar="HOST:PORT",
                         help="with --dispatch fleet: coordinator bind "
                              "address (default 127.0.0.1:0)")
    p_serve.set_defaults(func=_run_serve)

    p_worker = sub.add_parser(
        "worker", help="a fleet worker agent (pull chunks, push results)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
connects to a sweep coordinator (started by 'repro-tls sweep --dispatch
fleet' or 'repro-tls serve --dispatch fleet'), registers with an engine
fingerprint, and loops: pull a job chunk, compute each job through the
exact serial pipeline, push digest-carrying result envelopes. warm keys
are answered from the shared cache without recomputing. SIGTERM drains
gracefully: the current chunk finishes, in-flight work is requeued.
only connect to coordinators you trust — job chunks are pickled.

examples:
  repro-tls worker --connect 127.0.0.1:8422
  repro-tls worker --connect coordinator-host:8422 --cache-dir /var/tmp/tls
""")
    p_worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="coordinator address to register with")
    p_worker.add_argument("--cache-dir", default=None, metavar="DIR",
                          help="sharded result-cache root for warm-key "
                               "short circuits (default: the standard "
                               "cache directory)")
    p_worker.add_argument("--no-cache", action="store_true",
                          help="compute every chunk; no cache reads or "
                               "writes")
    p_worker.add_argument("--connect-timeout", type=float, default=30.0,
                          metavar="SECONDS",
                          help="how long to retry the initial connection "
                               "(default 30)")
    p_worker.set_defaults(func=_run_worker)

    p_cache = sub.add_parser(
        "cache", help="result-cache maintenance: stats and migrate",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
examples:
  repro-tls cache stats                      # entry counts + backend
  repro-tls cache migrate                    # flat layout -> <key[:2]>/ shards
  repro-tls cache migrate --cache-dir /var/tmp/tls
""")
    csub = p_cache.add_subparsers(dest="cache_command", metavar="subcommand")
    c_stats = csub.add_parser(
        "stats", help="entry counts and backend description")
    c_migrate = csub.add_parser(
        "migrate", help="move a pre-shard flat cache layout into the "
                        "sharded layout (one-shot, atomic per entry)")
    for c_parser in (c_stats, c_migrate):
        c_parser.add_argument("--cache-dir", default=None, metavar="DIR",
                              help="cache root (default: the standard "
                                   "cache directory)")
        c_parser.set_defaults(func=_run_cache)
    p_cache.set_defaults(func=lambda _a: (p_cache.print_help(), 2)[1])

    return parser


def _experiment_parser() -> argparse.ArgumentParser:
    """Fallback parser: ``repro-tls <experiment> [--scale ...]``."""
    parser = argparse.ArgumentParser(
        prog="repro-tls",
        description=_DESCRIPTION,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="run 'repro-tls list' for the experiment names",
    )
    parser.add_argument(
        "experiment",
        help="experiment name (see 'repro-tls list'), or 'all'",
    )
    _add_common(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Parse ``argv`` and dispatch to a subcommand; returns the exit status."""
    if argv is None:
        argv = sys.argv[1:]
    # Experiment names ("figure9", "all", ...) are not subcommands; route
    # anything that is not a known command through the experiment parser.
    if argv and not argv[0].startswith("-") and argv[0] not in _COMMANDS:
        args = _experiment_parser().parse_args(argv)
        return _run_experiments(args)
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "func", None) is None:
        parser.print_help()
        return 2
    return args.func(args)


def entry() -> int:
    """Console-script entry point: exits quietly on a closed pipe."""
    try:
        return main()
    except BrokenPipeError:
        import os

        # Piping into `head` closes stdout early; that is not an error.
        try:
            sys.stdout.close()
        except Exception:
            os._exit(0)
        return 0


if __name__ == "__main__":
    raise SystemExit(entry())
