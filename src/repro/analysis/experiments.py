"""Experiment harness: one entry point per table and figure of the paper.

Each ``run_*`` function executes the simulations it needs (with caching, so
composite experiments share runs) and returns a result object with a
``render()`` method producing the plain-text table/figure. The benchmark
suite under ``benchmarks/`` calls these entry points one table/figure each;
``repro-tls`` (the CLI) exposes them interactively.

Every experiment reproduces *shape*, not absolute cycle counts: the paper's
authors ran an execution-driven simulator on Fortran binaries, while this
package runs calibrated synthetic equivalents (see DESIGN.md §2 and
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from pathlib import Path

from repro.baselines.sequential import SequentialResult
from repro.core.config import (
    CMP_8,
    MachineConfig,
    NUMA_16,
    NUMA_16_BIG_L2,
    scaled_machine,
)
from repro.core.results import SimulationResult
from repro.runner import ResultCache, SimJob, SweepRunner, WorkloadSpec
from repro.core.supports import (
    SUPPORT_DESCRIPTIONS,
    UPGRADE_PATH,
    complexity_score,
    required_supports,
)
from repro.core.taxonomy import (
    AMM_SCHEMES,
    EVALUATED_SCHEMES,
    MULTI_T_MV_EAGER,
    MULTI_T_MV_FMM,
    MULTI_T_MV_FMM_SW,
    MULTI_T_MV_LAZY,
    MULTI_T_SV_EAGER,
    MULTI_T_SV_LAZY,
    PRIOR_SCHEMES,
    SINGLE_T_EAGER,
    SINGLE_T_LAZY,
    Scheme,
    limiting_characteristics,
)
from repro.analysis.report import (
    Bar,
    render_bars,
    render_table,
    render_task_timeline,
)
from repro.tls.task import OP_COMPUTE, OP_READ, OP_WRITE, TaskSpec
from repro.workloads.apps import APPLICATION_ORDER, APPLICATIONS
from repro.workloads.base import PRIV_BASE, Workload


class ExperimentContext:
    """Shared workload / simulation cache for composite experiments.

    Every simulation — TLS runs and sequential baselines alike — is
    submitted through a :class:`~repro.runner.SweepRunner`, which dedupes
    identical jobs, replays prior runs from the persistent on-disk result
    cache, and fans cache misses out across a process pool. Figure entry
    points batch their whole (scheme x app) grid through
    :meth:`prefetch` so independent simulations run concurrently; the
    in-memory memo then serves the per-cell lookups.
    """

    def __init__(self, scale: float = 1.0, seed: int = 0,
                 jobs: int | None = None,
                 cache: "bool | str | Path" = True,
                 runner: SweepRunner | None = None) -> None:
        self.scale = scale
        self.seed = seed
        if runner is None:
            disk_cache = None
            if cache:
                disk_cache = ResultCache(
                    cache if isinstance(cache, (str, Path)) else None)
            runner = SweepRunner(jobs=jobs, cache=disk_cache)
        self.runner = runner
        self._workloads: dict[str, Workload] = {}
        #: In-memory memo keyed by the job's content address, so two
        #: machines that happen to share a display name never collide.
        self._results: dict[str, SimulationResult | SequentialResult] = {}

    def workload(self, app: str) -> Workload:
        """Memoized workload for ``app`` at this context's seed and scale."""
        if app not in self._workloads:
            self._workloads[app] = APPLICATIONS[app].generate(
                seed=self.seed, scale=self.scale
            )
        return self._workloads[app]

    # ------------------------------------------------------------------
    # Job plumbing
    # ------------------------------------------------------------------
    def _job(self, machine: MachineConfig, scheme: Scheme | None,
             app: str) -> SimJob:
        return SimJob(
            machine=machine,
            workload=WorkloadSpec(app, seed=self.seed, scale=self.scale),
            scheme=scheme,
        )

    def submit(self, jobs: list[SimJob]) -> list:
        """Run a batch of jobs through the runner, memoizing each result."""
        missing = [j for j in jobs if j.cache_key() not in self._results]
        if missing:
            for job, result in zip(missing, self.runner.run_many(missing)):
                self._results[job.cache_key()] = result
        return [self._results[j.cache_key()] for j in jobs]

    def prefetch(self, machine: MachineConfig, apps: tuple[str, ...],
                 schemes: tuple[Scheme, ...],
                 sequential: bool = True) -> None:
        """Batch-submit a (scheme x app) grid so it executes in parallel.

        The sequential baseline of each (machine, app) pair rides along
        (``sequential=True``), so every figure shares one baseline run
        per pair instead of recomputing it.
        """
        jobs = []
        for app in apps:
            if sequential:
                jobs.append(self._job(machine, None, app))
            for scheme in schemes:
                jobs.append(self._job(machine, scheme, app))
        self.submit(jobs)

    # ------------------------------------------------------------------
    # Single-result accessors (memo-backed)
    # ------------------------------------------------------------------
    def sequential(self, machine: MachineConfig, app: str) -> SequentialResult:
        """Sequential baseline for ``app`` on ``machine`` (runner-cached)."""
        return self.submit([self._job(machine, None, app)])[0]

    def run(self, machine: MachineConfig, scheme: Scheme,
            app: str) -> SimulationResult:
        """One simulation cell, routed through the shared runner and cache."""
        return self.submit([self._job(machine, scheme, app)])[0]


# ======================================================================
# Figure 1-(a): application characteristics
# ======================================================================
@dataclass
class Figure1Result:
    """Figure 1-(a): measured application buffering characteristics."""
    rows: list[tuple[str, float, float, float, float]]

    def render(self) -> str:
        """Render the paper-style plain-text table/figure."""
        return render_table(
            ["Appl", "SpecTasks InSystem", "SpecTasks PerProc",
             "Footprint (KB)", "Priv (%)"],
            [(app, insys, perproc, kb, priv * 100)
             for app, insys, perproc, kb, priv in self.rows],
            title=("Figure 1-(a): speculative-task occupancy and written "
                   "footprints (NUMA-16, MultiT&MV Eager AMM)"),
        )


def run_figure1(ctx: ExperimentContext | None = None) -> Figure1Result:
    """Measure the Figure 1-(a) characteristics on the NUMA machine."""
    ctx = ctx or ExperimentContext()
    ctx.prefetch(NUMA_16, APPLICATION_ORDER, (MULTI_T_MV_EAGER,),
                 sequential=False)
    rows = []
    for app in APPLICATION_ORDER:
        result = ctx.run(NUMA_16, MULTI_T_MV_EAGER, app)
        rows.append((
            app,
            result.avg_spec_tasks_in_system,
            result.avg_spec_tasks_per_proc,
            result.avg_written_footprint_bytes / 1024.0,
            result.priv_footprint_fraction,
        ))
    return Figure1Result(rows=rows)


# ======================================================================
# Tables 1 and 2: supports and upgrade path
# ======================================================================
@dataclass
class Tables12Result:
    """Tables 1-2 and the Section 3.3.5 complexity ordering."""
    def render(self) -> str:
        """Render the paper-style plain-text table/figure."""
        t1 = render_table(
            ["Support", "Description"],
            [(s.name, desc) for s, desc in SUPPORT_DESCRIPTIONS.items()],
            title="Table 1: supports required by the buffering schemes",
        )
        t2 = render_table(
            ["Upgrade", "Performance benefit", "Additional support"],
            [(f"{u.upgrade_from} -> {u.upgrade_to}", u.benefit,
              "+".join(sorted(s.name for s in u.added_supports)))
             for u in UPGRADE_PATH],
            title="Table 2: benefits and supports per upgrade step",
        )
        t3 = render_table(
            ["Scheme", "Supports", "Complexity score"],
            [(s.name,
              "+".join(sorted(x.name for x in required_supports(s))) or "-",
              complexity_score(s))
             for s in EVALUATED_SCHEMES],
            title="Section 3.3.5: complexity ordering of evaluated schemes",
        )
        return "\n\n".join((t1, t2, t3))


def run_tables12() -> Tables12Result:
    """Render the analytic support/upgrade/complexity tables."""
    return Tables12Result()


# ======================================================================
# Figure 4: prior schemes mapped onto the taxonomy
# ======================================================================
@dataclass
class Figure4Result:
    """Figure 4: prior TLS schemes mapped onto the taxonomy."""
    def render(self) -> str:
        """Render the paper-style plain-text table/figure."""
        rows = []
        for prior in PRIOR_SCHEMES:
            merge = ("coarse recovery / n-a" if prior.merge_policy is None
                     else str(prior.merge_policy))
            rows.append((prior.name, str(prior.task_policy), merge,
                         prior.notes))
        return render_table(
            ["Scheme", "Task separation", "Merging", "Notes"],
            rows,
            title="Figure 4: existing TLS schemes mapped onto the taxonomy",
        )


def run_figure4() -> Figure4Result:
    """Render the analytic prior-scheme mapping."""
    return Figure4Result()


# ======================================================================
# Figure 5: SingleT vs MultiT&SV vs MultiT&MV on an imbalanced toy loop
# ======================================================================
def _figure5_workload() -> Workload:
    """Four tasks on two processors: T0 long; T1-T3 short, each writing X.

    Mirrors Figure 5 of the paper: under SingleT, the processor that
    finishes T1 stalls until T1 can commit; under MultiT&SV it starts T2
    but stalls when T2 writes X (second local speculative version); under
    MultiT&MV it never stalls.
    """
    x = PRIV_BASE
    tasks = []
    long_ops = ((OP_COMPUTE, 60_000),)
    tasks.append(TaskSpec(0, long_ops))
    for tid in (1, 2, 3):
        tasks.append(TaskSpec(tid, (
            (OP_COMPUTE, 1_000),
            (OP_WRITE, x),
            (OP_COMPUTE, 6_000),
            (OP_READ, x),
            (OP_COMPUTE, 1_000),
        )))
    return Workload(name="figure5-toy", tasks=tuple(tasks))


@dataclass
class Figure5Result:
    """Figure 5: SingleT vs MultiT&SV vs MultiT&MV timelines."""
    timelines: dict[str, tuple[list, float, int]]
    total_cycles: dict[str, float]

    def render(self) -> str:
        """Render the paper-style plain-text table/figure."""
        parts = ["Figure 5: four tasks, two processors (T0 long; T1-T3 "
                 "each create a version of X)"]
        for name, (intervals, total, n_procs) in self.timelines.items():
            parts.append(render_task_timeline(
                intervals, total, n_procs, title=f"\n[{name}] "
                f"total = {total:,.0f} cycles"))
        return "\n".join(parts)


def run_figure5(ctx: ExperimentContext | None = None) -> Figure5Result:
    """Simulate the imbalanced two-processor toy loop under the three task policies.
    """
    ctx = ctx or ExperimentContext()
    machine = scaled_machine(NUMA_16, 2)
    workload = _figure5_workload()
    schemes = (SINGLE_T_EAGER, MULTI_T_SV_EAGER, MULTI_T_MV_EAGER)
    results = ctx.submit(
        [SimJob(machine=machine, workload=workload, scheme=s)
         for s in schemes])
    timelines = {}
    totals = {}
    for scheme, result in zip(schemes, results):
        intervals = [
            (t.task_id, t.proc_id, t.start_time, t.finish_time,
             t.commit_start, t.commit_end)
            for t in result.task_timings
        ]
        timelines[scheme.name] = (intervals, result.total_cycles,
                                  machine.n_procs)
        totals[scheme.name] = result.total_cycles
    return Figure5Result(timelines=timelines, total_cycles=totals)


# ======================================================================
# Figure 6: execution vs commit wavefronts, Eager vs Lazy
# ======================================================================
def _figure6_workload() -> Workload:
    """Six equal tasks with a large written footprint (high C/E ratio)."""
    tasks = []
    for tid in range(6):
        ops = [(OP_COMPUTE, 2_000)]
        base = PRIV_BASE + tid * 16 * 64
        for j in range(48):
            ops.append((OP_WRITE, base + j * 16))
            ops.append((OP_COMPUTE, 150))
        tasks.append(TaskSpec(tid, tuple(ops)))
    return Workload(name="figure6-toy", tasks=tuple(tasks))


@dataclass
class Figure6Result:
    """Figure 6: execution vs commit wavefronts, Eager vs Lazy."""
    timelines: dict[str, tuple[list, float, int]]

    def render(self) -> str:
        """Render the paper-style plain-text table/figure."""
        parts = ["Figure 6: execution and commit wavefronts (six tasks, "
                 "three processors, high commit/execution ratio)"]
        for name, (intervals, total, n_procs) in self.timelines.items():
            parts.append(render_task_timeline(
                intervals, total, n_procs,
                title=f"\n[{name}] total = {total:,.0f} cycles"))
        return "\n".join(parts)


def run_figure6(ctx: ExperimentContext | None = None) -> Figure6Result:
    """Simulate the high commit/execution-ratio toy loop under Eager and Lazy.
    """
    ctx = ctx or ExperimentContext()
    machine = scaled_machine(NUMA_16, 3)
    workload = _figure6_workload()
    schemes = (MULTI_T_MV_EAGER, MULTI_T_MV_LAZY,
               SINGLE_T_EAGER, SINGLE_T_LAZY)
    results = ctx.submit(
        [SimJob(machine=machine, workload=workload, scheme=s)
         for s in schemes])
    timelines = {}
    for scheme, result in zip(schemes, results):
        intervals = [
            (t.task_id, t.proc_id, t.start_time, t.finish_time,
             t.commit_start, t.commit_end)
            for t in result.task_timings
        ]
        timelines[scheme.name] = (intervals, result.total_cycles,
                                  machine.n_procs)
    return Figure6Result(timelines=timelines)


# ======================================================================
# Figure 8: limiting characteristics per scheme
# ======================================================================
@dataclass
class Figure8Result:
    """Figure 8: application characteristics limiting each scheme."""
    def render(self) -> str:
        """Render the paper-style plain-text table/figure."""
        rows = []
        for scheme in EVALUATED_SCHEMES:
            limits = limiting_characteristics(scheme)
            rows.append((scheme.name,
                         "; ".join(sorted(str(l) for l in limits))))
        return render_table(
            ["Scheme", "Limiting application characteristics"],
            rows,
            title="Figure 8: characteristics limiting each scheme",
        )


def run_figure8() -> Figure8Result:
    """Render the analytic limiting-characteristics map."""
    return Figure8Result()


# ======================================================================
# Table 3: application characteristics (measured vs paper)
# ======================================================================
@dataclass
class Table3Result:
    """Table 3: measured application characteristics on both machines."""
    rows: list[tuple]

    def render(self) -> str:
        """Render the paper-style plain-text table/figure."""
        return render_table(
            ["Appl", "Instr/task (k)", "C/E NUMA (%)", "C/E CMP (%)",
             "Imbalance (cv)", "Priv (%fp)", "Squash/task",
             "Paper C/E NUMA", "Paper class"],
            self.rows,
            title=("Table 3: measured application characteristics "
                   "(paper reference in last columns)"),
        )


def run_table3(ctx: ExperimentContext | None = None) -> Table3Result:
    """Measure instr/task, commit/exec ratio, and squash class per application.
    """
    ctx = ctx or ExperimentContext()
    ctx.prefetch(NUMA_16, APPLICATION_ORDER, (MULTI_T_MV_EAGER,),
                 sequential=False)
    ctx.prefetch(CMP_8, APPLICATION_ORDER, (MULTI_T_MV_EAGER,),
                 sequential=False)
    rows = []
    for app in APPLICATION_ORDER:
        profile = APPLICATIONS[app]
        workload = ctx.workload(app)
        numa = ctx.run(NUMA_16, MULTI_T_MV_EAGER, app)
        cmp_ = ctx.run(CMP_8, MULTI_T_MV_EAGER, app)
        rows.append((
            app,
            workload.mean_instructions() / 1000.0,
            numa.commit_exec_ratio() * 100,
            cmp_.commit_exec_ratio() * 100,
            workload.imbalance_cv(),
            numa.priv_footprint_fraction * 100,
            numa.squashed_executions / numa.n_tasks,
            profile.paper.commit_exec_numa_pct,
            f"{profile.paper.load_imbalance} imb / "
            f"{profile.paper.priv_pattern} priv / "
            f"{profile.paper.commit_exec_class} C-E",
        ))
    return Table3Result(rows=rows)


# ======================================================================
# Figures 9 and 11: the six AMM schemes per application
# ======================================================================
@dataclass
class SchemeBarsResult:
    """Normalized execution-time bars for a set of schemes per app."""

    machine_name: str
    schemes: tuple[Scheme, ...]
    #: app -> scheme name -> (normalized time, busy fraction, speedup).
    cells: dict[str, dict[str, tuple[float, float, float]]]
    #: scheme name -> average normalized time over apps.
    averages: dict[str, float]
    title: str

    def render(self) -> str:
        """Render the paper-style plain-text table/figure."""
        parts = [self.title]
        for app, per_scheme in self.cells.items():
            bars = []
            for scheme in self.schemes:
                norm, busy, speedup = per_scheme[scheme.name]
                bars.append(Bar(label=scheme.name, normalized=norm,
                                busy_fraction=busy,
                                annotation=f"speedup {speedup:4.1f}"))
            parts.append(render_bars(bars, title=f"\n{app}:"))
        avg_bars = [Bar(label=name, normalized=norm, busy_fraction=0.0)
                    for name, norm in self.averages.items()]
        parts.append(render_bars(
            avg_bars, title="\nAverage (normalized execution time):"))
        return "\n".join(parts)

    def average_reduction(self, scheme: Scheme,
                          reference: Scheme) -> float:
        """Mean relative execution-time reduction of scheme vs reference."""
        reductions = []
        for per_scheme in self.cells.values():
            new = per_scheme[scheme.name][0]
            ref = per_scheme[reference.name][0]
            reductions.append(1.0 - new / ref)
        return sum(reductions) / len(reductions)


def _scheme_bars(ctx: ExperimentContext, machine: MachineConfig,
                 schemes: tuple[Scheme, ...], title: str,
                 reference: Scheme) -> SchemeBarsResult:
    ctx.prefetch(machine, APPLICATION_ORDER, schemes + (reference,),
                 sequential=True)
    cells: dict[str, dict[str, tuple[float, float, float]]] = {}
    sums = {s.name: 0.0 for s in schemes}
    for app in APPLICATION_ORDER:
        seq = ctx.sequential(machine, app)
        ref = ctx.run(machine, reference, app)
        per_scheme = {}
        for scheme in schemes:
            result = ctx.run(machine, scheme, app)
            norm = result.normalized_to(ref)
            per_scheme[scheme.name] = (
                norm,
                result.busy_fraction(),
                result.speedup_over(seq.total_cycles),
            )
            sums[scheme.name] += norm
        cells[app] = per_scheme
    averages = {name: total / len(APPLICATION_ORDER)
                for name, total in sums.items()}
    return SchemeBarsResult(
        machine_name=machine.name, schemes=schemes, cells=cells,
        averages=averages, title=title,
    )


def run_figure9(ctx: ExperimentContext | None = None) -> SchemeBarsResult:
    """Figure 9: separation/merging tradeoffs on the CC-NUMA."""
    ctx = ctx or ExperimentContext()
    return _scheme_bars(
        ctx, NUMA_16, AMM_SCHEMES,
        "Figure 9: AMM schemes on CC-NUMA-16 "
        "(times normalized to SingleT Eager)",
        reference=SINGLE_T_EAGER,
    )


def run_figure11(ctx: ExperimentContext | None = None) -> SchemeBarsResult:
    """Figure 11: the same comparison on the CMP."""
    ctx = ctx or ExperimentContext()
    return _scheme_bars(
        ctx, CMP_8, AMM_SCHEMES,
        "Figure 11: AMM schemes on CMP-8 "
        "(times normalized to SingleT Eager)",
        reference=SINGLE_T_EAGER,
    )


# ======================================================================
# Figure 10: AMM vs FMM (MultiT&MV), plus Lazy.L2 for P3m
# ======================================================================
@dataclass
class Figure10Result:
    """Figure 10: MultiT&MV merge-policy comparison (+ Lazy.L2 for P3m)."""
    bars: SchemeBarsResult
    lazy_l2: dict[str, tuple[float, float, float]]

    def render(self) -> str:
        """Render the paper-style plain-text table/figure."""
        parts = [self.bars.render()]
        rows = [(app, norm, busy * 100, speedup)
                for app, (norm, busy, speedup) in self.lazy_l2.items()]
        parts.append("\n" + render_table(
            ["Appl", "Lazy.L2 normalized", "busy %", "speedup"],
            rows,
            title=("Lazy.L2 (4-MB, 16-way L2): relieves AMM buffer "
                   "pressure, P3m row is the paper's bar"),
        ))
        return "\n".join(parts)


FIGURE10_SCHEMES = (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_LAZY,
    MULTI_T_MV_FMM,
    MULTI_T_MV_FMM_SW,
)


def run_figure10(ctx: ExperimentContext | None = None) -> Figure10Result:
    """Run the NUMA MultiT&MV Eager/Lazy/FMM/FMM.Sw grid."""
    ctx = ctx or ExperimentContext()
    bars = _scheme_bars(
        ctx, NUMA_16, FIGURE10_SCHEMES,
        "Figure 10: AMM vs FMM under MultiT&MV on CC-NUMA-16 "
        "(times normalized to MultiT&MV Eager)",
        reference=MULTI_T_MV_EAGER,
    )
    lazy_l2 = {}
    for app in ("P3m",):
        seq = ctx.sequential(NUMA_16, app)
        ref = ctx.run(NUMA_16, MULTI_T_MV_EAGER, app)
        big = ctx.run(NUMA_16_BIG_L2, MULTI_T_MV_LAZY, app)
        lazy_l2[app] = (
            big.total_cycles / ref.total_cycles,
            big.busy_fraction(),
            big.speedup_over(seq.total_cycles),
        )
    return Figure10Result(bars=bars, lazy_l2=lazy_l2)


# ======================================================================
# Section 5.4 summary: headline aggregate improvements
# ======================================================================
@dataclass
class SummaryResult:
    """Section 5.4: aggregate percentage improvements across both machines."""
    rows: list[tuple[str, float, float]]

    def render(self) -> str:
        """Render the paper-style plain-text table/figure."""
        return render_table(
            ["Claim", "Paper (%)", "Measured (%)"],
            [(claim, paper, measured * 100)
             for claim, paper, measured in self.rows],
            title="Section 5.4: headline average execution-time reductions",
        )


def run_summary(ctx: ExperimentContext | None = None) -> SummaryResult:
    """Derive the Section 5.4 aggregate improvements from Figures 9-11."""
    ctx = ctx or ExperimentContext()
    fig9 = run_figure9(ctx)
    fig11 = run_figure11(ctx)

    def simple_lazy_gain(fig: SchemeBarsResult) -> float:
        gains = [
            fig.average_reduction(SINGLE_T_LAZY, SINGLE_T_EAGER),
            fig.average_reduction(MULTI_T_SV_LAZY, MULTI_T_SV_EAGER),
        ]
        return sum(gains) / len(gains)

    ctx.prefetch(NUMA_16, APPLICATION_ORDER,
                 (MULTI_T_MV_FMM, MULTI_T_MV_FMM_SW), sequential=False)
    fmm_sw_overhead = []
    for app in APPLICATION_ORDER:
        fmm = ctx.run(NUMA_16, MULTI_T_MV_FMM, app)
        sw = ctx.run(NUMA_16, MULTI_T_MV_FMM_SW, app)
        fmm_sw_overhead.append(sw.total_cycles / fmm.total_cycles - 1.0)

    rows = [
        ("NUMA: MultiT&MV vs SingleT (Eager)", 32.0,
         fig9.average_reduction(MULTI_T_MV_EAGER, SINGLE_T_EAGER)),
        ("NUMA: laziness for simple schemes (SingleT/MultiT&SV)", 30.0,
         simple_lazy_gain(fig9)),
        ("NUMA: laziness for MultiT&MV", 24.0,
         fig9.average_reduction(MULTI_T_MV_LAZY, MULTI_T_MV_EAGER)),
        ("CMP: MultiT&MV vs SingleT (Eager)", 23.0,
         fig11.average_reduction(MULTI_T_MV_EAGER, SINGLE_T_EAGER)),
        ("CMP: laziness for simple schemes", 9.0,
         simple_lazy_gain(fig11)),
        ("CMP: laziness for MultiT&MV", 3.0,
         fig11.average_reduction(MULTI_T_MV_LAZY, MULTI_T_MV_EAGER)),
        ("NUMA: FMM.Sw overhead over FMM", 6.0,
         sum(fmm_sw_overhead) / len(fmm_sw_overhead)),
    ]
    return SummaryResult(rows=rows)


# ======================================================================
# Stall breakdown: where the cycles go under each scheme
# ======================================================================
@dataclass
class BreakdownResult:
    """Per-(app, scheme) cycle-category fractions (Figure 9's bar split,
    disaggregated: the paper folds memory, task/version-support and
    end-of-loop stalls into one "Stall" segment; this table keeps them
    apart)."""

    machine_name: str
    #: app -> scheme name -> {category: fraction of all processor cycles}.
    cells: dict[str, dict[str, dict[str, float]]]

    def render(self) -> str:
        """Render the paper-style plain-text table/figure."""
        from repro.processor.processor import CycleCategory

        header = ["Appl", "Scheme"] + [c.value for c in CycleCategory]
        rows = []
        for app, per_scheme in self.cells.items():
            for scheme_name, fractions in per_scheme.items():
                rows.append([app, scheme_name] + [
                    f"{fractions[c.value] * 100:.1f}%"
                    for c in CycleCategory
                ])
        return render_table(
            header, rows,
            title=(f"Cycle breakdown on {self.machine_name} "
                   "(fractions of all processor cycles)"),
        )


def run_breakdown(ctx: ExperimentContext | None = None,
                  machine: MachineConfig = NUMA_16) -> BreakdownResult:
    """Disaggregated busy/stall breakdown for the six AMM schemes."""
    from repro.processor.processor import CycleCategory

    ctx = ctx or ExperimentContext()
    ctx.prefetch(machine, APPLICATION_ORDER, AMM_SCHEMES, sequential=False)
    cells: dict[str, dict[str, dict[str, float]]] = {}
    for app in APPLICATION_ORDER:
        per_scheme = {}
        for scheme in AMM_SCHEMES:
            result = ctx.run(machine, scheme, app)
            total = sum(result.cycles_by_category.values())
            per_scheme[scheme.name] = {
                c.value: (result.cycles_by_category[c] / total if total
                          else 0.0)
                for c in CycleCategory
            }
        cells[app] = per_scheme
    return BreakdownResult(machine_name=machine.name, cells=cells)


# ======================================================================
# Protocol traffic: messages per committed task under each merge policy
# ======================================================================
@dataclass
class TrafficResult:
    """Protocol message counts per committed task (app x merge policy).

    Beyond the paper: quantifies how the merge policy redistributes
    traffic — Eager pushes every dirty line through the token-holding
    commit, Lazy shifts write-backs to displacements/final merge and adds
    VCL combining, FMM adds free displacements protected by MTID.
    """

    machine_name: str
    rows: list[tuple]

    def render(self) -> str:
        """Render the paper-style plain-text table/figure."""
        return render_table(
            ["Appl", "Scheme", "remote fetch/task", "mem fetch/task",
             "writebacks/task", "VCL merges/task", "overflow ops/task"],
            self.rows,
            title=(f"Protocol traffic per committed task on "
                   f"{self.machine_name}"),
        )


TRAFFIC_SCHEMES = (MULTI_T_MV_EAGER, MULTI_T_MV_LAZY, MULTI_T_MV_FMM)


def run_traffic(ctx: ExperimentContext | None = None,
                machine: MachineConfig = NUMA_16) -> TrafficResult:
    """Beyond-the-paper view: protocol traffic per committed task."""
    ctx = ctx or ExperimentContext()
    ctx.prefetch(machine, APPLICATION_ORDER, TRAFFIC_SCHEMES,
                 sequential=False)
    rows = []
    for app in APPLICATION_ORDER:
        for scheme in TRAFFIC_SCHEMES:
            result = ctx.run(machine, scheme, app)
            n = result.n_tasks
            t = result.traffic
            rows.append((
                app, scheme.name,
                t.remote_cache_fetches / n,
                t.memory_fetches / n,
                t.line_writebacks / n,
                t.vcl_merges / n,
                (t.overflow_spills + t.overflow_fetches) / n,
            ))
    return TrafficResult(machine_name=machine.name, rows=rows)


# ======================================================================
# Scalability: speedup vs processor count per scheme
# ======================================================================
@dataclass
class ScalabilityResult:
    """Speedup of selected schemes as the NUMA machine grows.

    Beyond the paper's two machine sizes: sweeps the processor count and
    shows where each scheme saturates — SingleT and Eager merging stop
    scaling once the serialized commit wavefront (proportional to the
    commit/execution ratio times the processor count) fills the critical
    path, while MultiT&MV Lazy keeps scaling.
    """

    app: str
    proc_counts: tuple[int, ...]
    #: scheme name -> list of speedups aligned with proc_counts.
    curves: dict[str, list[float]]

    def render(self) -> str:
        """Render the paper-style plain-text table/figure."""
        rows = []
        for scheme_name, speedups in self.curves.items():
            rows.append([scheme_name] + [f"{s:.2f}x" for s in speedups])
        return render_table(
            ["Scheme"] + [f"{n} procs" for n in self.proc_counts],
            rows,
            title=(f"Scalability on {self.app}: speedup over sequential "
                   "vs processor count (CC-NUMA latencies)"),
        )


SCALABILITY_SCHEMES = (SINGLE_T_EAGER, MULTI_T_MV_EAGER, MULTI_T_MV_LAZY)


def run_scalability(ctx: ExperimentContext | None = None,
                    app: str = "Apsi",
                    proc_counts: tuple[int, ...] = (4, 8, 16, 32),
                    ) -> ScalabilityResult:
    """Beyond-the-paper view: speedup vs processor count."""
    ctx = ctx or ExperimentContext()
    machines = [scaled_machine(NUMA_16, n) for n in proc_counts]
    jobs = []
    for machine in machines:
        jobs.append(ctx._job(machine, None, app))
        jobs.extend(ctx._job(machine, scheme, app)
                    for scheme in SCALABILITY_SCHEMES)
    ctx.submit(jobs)
    curves: dict[str, list[float]] = {s.name: [] for s in SCALABILITY_SCHEMES}
    for machine in machines:
        sequential = ctx.sequential(machine, app)
        for scheme in SCALABILITY_SCHEMES:
            result = ctx.run(machine, scheme, app)
            curves[scheme.name].append(
                result.speedup_over(sequential.total_cycles))
    return ScalabilityResult(app=app, proc_counts=tuple(proc_counts),
                             curves=curves)


#: Experiments by name, for the CLI and benchmarks.
EXPERIMENTS = {
    "figure1": run_figure1,
    "tables12": run_tables12,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "figure6": run_figure6,
    "figure8": run_figure8,
    "table3": run_table3,
    "figure9": run_figure9,
    "figure10": run_figure10,
    "figure11": run_figure11,
    "summary": run_summary,
    "breakdown": run_breakdown,
    "traffic": run_traffic,
    "scalability": run_scalability,
}
