"""Exception hierarchy for the TLS buffering simulator.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch the library's failures without also swallowing unrelated
bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """A machine, scheme, or workload configuration is inconsistent.

    Raised eagerly at construction time (e.g. a cache whose size is not a
    multiple of its line size, or a scheme combination the paper marks as
    shaded/uninteresting being simulated without ``allow_shaded``).
    """


class SimulationError(ReproError):
    """The simulation engine reached an internally inconsistent state.

    This always indicates a bug in the simulator (or a hand-built workload
    violating its declared contract), never a property of the modeled
    hardware.
    """


class WorkloadError(ReproError):
    """A workload description is malformed (bad ops, empty task list, ...)."""


class TraceFormatError(WorkloadError):
    """A ``.tlstrace`` file is malformed, truncated, or corrupt.

    ``offset`` (when known) is the byte position in the file/buffer where
    decoding failed, so a corrupt trace can be located with a hex editor.
    """

    def __init__(self, message: str, offset: int | None = None) -> None:
        if offset is not None:
            message = f"{message} (at byte offset {offset})"
        super().__init__(message)
        self.offset = offset


class ProtocolError(SimulationError):
    """The speculative versioning protocol was driven out of its contract.

    For example: committing tasks out of order, reading a version that was
    never created, or recovering a task that holds no log entries while the
    undo log claims otherwise.
    """
