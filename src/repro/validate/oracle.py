"""Differential conformance oracle across taxonomy points.

The paper's premise is that every taxonomy point buffers speculative
state differently but implements identical *architectural semantics*
(Section 3): the buffering scheme may change timing, never outcomes.
:func:`run_conformance` turns that premise into an executable oracle. It
runs the same (workload, seed) under every scheme — fanned out through
the :class:`~repro.runner.SweepRunner`, optionally with the runtime
:class:`~repro.validate.invariants.InvariantChecker` attached to each
run — and asserts the facts that must be timing-independent:

* **Final memory state** — every scheme's final word -> producer image
  equals the sequential last-writer image (and therefore every other
  scheme's).
* **Committed dataflow** — the version each committed task consumed at
  its first read of each word equals the sequential producer, under
  every scheme: squashes may reorder attempts, but committed reads must
  observe sequential semantics.
* **Violation facts** — a workload with no potential out-of-order RAW
  (no task reads a word that any earlier task writes, before writing it
  itself) must report *zero* violations under every scheme; when
  potential victims exist, the earliest task any scheme ever squashes
  must be one of them (later squashes are timing-dependent cascade
  members and are reported, not asserted).

Divergences are collected, not raised, so one report covers the whole
grid; ``repro-tls validate`` renders it and exits non-zero when any
check failed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.config import MachineConfig
from repro.core.taxonomy import EVALUATED_SCHEMES, Scheme
from repro.errors import ReproError
from repro.runner import SimJob, SweepRunner, WorkloadSpec
from repro.tls.task import OP_READ, OP_WRITE
from repro.workloads.base import Workload


@dataclass(frozen=True)
class Divergence:
    """One failed conformance check."""

    workload: str
    check: str  # "memory-image" | "dataflow" | "violations" | "invariants"
    scheme: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.workload} / {self.scheme}] {self.check}: {self.detail}"


@dataclass(frozen=True)
class SchemeOutcome:
    """Per-(workload, scheme) summary shown in the conformance report."""

    workload: str
    scheme: str
    total_cycles: float
    events_processed: int
    violation_events: int
    squashed_executions: int
    squashed_tasks: tuple[int, ...]


@dataclass
class ConformanceReport:
    """Outcome of one :func:`run_conformance` sweep."""

    machine: str
    workloads: list[str]
    schemes: list[str]
    invariants_checked: bool
    outcomes: list[SchemeOutcome] = field(default_factory=list)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.divergences


def potential_raw_victims(workload: Workload) -> set[int]:
    """Tasks that *could* suffer an out-of-order RAW under some timing.

    Task U is a potential victim iff there is a word U reads before
    writing it (in U's program order — reading after its own write always
    hits U's own version) that some earlier task writes. If this set is
    empty, no interleaving of any scheme can produce a violation, so the
    oracle demands zero violations everywhere; if it is non-empty, the
    earliest squashed task must belong to it (squash cascades only add
    *later* tasks).
    """
    first_writer: dict[int, int] = {}
    victims: set[int] = set()
    for task in workload.tasks:
        written: set[int] = set()
        for kind, value in task.ops:
            if kind == OP_WRITE:
                written.add(value)
                first_writer.setdefault(value, task.task_id)
            elif kind == OP_READ and value not in written:
                writer = first_writer.get(value)
                if writer is not None and writer < task.task_id:
                    victims.add(task.task_id)
    return victims


def _squashed_tasks(result) -> tuple[int, ...]:
    return tuple(sorted(t.task_id for t in result.task_timings
                        if t.squashes > 0))


def run_conformance(
    machine: MachineConfig,
    specs: Sequence[WorkloadSpec],
    schemes: Sequence[Scheme] = EVALUATED_SCHEMES,
    *,
    runner: SweepRunner | None = None,
    check_invariants: bool = True,
) -> ConformanceReport:
    """Run every workload under every scheme and check equivalence.

    ``runner`` defaults to a cache-less :class:`SweepRunner` (a cached
    result would replay a *previous* engine's behaviour, which is exactly
    what the oracle must not trust); pass a cache-backed one explicitly
    to trade re-verification for speed.
    """
    if runner is None:
        runner = SweepRunner(cache=None)
    report = ConformanceReport(
        machine=machine.name,
        workloads=[s.app for s in specs],
        schemes=[s.name for s in schemes],
        invariants_checked=check_invariants,
    )

    for spec in specs:
        workload = spec.generate()
        jobs = [
            SimJob(machine=machine, workload=spec, scheme=scheme,
                   check_invariants=check_invariants)
            for scheme in schemes
        ]
        try:
            results = runner.run_many(jobs)
        except ReproError as exc:
            # An InvariantViolation (or any protocol error) aborts the
            # whole batch; record it against the workload and move on.
            report.divergences.append(Divergence(
                workload=spec.app, check="invariants", scheme="*",
                detail=str(exc),
            ))
            continue

        expected_image = workload.sequential_image()
        expected_reads = workload.sequential_reads()
        victims = potential_raw_victims(workload)

        for scheme, result in zip(schemes, results):
            report.outcomes.append(SchemeOutcome(
                workload=spec.app,
                scheme=scheme.name,
                total_cycles=result.total_cycles,
                events_processed=result.events_processed,
                violation_events=result.violation_events,
                squashed_executions=result.squashed_executions,
                squashed_tasks=_squashed_tasks(result),
            ))

            if result.memory_image != expected_image:
                diff = {
                    w: (result.memory_image.get(w), expected_image.get(w))
                    for w in set(result.memory_image) | set(expected_image)
                    if result.memory_image.get(w) != expected_image.get(w)
                }
                sample = dict(sorted(diff.items())[:5])
                report.divergences.append(Divergence(
                    workload=spec.app, check="memory-image",
                    scheme=scheme.name,
                    detail=f"{len(diff)} words differ from the sequential "
                           f"last-writer image (got, expected): {sample}",
                ))

            if result.observed_reads != expected_reads:
                diff_keys = [
                    k for k in set(result.observed_reads) | set(expected_reads)
                    if result.observed_reads.get(k) != expected_reads.get(k)
                ]
                sample = {
                    k: (result.observed_reads.get(k), expected_reads.get(k))
                    for k in sorted(diff_keys)[:5]
                }
                report.divergences.append(Divergence(
                    workload=spec.app, check="dataflow", scheme=scheme.name,
                    detail=f"{len(diff_keys)} committed reads consumed a "
                           f"non-sequential version (got, expected): "
                           f"{sample}",
                ))

            squashed = _squashed_tasks(result)
            if not victims and (result.violation_events or squashed):
                report.divergences.append(Divergence(
                    workload=spec.app, check="violations", scheme=scheme.name,
                    detail=f"workload has no potential out-of-order RAW, yet "
                           f"{result.violation_events} violation events "
                           f"squashed tasks {list(squashed)[:8]}",
                ))
            elif squashed and min(squashed) not in victims:
                report.divergences.append(Divergence(
                    workload=spec.app, check="violations", scheme=scheme.name,
                    detail=f"earliest squashed task {min(squashed)} is not a "
                           f"potential RAW victim "
                           f"(victims={sorted(victims)[:8]})",
                ))
    return report


def render_conformance_report(report: ConformanceReport) -> str:
    """Human-readable conformance report for the CLI / CI log."""
    lines = [
        f"conformance oracle on {report.machine}: "
        f"{len(report.workloads)} workload(s) x "
        f"{len(report.schemes)} scheme(s)"
        + (", runtime invariants checked" if report.invariants_checked
           else ""),
    ]
    width = max((len(s) for s in report.schemes), default=10)
    for workload in report.workloads:
        rows = [o for o in report.outcomes if o.workload == workload]
        if not rows:
            lines.append(f"  {workload}: aborted (see divergences)")
            continue
        lines.append(f"  {workload}:")
        for o in rows:
            lines.append(
                f"    {o.scheme:<{width}}  {o.total_cycles:>12,.0f} cyc  "
                f"{o.events_processed:>8,} ev  "
                f"{o.violation_events:>3} viol  "
                f"{o.squashed_executions:>3} squashes"
            )
    if report.divergences:
        lines.append(f"FAIL: {len(report.divergences)} divergence(s)")
        for divergence in report.divergences:
            lines.append(f"  - {divergence}")
    else:
        lines.append(
            "PASS: identical final memory state, sequential committed "
            "dataflow, and timing-independent violation facts across all "
            "schemes"
        )
    return "\n".join(lines)
