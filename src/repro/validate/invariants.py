"""Runtime protocol invariant checker (an engine observation hook).

Attached to a :class:`~repro.core.engine.Simulation` via its ``hook``
parameter, the checker re-derives the protocol contracts of Section 3.3
from live engine state and raises :class:`InvariantViolation` at the
first event after which any of them fails:

* **Directory order** — every word's version list in the
  :class:`~repro.tls.versions.VersionDirectory` is strictly sorted by
  producer task ID, and every reader record is consistent: the consumed
  version precedes the reader, still exists (or is architectural), and
  the reader is still speculative (committed readers are forgotten,
  squashed readers purged).
* **Commit sequencing** — tasks are committed exactly in task-ID order:
  a task is ``COMMITTED`` iff its ID is below the controller's
  ``next_to_commit``, and the token holder is the next ``DONE`` task.
* **Eager AMM merge** — commit leaves no committed-dirty line behind in
  any cache and no overflowed version of a committed task: the merge
  happened entirely inside the token hold (Figure 6-(a)).
* **Lazy AMM merge** — main memory only ever holds committed versions
  (the MROB keeps speculative state out of memory), and by loop end the
  VCL has merged every committed version exactly once: the final memory
  image equals the directory's last-writer image, and newest-wins
  write-back ordering means no version is merged over a newer one.
* **FMM lifecycle** — undo-log (MHB) entries exist only while their
  overwriting task is live (freed at its commit, replayed away at its
  squash); after a squash-recovery replay neither memory, the caches,
  nor the directory hold any version of a task that is back to
  ``PENDING`` — the observable outcome of replaying the distributed MHB
  in strict reverse task order. AMM schemes must never touch the MHB,
  and FMM must never use the AMM overflow area.
* **Buffer separation** — SingleT processors hold at most one
  speculative task; MultiT&SV processors hold at most one locally
  created speculative version per line; no cache holds duplicate
  (line, task) entries or versions of squashed (``PENDING``) tasks.
* **Cycle conservation** — no processor's cycle account ever exceeds
  elapsed simulated time, and at loop end every account sums exactly to
  the run's total cycles (the Figures 9-11 stacked bars partition time).

Cheap monotonicity checks run after *every* event; the full state sweep
(directory, memory, caches, logs) runs every ``deep_every`` events and
always at loop end, keeping checked runs affordable on real workloads.
The checker never mutates engine state, so a checked run is bit-identical
to an unchecked one (asserted by ``tests/test_runner.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.hooks import SimulationHook
from repro.core.taxonomy import MergePolicy, TaskPolicy
from repro.errors import ProtocolError
from repro.memsys.cache import ARCH_TASK_ID
from repro.tls.task import TaskState

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.engine import Simulation
    from repro.core.results import SimulationResult

#: Default deep-sweep period (events). Cheap checks run on every event.
DEFAULT_DEEP_EVERY = 128

_TIME_EPS = 1e-6


class InvariantViolation(ProtocolError):
    """A protocol invariant failed during a checked simulation run."""


class InvariantChecker(SimulationHook):
    """Asserts protocol invariants on live engine state (see module doc)."""

    def __init__(self, deep_every: int = DEFAULT_DEEP_EVERY) -> None:
        if deep_every < 1:
            raise ValueError(f"deep_every must be >= 1, got {deep_every}")
        self.deep_every = deep_every
        self.events_checked = 0
        self.deep_sweeps = 0
        self._countdown = deep_every
        self._last_now = 0.0
        self._last_next_to_commit = 0

    # ------------------------------------------------------------------
    # Hook callbacks
    # ------------------------------------------------------------------
    def on_start(self, sim: "Simulation") -> None:
        """Capture the workload facts the invariants are checked against."""
        self._last_now = 0.0
        self._last_next_to_commit = sim.commit.next_to_commit

    def after_event(self, sim: "Simulation", now: float) -> None:
        """Run the cheap per-event checks; deep-sweep every ``deep_every``."""
        self.events_checked += 1
        self._check_cheap(sim, now)
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self.deep_every
            self.deep_check(sim)

    def on_finish(self, sim: "Simulation", result: "SimulationResult") -> None:
        """Run the full end-of-loop sweep."""
        self.deep_check(sim)
        self._check_finish(sim, result)

    # ------------------------------------------------------------------
    # Cheap per-event checks
    # ------------------------------------------------------------------
    def _fail(self, sim: "Simulation", message: str) -> None:
        raise InvariantViolation(
            f"[{sim.scheme.name} / {sim.workload.name} @ t={sim.now:.1f}, "
            f"event {self.events_checked}] {message}"
        )

    def _check_cheap(self, sim: "Simulation", now: float) -> None:
        if now < self._last_now - _TIME_EPS:
            self._fail(sim, f"time ran backwards: {now} < {self._last_now}")
        self._last_now = now

        commit = sim.commit
        nxt = commit.next_to_commit
        if nxt < self._last_next_to_commit:
            self._fail(sim, f"commit pointer moved backwards: "
                            f"{nxt} < {self._last_next_to_commit}")
        self._last_next_to_commit = nxt
        in_flight = commit.in_flight
        if in_flight is not None:
            if in_flight != nxt:
                self._fail(sim, f"token held by task {in_flight}, but "
                                f"task {nxt} must commit next")
            holder = sim.runs[in_flight]
            if holder.state is not TaskState.DONE:
                self._fail(sim, f"token holder {in_flight} is "
                                f"{holder.state}, not done")

        # Accrued cycles can never exceed elapsed simulated time (parked
        # intervals are only credited when they close). Once the loop has
        # finished, accounts are closed at the loop end instead, which the
        # Lazy AMM final merge can push past the last event's timestamp.
        bound = sim.total_cycles if sim.finished else now
        for proc in sim.procs:
            total = proc.account.total()
            if total > bound + _TIME_EPS:
                self._fail(sim, f"P{proc.proc_id} accounted {total} cycles "
                                f"by time {bound}")

    # ------------------------------------------------------------------
    # Deep state sweep
    # ------------------------------------------------------------------
    def deep_check(self, sim: "Simulation") -> None:
        """Sweep directory, memory, caches, overflow, and undo logs."""
        self.deep_sweeps += 1
        self._check_commit_states(sim)
        self._check_directory(sim)
        self._check_memory(sim)
        self._check_buffers(sim)

    def _check_commit_states(self, sim: "Simulation") -> None:
        nxt = sim.commit.next_to_commit
        for run in sim.runs.values():
            committed = run.state is TaskState.COMMITTED
            if committed != (run.task_id < nxt):
                self._fail(sim, f"task {run.task_id} is {run.state} but "
                                f"commit pointer is at {nxt} — commits must "
                                f"be strictly sequential by task ID")

    def _check_directory(self, sim: "Simulation") -> None:
        runs = sim.runs
        for word, producers, readers in sim.directory.iter_states():
            prev = ARCH_TASK_ID
            for producer in producers:
                if producer <= prev:
                    self._fail(sim, f"word {word:#x}: version list "
                                    f"{producers} not strictly sorted")
                prev = producer
                run = runs.get(producer)
                if run is None:
                    self._fail(sim, f"word {word:#x}: version of unknown "
                                    f"task {producer}")
                if run.state is TaskState.PENDING:
                    self._fail(sim, f"word {word:#x}: version of squashed "
                                    f"task {producer} survived its purge")
            for reader, seen in readers.items():
                state = runs[reader].state
                if state is TaskState.COMMITTED:
                    self._fail(sim, f"word {word:#x}: committed task "
                                    f"{reader} still recorded as a reader")
                if state is TaskState.PENDING:
                    self._fail(sim, f"word {word:#x}: squashed task "
                                    f"{reader} still recorded as a reader")
                if seen >= reader:
                    self._fail(sim, f"word {word:#x}: reader {reader} "
                                    f"consumed non-earlier version {seen}")
                if seen != ARCH_TASK_ID and not sim.directory.has_version(
                        word, seen):
                    self._fail(sim, f"word {word:#x}: reader {reader} "
                                    f"consumed version {seen}, which no "
                                    f"longer exists")

    def _check_memory(self, sim: "Simulation") -> None:
        architectural = sim.scheme.merge_policy.is_architectural
        runs = sim.runs
        for word, producer in sim.memory.items():
            if producer == ARCH_TASK_ID:
                continue
            state = runs[producer].state
            if architectural and state is not TaskState.COMMITTED:
                self._fail(sim, f"word {word:#x}: memory holds version of "
                                f"{state} task {producer} under AMM — only "
                                f"committed state may merge")
            if state is TaskState.PENDING:
                self._fail(sim, f"word {word:#x}: memory holds version of "
                                f"squashed task {producer} — MHB replay "
                                f"must have restored it")

    def _check_buffers(self, sim: "Simulation") -> None:
        scheme = sim.scheme
        merge = scheme.merge_policy
        runs = sim.runs
        for proc in sim.procs:
            if (scheme.task_policy is TaskPolicy.SINGLE_T
                    and len(proc.speculative_resident()) > 1):
                self._fail(sim, f"P{proc.proc_id} buffers "
                                f"{sorted(proc.resident)} — SingleT holds "
                                f"one speculative task at a time")
            spec_owners: dict[int, set[int]] = {}
            for cache in (proc.l1, proc.l2):
                seen: set[tuple[int, int]] = set()
                resident = 0
                for entry in cache:
                    resident += 1
                    key = (entry.line_addr, entry.task_id)
                    if key in seen:
                        self._fail(sim, f"{cache.name}: duplicate entry for "
                                        f"line {entry.line_addr:#x} task "
                                        f"{entry.task_id}")
                    seen.add(key)
                    if entry.task_id == ARCH_TASK_ID:
                        continue
                    if runs[entry.task_id].state is TaskState.PENDING:
                        self._fail(sim, f"{cache.name}: line of squashed "
                                        f"task {entry.task_id} survived "
                                        f"invalidation")
                    if (merge is MergePolicy.EAGER_AMM and entry.committed
                            and entry.dirty):
                        self._fail(sim, f"{cache.name}: committed dirty "
                                        f"line {entry.line_addr:#x} of task "
                                        f"{entry.task_id} — Eager AMM "
                                        f"merges inside the token hold")
                    if entry.speculative and entry.dirty:
                        spec_owners.setdefault(entry.line_addr,
                                               set()).add(entry.task_id)
                if resident != len(cache):
                    self._fail(sim, f"{cache.name}: resident count "
                                    f"{len(cache)} != {resident} entries")

            for line, task, committed in proc.overflow.items():
                if merge is MergePolicy.FMM:
                    self._fail(sim, f"P{proc.proc_id}: FMM spilled line "
                                    f"{line:#x} to the AMM overflow area")
                state = runs[task].state
                if state is TaskState.PENDING:
                    self._fail(sim, f"P{proc.proc_id}: overflow holds line "
                                    f"of squashed task {task}")
                if committed != (state is TaskState.COMMITTED):
                    self._fail(sim, f"P{proc.proc_id}: overflow commit flag "
                                    f"for task {task} ({committed}) "
                                    f"disagrees with its state ({state})")
                if (merge is MergePolicy.EAGER_AMM
                        and state is TaskState.COMMITTED):
                    self._fail(sim, f"P{proc.proc_id}: overflow still holds "
                                    f"line {line:#x} of committed task "
                                    f"{task} under Eager AMM")
                if not committed:
                    spec_owners.setdefault(line, set()).add(task)

            if scheme.task_policy is not TaskPolicy.MULTI_T_MV:
                for line, owners in spec_owners.items():
                    if len(owners) > 1:
                        self._fail(sim, f"P{proc.proc_id}: line {line:#x} "
                                        f"has speculative versions from "
                                        f"tasks {sorted(owners)} — "
                                        f"{scheme.task_policy} allows one")

            for entry in proc.undolog.entries():
                if merge is not MergePolicy.FMM:
                    self._fail(sim, f"P{proc.proc_id}: AMM scheme wrote "
                                    f"undo-log entries")
                owner_state = runs[entry.overwriting_task].state
                if owner_state is TaskState.COMMITTED:
                    self._fail(sim, f"P{proc.proc_id}: log entry of "
                                    f"committed task {entry.overwriting_task}"
                                    f" was not freed at commit")
                if owner_state is TaskState.PENDING:
                    self._fail(sim, f"P{proc.proc_id}: log entry of "
                                    f"squashed task {entry.overwriting_task}"
                                    f" was not replayed during recovery")

    # ------------------------------------------------------------------
    # End-of-run checks
    # ------------------------------------------------------------------
    def _check_finish(self, sim: "Simulation",
                      result: "SimulationResult") -> None:
        commits = [tid for tid, _s, _e in sim.commit.stats.wavefront]
        if commits != list(range(sim.commit.n_tasks)):
            self._fail(sim, f"commit wavefront {commits} is not the strict "
                            f"task sequence")

        # Lazy AMM: by loop end the VCL (displacement merges + the final
        # parallel merge) has merged every committed version exactly once —
        # the memory image equals the directory's last-writer image, and
        # since write-backs are newest-wins, no merge clobbered a newer one.
        final = sim.directory.final_image()
        image = sim.memory.image()
        if image != final:
            missing = {w: p for w, p in final.items() if image.get(w) != p}
            extra = {w: p for w, p in image.items() if w not in final}
            self._fail(sim, f"final memory image diverges from the "
                            f"directory last-writer image: "
                            f"unmerged/stale={dict(list(missing.items())[:5])}"
                            f" spurious={dict(list(extra.items())[:5])}")

        for proc in sim.procs:
            for line, task, _committed in proc.overflow.items():
                self._fail(sim, f"P{proc.proc_id}: overflow line {line:#x} "
                                f"of task {task} never merged by loop end")
            if len(proc.undolog) != 0:
                self._fail(sim, f"P{proc.proc_id}: {len(proc.undolog)} "
                                f"undo-log entries live after loop end")
            total = proc.account.total()
            if abs(total - result.total_cycles) > max(
                    _TIME_EPS, 1e-9 * result.total_cycles):
                self._fail(sim, f"P{proc.proc_id} cycle account sums to "
                                f"{total}, total cycles are "
                                f"{result.total_cycles}")
