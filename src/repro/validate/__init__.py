"""Validation subsystem: runtime invariant checking + conformance oracle.

Two layers prove that all taxonomy points implement the *same*
architectural semantics with different timing (the premise of the paper's
Figures 9-11):

* :class:`~repro.validate.invariants.InvariantChecker` — a
  :class:`~repro.core.hooks.SimulationHook` that asserts the protocol
  invariants of Section 3.3 after every engine event (directory order,
  commit sequencing, per-scheme buffer rules, undo-log lifecycle, cycle
  conservation). Zero overhead when not attached.
* :func:`~repro.validate.oracle.run_conformance` — a differential oracle
  that runs one workload under every evaluated scheme (through the
  :class:`~repro.runner.SweepRunner` fan-out) and asserts semantic
  equivalence: identical final memory state, identical committed
  read->producer dataflow, and timing-independent violation facts.

``repro-tls validate`` drives both; the CI ``validate-smoke`` job runs
them on every push.
"""

from repro.validate.invariants import InvariantChecker, InvariantViolation
from repro.validate.oracle import (
    ConformanceReport,
    Divergence,
    SchemeOutcome,
    potential_raw_victims,
    render_conformance_report,
    run_conformance,
)

__all__ = [
    "ConformanceReport",
    "Divergence",
    "InvariantChecker",
    "InvariantViolation",
    "SchemeOutcome",
    "potential_raw_victims",
    "render_conformance_report",
    "run_conformance",
]
