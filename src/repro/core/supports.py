"""Hardware supports required by each buffering scheme (Tables 1 and 2).

The paper's complexity argument is structural: each taxonomy point needs a
specific set of hardware supports, and the supports themselves can be ranked
by implementation difficulty. This module encodes Table 1 (the supports),
Table 2 (the upgrade path with its benefits and added supports), and the
Section 3.3.5 complexity ordering, so the analysis harness can regenerate
both tables and the tests can assert them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.taxonomy import MergePolicy, Scheme, TaskPolicy


class Support(enum.Enum):
    """One hardware support from Table 1 of the paper."""

    CTID = "Cache Task ID"
    CRL = "Cache Retrieval Logic"
    MTID = "Memory Task ID"
    VCL = "Version Combining Logic"
    ULOG = "Undo Log"

    def __str__(self) -> str:
        return self.value


#: Table 1 — description of each support.
SUPPORT_DESCRIPTIONS: dict[Support, str] = {
    Support.CTID: (
        "Storage and checking logic for a task-ID field in each cache line"
    ),
    Support.CRL: (
        "Advanced logic in the cache to service external requests for versions"
    ),
    Support.MTID: (
        "Task ID for each speculative variable in memory and needed "
        "comparison logic"
    ),
    Support.VCL: "Logic for combining/invalidating committed versions",
    Support.ULOG: "Logic and storage to support logging",
}

#: Relative implementation difficulty used for the Section 3.3.5 ordering.
#: CRL is a local cache change; VCL needs global protocol changes; MTID is
#: "arguably more complex than VCL"; ULOG adds logging storage on top.
_SUPPORT_WEIGHT: dict[Support, int] = {
    Support.CTID: 1,
    Support.CRL: 1,
    Support.VCL: 3,
    Support.MTID: 4,
    Support.ULOG: 3,
}


def required_supports(scheme: Scheme) -> frozenset[Support]:
    """The supports a scheme needs beyond a plain cache hierarchy.

    Follows Section 3.3:

    * SingleT Eager AMM needs nothing from Table 1.
    * MultiT (SV or MV) needs CTID; MultiT&MV additionally needs CRL.
    * Lazy AMM needs CTID plus VCL (the paper lists VCL-or-MTID and uses
      CTID for version ordering; we take the VCL option as the paper's
      Table 2 does).
    * FMM needs CTID (even for SingleT), MTID (VCL does not work under
      FMM), and ULOG — unless the log is built in software (FMM.Sw),
      which drops ULOG.
    """
    supports: set[Support] = set()
    if scheme.task_policy in (TaskPolicy.MULTI_T_SV, TaskPolicy.MULTI_T_MV):
        supports.add(Support.CTID)
    if scheme.task_policy is TaskPolicy.MULTI_T_MV:
        supports.add(Support.CRL)
    if scheme.merge_policy is MergePolicy.LAZY_AMM:
        supports.add(Support.CTID)
        supports.add(Support.VCL)
    if scheme.merge_policy is MergePolicy.FMM:
        supports.add(Support.CTID)
        supports.add(Support.MTID)
        if not scheme.software_log:
            supports.add(Support.ULOG)
    return frozenset(supports)


def complexity_score(scheme: Scheme) -> int:
    """A coarse numeric complexity rank consistent with Section 3.3.5.

    Only the ordering matters; the absolute value is the sum of per-support
    weights. The paper's claims that follow from this scoring are asserted
    in the test suite:

    * MultiT&MV Eager AMM is less complex than SingleT Lazy AMM.
    * MultiT&MV Lazy AMM is less complex than MultiT&MV FMM.
    """
    return sum(_SUPPORT_WEIGHT[s] for s in required_supports(scheme))


@dataclass(frozen=True)
class UpgradeStep:
    """One row of Table 2: an upgrade, its benefit, and its added supports."""

    upgrade_from: str
    upgrade_to: str
    benefit: str
    added_supports: frozenset[Support]


#: Table 2 — benefits obtained and support required for each upgrade.
UPGRADE_PATH: tuple[UpgradeStep, ...] = (
    UpgradeStep(
        "SingleT",
        "MultiT&SV",
        "Tolerate load imbalance without mostly-privatization access patterns",
        frozenset({Support.CTID}),
    ),
    UpgradeStep(
        "MultiT&SV",
        "MultiT&MV",
        "Tolerate load imbalance even with mostly-privatization access patterns",
        frozenset({Support.CRL}),
    ),
    UpgradeStep(
        "Eager AMM",
        "Lazy AMM",
        "Remove commit wavefront from critical path",
        frozenset({Support.CTID, Support.VCL}),
    ),
    UpgradeStep(
        "Lazy AMM",
        "FMM",
        "Faster version commit but slower version recovery",
        frozenset({Support.ULOG, Support.MTID}),
    ),
)


def shaded_region_argument() -> str:
    """Reproduce the Section 3.3.4 argument for shading SingleT/MultiT&SV FMM.

    Under FMM, every version in the caches must carry a task-ID tag (the
    producer ID must be saved into the MHB when a version is overwritten),
    so CTID is required even with a single speculative task per processor.
    SingleT FMM therefore needs nearly as much hardware as MultiT&SV FMM
    without its benefits, and likewise MultiT&SV FMM relative to
    MultiT&MV FMM.
    """
    single_t_fmm = frozenset({Support.CTID, Support.MTID, Support.ULOG})
    multi_t_mv_fmm = required_supports(
        Scheme(TaskPolicy.MULTI_T_MV, MergePolicy.FMM)
    )
    extra = multi_t_mv_fmm - single_t_fmm
    return (
        "SingleT FMM already requires CTID, MTID and ULOG; upgrading all the "
        f"way to MultiT&MV FMM only adds {sorted(s.name for s in extra)}. "
        "The shaded boxes pay nearly full FMM hardware cost for none of the "
        "multi-task benefit."
    )
