"""Structured event tracing for simulation runs.

A :class:`TraceRecorder` passed to :class:`~repro.core.engine.Simulation`
captures the protocol-level events of a run — task starts and completions,
commit-token holds, violations, squashes, stall transitions — as an ordered
list of typed records. The trace powers debugging, the timeline renderings,
and a family of tests that assert protocol-order invariants ("a task
commits only after it finished", "commits are totally ordered", "every
squashed attempt is eventually re-executed").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class TraceEvent(enum.Enum):
    """Protocol-level event kinds emitted by the engine."""

    TASK_START = "task-start"
    TASK_DONE = "task-done"
    COMMIT_BEGIN = "commit-begin"
    COMMIT_DONE = "commit-done"
    VIOLATION = "violation"
    TASK_SQUASHED = "task-squashed"
    SV_STALL = "sv-stall"
    SV_RESUME = "sv-resume"
    OVERFLOW_SPILL = "overflow-spill"
    UNDOLOG_APPEND = "undolog-append"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class TraceRecord:
    """One traced event: what, when, which task, where."""

    event: TraceEvent
    time: float
    task_id: int
    proc_id: int | None = None
    #: Event-specific detail (e.g. the blocking task of an SV stall, the
    #: first victim of a violation).
    detail: int | None = None


class TraceRecorder:
    """Accumulates :class:`TraceRecord` entries in emission order."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def emit(self, event: TraceEvent, time: float, task_id: int,
             proc_id: int | None = None, detail: int | None = None) -> None:
        """Append one record (no-op cost when no recorder is attached)."""
        self._records.append(TraceRecord(event, time, task_id, proc_id,
                                         detail))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def records(self, event: TraceEvent | None = None,
                task_id: int | None = None) -> list[TraceRecord]:
        """Records filtered by kind and/or task."""
        return [
            r for r in self._records
            if (event is None or r.event is event)
            and (task_id is None or r.task_id == task_id)
        ]

    def count(self, event: TraceEvent) -> int:
        """Number of recorded events of ``kind``."""
        return sum(1 for r in self._records if r.event is event)

    def task_history(self, task_id: int) -> list[TraceRecord]:
        """All events of one task, in time order."""
        return self.records(task_id=task_id)

    def commit_order(self) -> list[int]:
        """Task IDs in the order their commits completed."""
        return [r.task_id for r in self._records
                if r.event is TraceEvent.COMMIT_DONE]

    def attempts(self, task_id: int) -> int:
        """Number of execution attempts of a task (1 + squashes)."""
        return sum(1 for r in self._records
                   if r.event is TraceEvent.TASK_START
                   and r.task_id == task_id)

    def verify_protocol_order(self) -> None:
        """Assert the fundamental ordering invariants of the protocol.

        Raises :class:`AssertionError` on the first inconsistency; intended
        for tests and debugging, not hot paths.
        """
        commits = self.commit_order()
        assert commits == sorted(commits), "commits out of task order"
        assert len(commits) == len(set(commits)), "task committed twice"
        done_times: dict[int, float] = {}
        for record in self._records:
            if record.event is TraceEvent.TASK_DONE:
                done_times[record.task_id] = record.time
            elif record.event is TraceEvent.TASK_SQUASHED:
                done_times.pop(record.task_id, None)
            elif record.event is TraceEvent.COMMIT_BEGIN:
                assert record.task_id in done_times, (
                    f"task {record.task_id} commits before finishing"
                )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)
