"""The paper's two-axis taxonomy of speculative-state buffering approaches.

The taxonomy (Figure 2-(a) of the paper) classifies buffering schemes along:

* **Separation of task state** (:class:`TaskPolicy`) — what a single
  processor's buffer can hold: one speculative task (``SINGLE_T``), several
  tasks but a single version of any variable (``MULTI_T_SV``), or several
  tasks with multiple versions of the same variable (``MULTI_T_MV``).
* **Merging of task state** (:class:`MergePolicy`) — when versions reach
  main memory: strictly at commit (``EAGER_AMM``), lazily after commit
  (``LAZY_AMM``), or at any time with undo logging (``FMM``).

:class:`Scheme` pairs one value from each axis (plus the software-logging
variant of FMM). The module also records the paper's Figure 4 mapping of
previously-published TLS systems onto the taxonomy and the Figure 8 map of
application characteristics that limit each scheme.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class TaskPolicy(enum.Enum):
    """How much speculative task state one processor's buffer separates."""

    SINGLE_T = "SingleT"
    MULTI_T_SV = "MultiT&SV"
    MULTI_T_MV = "MultiT&MV"

    def __str__(self) -> str:
        return self.value


class MergePolicy(enum.Enum):
    """When task state merges with the coherent main-memory state."""

    EAGER_AMM = "Eager AMM"
    LAZY_AMM = "Lazy AMM"
    FMM = "FMM"

    def __str__(self) -> str:
        return self.value

    @property
    def is_architectural(self) -> bool:
        """True for AMM policies, where main memory holds only safe data."""
        return self in (MergePolicy.EAGER_AMM, MergePolicy.LAZY_AMM)


@dataclass(frozen=True)
class Scheme:
    """One point in the taxonomy, optionally with software undo logging.

    ``software_log`` only makes sense for FMM schemes: it models the paper's
    FMM.Sw variant, where the MHB is built by plain instructions added to the
    application instead of by ULOG hardware.
    """

    task_policy: TaskPolicy
    merge_policy: MergePolicy
    software_log: bool = False

    def __post_init__(self) -> None:
        if self.software_log and self.merge_policy is not MergePolicy.FMM:
            raise ConfigurationError(
                "software_log (FMM.Sw) only applies to FMM schemes, "
                f"not {self.merge_policy}"
            )

    @property
    def name(self) -> str:
        """Short display name, e.g. ``'MultiT&MV Lazy AMM'`` or ``'MultiT&MV FMM.Sw'``."""
        merge = "FMM.Sw" if self.software_log else str(self.merge_policy)
        return f"{self.task_policy} {merge}"

    @property
    def is_shaded(self) -> bool:
        """True for the taxonomy boxes the paper shades as uninteresting.

        SingleT FMM and MultiT&SV FMM need nearly all the hardware of
        MultiT&MV FMM (CTID is required even for a single task under FMM)
        without its benefits (Section 3.3.4).
        """
        return self.merge_policy is MergePolicy.FMM and self.task_policy in (
            TaskPolicy.SINGLE_T,
            TaskPolicy.MULTI_T_SV,
        )

    def __str__(self) -> str:
        return self.name


# The eight schemes the paper evaluates (the six AMM boxes of Figure 2-(a)
# plus MultiT&MV FMM and its software-logging variant).
SINGLE_T_EAGER = Scheme(TaskPolicy.SINGLE_T, MergePolicy.EAGER_AMM)
SINGLE_T_LAZY = Scheme(TaskPolicy.SINGLE_T, MergePolicy.LAZY_AMM)
MULTI_T_SV_EAGER = Scheme(TaskPolicy.MULTI_T_SV, MergePolicy.EAGER_AMM)
MULTI_T_SV_LAZY = Scheme(TaskPolicy.MULTI_T_SV, MergePolicy.LAZY_AMM)
MULTI_T_MV_EAGER = Scheme(TaskPolicy.MULTI_T_MV, MergePolicy.EAGER_AMM)
MULTI_T_MV_LAZY = Scheme(TaskPolicy.MULTI_T_MV, MergePolicy.LAZY_AMM)
MULTI_T_MV_FMM = Scheme(TaskPolicy.MULTI_T_MV, MergePolicy.FMM)
MULTI_T_MV_FMM_SW = Scheme(TaskPolicy.MULTI_T_MV, MergePolicy.FMM, software_log=True)

#: All schemes evaluated in the paper, in the order of Figure 9 / Figure 10.
EVALUATED_SCHEMES: tuple[Scheme, ...] = (
    SINGLE_T_EAGER,
    SINGLE_T_LAZY,
    MULTI_T_SV_EAGER,
    MULTI_T_SV_LAZY,
    MULTI_T_MV_EAGER,
    MULTI_T_MV_LAZY,
    MULTI_T_MV_FMM,
    MULTI_T_MV_FMM_SW,
)

#: The six AMM schemes of Figures 9 and 11, in bar order (E/L per policy).
AMM_SCHEMES: tuple[Scheme, ...] = (
    SINGLE_T_EAGER,
    SINGLE_T_LAZY,
    MULTI_T_SV_EAGER,
    MULTI_T_SV_LAZY,
    MULTI_T_MV_EAGER,
    MULTI_T_MV_LAZY,
)


def scheme_from_name(name: str) -> Scheme:
    """Look up an evaluated scheme by its display name (case-insensitive)."""
    wanted = name.strip().lower()
    for scheme in EVALUATED_SCHEMES:
        if scheme.name.lower() == wanted:
            return scheme
    known = ", ".join(s.name for s in EVALUATED_SCHEMES)
    raise ConfigurationError(f"unknown scheme {name!r}; known schemes: {known}")


@dataclass(frozen=True)
class PriorScheme:
    """A previously-published TLS system and its taxonomy classification.

    Reproduces Figure 4 of the paper. ``notes`` captures where the scheme
    buffers speculative state or any caveat the paper raises.
    """

    name: str
    task_policy: TaskPolicy
    merge_policy: MergePolicy | None
    notes: str = ""

    @property
    def is_coarse_recovery(self) -> bool:
        return self.merge_policy is None


#: Figure 4 — mapping of existing schemes onto the taxonomy.  A ``None``
#: merge policy marks the coarse-recovery class (LRPD, SUDS, ...), which the
#: paper treats separately, and DDSM, where Eager/Lazy does not apply.
PRIOR_SCHEMES: tuple[PriorScheme, ...] = (
    PriorScheme(
        "Multiscalar (hierarchical ARB)", TaskPolicy.SINGLE_T, MergePolicy.EAGER_AMM,
        notes="speculative state in one stage of the global ARB",
    ),
    PriorScheme(
        "Superthreaded", TaskPolicy.SINGLE_T, MergePolicy.EAGER_AMM,
        notes="speculative state in the Memory Buffer",
    ),
    PriorScheme(
        "MDT", TaskPolicy.SINGLE_T, MergePolicy.EAGER_AMM,
        notes="speculative state in the L1",
    ),
    PriorScheme(
        "Marcuello99", TaskPolicy.SINGLE_T, MergePolicy.EAGER_AMM,
        notes="register file plus shared Multi-Value cache",
    ),
    PriorScheme(
        "Multiscalar (SVC)", TaskPolicy.SINGLE_T, MergePolicy.LAZY_AMM,
        notes="committed versions linger in caches; VOL ordered list",
    ),
    PriorScheme(
        "DDSM", TaskPolicy.SINGLE_T, None,
        notes="one task per processor per speculative section; "
        "Eager/Lazy distinction does not apply",
    ),
    PriorScheme(
        "Hydra", TaskPolicy.MULTI_T_MV, MergePolicy.EAGER_AMM,
        notes="buffers between L1 and L2; evaluation in the paper used as "
        "many buffers as processors, making it effectively SingleT",
    ),
    PriorScheme(
        "Steffan97&00", TaskPolicy.MULTI_T_MV, MergePolicy.EAGER_AMM,
        notes="also describes a MultiT&SV design that stalls on a second "
        "local speculative version",
    ),
    PriorScheme(
        "Steffan97&00 (SV design)", TaskPolicy.MULTI_T_SV, MergePolicy.EAGER_AMM,
        notes="cache not designed to hold multiple speculative versions",
    ),
    PriorScheme(
        "Cintra00", TaskPolicy.MULTI_T_MV, MergePolicy.EAGER_AMM,
        notes="speculative state in L1/L2",
    ),
    PriorScheme(
        "Prvulovic01", TaskPolicy.MULTI_T_MV, MergePolicy.LAZY_AMM,
        notes="committed versions merged on displacement or external request",
    ),
    PriorScheme(
        "Zhang99&T", TaskPolicy.MULTI_T_MV, MergePolicy.FMM,
        notes="MHB kept in hardware logs",
    ),
    PriorScheme(
        "Garzaran01", TaskPolicy.MULTI_T_MV, MergePolicy.FMM,
        notes="MHB kept in software log structures",
    ),
    PriorScheme(
        "LRPD", TaskPolicy.SINGLE_T, None,
        notes="coarse recovery: state reverts to the start of the section",
    ),
    PriorScheme(
        "SUDS", TaskPolicy.SINGLE_T, None,
        notes="coarse recovery: software copying creates versions",
    ),
)


class LimitingCharacteristic(enum.Enum):
    """Application characteristics that limit performance (Figure 8)."""

    LOAD_IMBALANCE = "task load imbalance"
    LOAD_IMBALANCE_WITH_PRIVATIZATION = (
        "task load imbalance + mostly-privatization patterns"
    )
    COMMIT_WAVEFRONT = "task commit wavefront in critical path"
    CACHE_OVERFLOW = "cache overflow due to capacity or conflicts"
    FREQUENT_RECOVERIES = "frequent recoveries from dependence violations"

    def __str__(self) -> str:
        return self.value


def limiting_characteristics(scheme: Scheme) -> frozenset[LimitingCharacteristic]:
    """Application characteristics expected to limit ``scheme`` (Figure 8).

    All AMM schemes suffer under cache overflow; Eager schemes additionally
    expose the commit wavefront; SingleT adds plain load imbalance and
    MultiT&SV adds imbalance combined with privatization patterns; FMM
    suffers under frequent recoveries.
    """
    limits: set[LimitingCharacteristic] = set()
    if scheme.merge_policy.is_architectural:
        limits.add(LimitingCharacteristic.CACHE_OVERFLOW)
    if scheme.merge_policy is MergePolicy.EAGER_AMM:
        limits.add(LimitingCharacteristic.COMMIT_WAVEFRONT)
    if scheme.merge_policy is MergePolicy.FMM:
        limits.add(LimitingCharacteristic.FREQUENT_RECOVERIES)
    if scheme.task_policy is TaskPolicy.SINGLE_T:
        limits.add(LimitingCharacteristic.LOAD_IMBALANCE)
        limits.add(LimitingCharacteristic.LOAD_IMBALANCE_WITH_PRIVATIZATION)
    if scheme.task_policy is TaskPolicy.MULTI_T_SV:
        limits.add(LimitingCharacteristic.LOAD_IMBALANCE_WITH_PRIVATIZATION)
    return frozenset(limits)
