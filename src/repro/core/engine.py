"""Discrete-event simulation engine for TLS buffering schemes.

One :class:`Simulation` executes one workload on one machine under one
buffering scheme and produces a :class:`~repro.core.results.SimulationResult`.
The engine implements the behaviours Section 3.3 of the paper attributes to
each taxonomy point:

* **SingleT** — a processor that finishes a speculative task parks until the
  task commits, then claims the next task.
* **MultiT&SV** — a processor parks when a task is about to create a second
  local speculative version of a line, resuming when the first version's
  task becomes non-speculative.
* **MultiT&MV** — no version-support stalls; external reads pay CRL
  selection occupancy when several same-address versions are resident.
* **Eager AMM** — the commit token is held while all of the committing
  task's dirty lines (cache and overflow area) are written back to memory.
* **Lazy AMM** — commit passes the token after a constant latency;
  committed versions merge on displacement / external request through the
  VCL and in a parallel final-merge phase at the end of the loop.
* **FMM** — commit passes the token after a constant latency; overwritten
  versions are saved to the per-processor undo log (MHB) on a task's first
  write to a line; dirty lines displace freely to memory under MTID
  protection; squash recovery replays the MHB in strict reverse task order
  through (simulated) software handlers.

The engine processes one event per memory operation, so the global time
ordering of reads and writes across processors — which determines
violations — is preserved to memory-latency resolution.
"""

from __future__ import annotations

import os
import time
from bisect import bisect_right, insort
from typing import Any, Callable

from repro.core.config import MachineConfig
from repro.core.events import BucketQueue
from repro.core.results import SimulationResult, TaskTiming, TrafficStats
from repro.core.taxonomy import MergePolicy, Scheme, TaskPolicy
from repro.errors import ConfigurationError, SimulationError
from repro.memsys.address import WORDS_PER_LINE, line_of, words_of_line
from repro.memsys.cache import ARCH_TASK_ID, KEY_BIAS, KEY_SHIFT, CacheLine
from repro.memsys.mainmem import MainMemory
from repro.memsys.undolog import LogEntry
from repro.processor.processor import CycleCategory, Processor
from repro.tls.commit import CommitController
from repro.tls.scheduler import TaskScheduler
from repro.tls.task import (
    STEP_BUSY,
    STEP_READ,
    STEP_WRITE,
    TaskRun,
    TaskState,
    compile_steps,
)
from repro.core.hooks import SimulationHook
from repro.core.trace import TraceEvent, TraceRecorder
from repro.tls.versions import VersionDirectory
from repro.workloads.base import Workload

_MAX_EVENTS_DEFAULT = 50_000_000

#: Shift equivalents used by the batched drain loop's inlined fast paths:
#: ``line_of(word) == word >> _LINE_SHIFT`` for the power-of-two line size,
#: and the packed cache residency key from :mod:`repro.memsys.cache`.
_LINE_SHIFT = WORDS_PER_LINE.bit_length() - 1
assert 1 << _LINE_SHIFT == WORDS_PER_LINE
_KEY_SHIFT = KEY_SHIFT
assert KEY_BIAS == 2  # the inline fast paths hard-code the +2 bias

#: Version tag of the engine's timing model. Bump whenever a change alters
#: simulated timing or statistics: the on-disk result cache
#: (:mod:`repro.runner.cache`) keys every entry on this tag, so stale
#: results from an older engine are never replayed as current ones.
ENGINE_VERSION = "2"

#: Environment switch for the opt-in batch-drain kernel (engine-core v3):
#: any non-empty value other than "0"/"false"/"off" makes
#: :meth:`Simulation.run` dispatch unobserved runs through
#: :mod:`repro.core._kernel` instead of the in-class reference loop. The
#: kernel module mirrors the reference loop statement for statement and
#: is written in the mypyc-compilable subset, so an ahead-of-time
#: compiled build can shadow it; either way the simulated behaviour is
#: bit-identical (CI runs the golden corpus on both legs), which is why
#: flipping the switch requires no ENGINE_VERSION bump.
KERNEL_ENV = "REPRO_TLS_KERNEL"


def kernel_requested() -> bool:
    """True when :data:`KERNEL_ENV` asks for the opt-in drain kernel."""
    value = os.environ.get(KERNEL_ENV, "")
    return value.lower() not in ("", "0", "false", "off")


def kernel_info() -> dict[str, Any]:
    """Describe the kernel configuration (for bench reports and CI logs).

    ``enabled`` — whether :data:`KERNEL_ENV` selects the kernel path;
    ``compiled`` — whether the kernel module is an ahead-of-time
    compiled extension (False means the same Python source runs, which
    is still a valid A/B leg for byte-equality checks).
    """
    from repro.core import _kernel

    return {
        "enabled": kernel_requested(),
        "compiled": not _kernel.__file__.endswith(".py"),
    }


class Simulation:
    """One end-to-end run of a workload under a buffering scheme."""

    def __init__(
        self,
        machine: MachineConfig,
        scheme: Scheme,
        workload: Workload,
        *,
        allow_shaded: bool = False,
        high_level_patterns: bool = False,
        violation_granularity: str = "word",
        trace: "TraceRecorder | None" = None,
        hook: "SimulationHook | None" = None,
        max_events: int = _MAX_EVENTS_DEFAULT,
    ) -> None:
        if scheme.is_shaded and not allow_shaded:
            raise ConfigurationError(
                f"{scheme.name} is a shaded (uninteresting) taxonomy point; "
                "pass allow_shaded=True to simulate it anyway"
            )
        self.machine = machine
        self.scheme = scheme
        self.workload = workload
        self.costs = machine.costs
        self.max_events = max_events
        #: [16]'s High-Level Access Patterns support (excluded from the
        #: paper's base protocol; reproduced here as an optional
        #: extension): writes to declared mostly-private data allocate
        #: their line locally without fetching the previous version.
        self.high_level_patterns = high_level_patterns
        #: Optional structured event trace (see repro.core.trace).
        self.trace = trace
        #: Optional observation hook (see repro.core.hooks). ``None`` keeps
        #: the event loop free of any per-event work beyond one branch.
        self.hook = hook
        if violation_granularity not in ("word", "line"):
            raise ConfigurationError(
                f"violation_granularity must be 'word' or 'line', got "
                f"{violation_granularity!r}")
        #: "word" is the paper's base protocol ("squashes only on
        #: out-of-order RAWs to the same word"); "line" models the
        #: conservative designs that track at cache-line granularity and
        #: therefore also squash on false sharing.
        self.violation_granularity = violation_granularity

        self.procs = [Processor(p, machine) for p in range(machine.n_procs)]
        self.runs: dict[int, TaskRun] = {
            t.task_id: TaskRun(spec=t) for t in workload.tasks
        }
        self.scheduler = TaskScheduler(self.runs)
        self.commit = CommitController(len(workload.tasks))
        self.directory = VersionDirectory()
        self.memory = MainMemory(
            mtid_enabled=scheme.merge_policy is MergePolicy.FMM
        )

        # Event queue: (time, seq, bound method, args). The callback is
        # stored unwrapped with its arguments so the hot loop never
        # allocates a closure per event; the calendar buckets keep each
        # push/pop from ordering against every other pending event.
        self._events = BucketQueue()
        self._seq = 0
        self._events_processed = 0
        self._wall_clock_seconds = 0.0
        self.now = 0.0
        self._finished = False
        self.total_cycles = 0.0

        # Per-home-node memory bank occupancy (contention model).
        self._bank_free = [0.0] * machine.n_procs
        self._n_procs = machine.n_procs
        # Precomputed node-to-node latency tables: the mesh hop computation
        # costs a topology lookup plus coordinate math per access, and the
        # hot fetch paths ask for the same (requester, node) pairs millions
        # of times per run.
        n = machine.n_procs
        self._mem_lat = [
            [float(machine.memory_latency(r, h)) for h in range(n)]
            for r in range(n)
        ]
        self._remote_lat = [
            [float(machine.remote_cache_latency(r, o)) for o in range(n)]
            for r in range(n)
        ]
        # CMP shared L3: lines that have been brought on-package.
        self._l3_lines: set[int] | None = (
            set() if machine.lat_l3 is not None else None
        )
        # Pre-bound dispatch state (engine-core v2): the per-op handlers
        # branch on the scheme's taxonomy point and the machine's latency
        # constants millions of times per run, so enum comparisons and
        # attribute chains are resolved once here and the hot paths read
        # plain local/instance values.
        self._is_fmm = scheme.merge_policy is MergePolicy.FMM
        self._is_lazy = scheme.merge_policy is MergePolicy.LAZY_AMM
        self._is_eager = scheme.merge_policy is MergePolicy.EAGER_AMM
        self._is_single_t = scheme.task_policy is TaskPolicy.SINGLE_T
        self._is_sv = scheme.task_policy is TaskPolicy.MULTI_T_SV
        self._is_mv = scheme.task_policy is TaskPolicy.MULTI_T_MV
        self._line_gran = violation_granularity == "line"
        self._lat_l1f = float(machine.lat_l1)
        self._lat_l2f = float(machine.lat_l2)
        self._ipc = self.costs.ipc
        self._overflow_pen = self.costs.overflow_penalty
        self._crl_select = self.costs.crl_select
        self._vcl_combine = self.costs.vcl_combine
        self._ov_cap = self.costs.overflow_capacity_lines
        self._ov_excess = float(self.costs.overflow_excess_penalty)
        self._bank_service = self.costs.memory_bank_service
        # Procs with no runnable work, waiting for squash re-enqueues.
        self._idle_procs: set[int] = set()
        # In-flight op accounting (engine-core v3): flat per-processor
        # columns indexed by proc id, for exact attribution if the op is
        # aborted by a squash. A column set replaces the old proc->tuple
        # dict: the drain loop writes three floats and a flag instead of
        # hashing the proc id and allocating a tuple per event.
        self._inflight_start = [0.0] * n
        self._inflight_busy = [0.0] * n
        self._inflight_mem = [0.0] * n
        self._inflight_live = bytearray(n)
        # Compiled step columns (engine-core v3): each task's op list is
        # flattened once into parallel (kind, word, busy) arrays — see
        # repro.tls.task.compile_steps — so the hot loop advances a
        # cursor through flat columns instead of re-scanning and
        # re-coalescing the op tuples on every event.
        ipc = self.costs.ipc
        for run in self.runs.values():
            run.step_kind, run.step_word, run.step_busy = compile_steps(
                run.spec, ipc)
        # Opt-in drain kernel (resolved once per simulation so tests can
        # flip the environment switch between runs).
        self._use_kernel = kernel_requested()

        # Statistics.
        self.traffic = TrafficStats()
        self._violation_events = 0
        self._squashed_executions = 0
        self._wasted_busy = 0.0
        self._spec_task_integral = 0.0
        self._spec_task_count = 0
        self._spec_task_last_t = 0.0
        self._footprint_bytes: list[int] = []
        self._footprint_priv_words = 0
        self._footprint_total_words = 0

    @property
    def finished(self) -> bool:
        """True once the last task committed and accounting was closed."""
        return self._finished

    # ==================================================================
    # Event queue plumbing
    # ==================================================================
    def _schedule(self, when: float, fn: Callable[..., None],
                  args: tuple = ()) -> None:
        """Queue ``fn(*args, when)`` to run at simulated time ``when``."""
        if when < self.now - 1e-9:
            raise SimulationError(f"scheduling into the past: {when} < {self.now}")
        self._seq += 1
        self._events.push((when, self._seq, fn, args))

    def run(self) -> SimulationResult:
        """Execute the workload to completion and return the result.

        The event loop comes in two compiled-in variants — with and
        without an observation hook — selected once here, so an
        unobserved run's dispatch path carries no per-event hook test at
        all (attaching a hook swaps the dispatch loop rather than
        flipping a flag the loop would have to re-check).
        """
        started = time.perf_counter()
        for proc in self.procs:
            self._claim(proc, 0.0)
        hook = self.hook
        if hook is not None:
            hook.on_start(self)
        try:
            if hook is not None:
                self._drain_events_hooked(hook)
            elif self._use_kernel:
                from repro.core import _kernel

                _kernel.drain(self)
            else:
                self._drain_events()
        finally:
            self._wall_clock_seconds = time.perf_counter() - started
        result = self._build_result()
        if hook is not None:
            hook.on_finish(self, result)
        return result

    def _drain_events(self) -> None:
        """Hot batched dispatch loop (no hook attached) — engine-core v3.

        Reference implementation of the batch-drain kernel; the opt-in
        compiled path (:mod:`repro.core._kernel`, selected via
        :data:`KERNEL_ENV`) mirrors this loop statement for statement,
        and CI asserts both produce byte-identical results. Keep the two
        in lock-step when editing either.

        Structure: :meth:`BucketQueue.pop_batch
        <repro.core.events.BucketQueue.pop_batch>` hands over every
        event sharing the minimum timestamp in exact ``(when, seq)``
        order, so the clock write, queue probes, and policy flags are
        paid once per batch instead of once per event. Within the batch,
        the overwhelmingly common event — an op completion whose next
        step is a busy burst, an L1-resident read, or an L1-resident
        write — is executed inline against the flat state columns
        (compiled task steps, interned cache slots, interned directory
        rows, flat in-flight/accounting columns); every other case falls
        back to the same :meth:`_advance` / :meth:`_task_done` methods
        the hooked loop uses, so there is exactly one implementation of
        the protocol's hard cases. Op completions travel with
        ``fn=None`` (see :meth:`_schedule_op_done`); the inline path and
        :meth:`_op_done` are mutation-for-mutation identical, which is
        what keeps this rewrite bit-identical with no ENGINE_VERSION
        bump.
        """
        # Bind everything the loop touches to locals once.
        events = self._events
        pop_batch = events.pop_batch
        push = events.push
        max_events = self.max_events
        processed = self._events_processed
        procs = self.procs
        directory = self.directory
        dir_rows = directory._row
        dir_producers = directory._producers
        dir_readers = directory._readers
        dir_words = directory._words
        dstats = directory.stats
        l1_keys = [p.l1._key_slot for p in procs]
        l1_touch = [p.l1._touch for p in procs]
        l1_dirty = [p.l1._dirty for p in procs]
        l1_stats = [p.l1.stats for p in procs]
        accounts = [p.account._cycles for p in procs]
        inflight_start = self._inflight_start
        inflight_busy = self._inflight_busy
        inflight_mem = self._inflight_mem
        inflight_live = self._inflight_live
        lat_l1 = self._lat_l1f
        is_sv = self._is_sv
        # The inline read/write paths implement word-granularity
        # violation tracking only; the conservative line-granularity
        # mode takes the method path for every memory op.
        fast_rw = not self._line_gran
        try:
            while not self._finished:
                if not events:
                    raise SimulationError(
                        f"event queue empty before completion "
                        f"(committed {self.commit.next_to_commit}/"
                        f"{self.commit.n_tasks})"
                    )
                batch = pop_batch()
                when = batch[0][0]
                self.now = when
                for event in batch:
                    processed += 1
                    if processed > max_events:
                        raise SimulationError(
                            f"exceeded {self.max_events} events; "
                            f"likely livelock"
                        )
                    fn = event[2]
                    if fn is not None:
                        fn(*event[3], when)
                        if self._finished:
                            break
                        continue
                    # ---- op completion (inlined _op_done) ----
                    proc, epoch, run, attempt, busy, mem = event[3]
                    if proc.epoch != epoch or run.attempt != attempt:
                        continue  # aborted by a squash
                    pid = proc.proc_id
                    inflight_live[pid] = False
                    account = accounts[pid]
                    account[0] += busy   # CycleCategory.BUSY
                    account[1] += mem    # CycleCategory.MEMORY
                    run.attempt_busy += busy
                    # ---- advance (inlined) ----
                    kinds = run.step_kind
                    i = run.op_index
                    if i == len(kinds):
                        self._task_done(proc, run, when)
                        if self._finished:
                            break
                        continue
                    kind = kinds[i]
                    if kind == STEP_BUSY:
                        step_busy = run.step_busy[i]
                        run.op_index = i + 1
                        inflight_start[pid] = when
                        inflight_busy[pid] = step_busy
                        inflight_mem[pid] = 0.0
                        inflight_live[pid] = True
                        seq = self._seq + 1
                        self._seq = seq
                        push((when + step_busy, seq, None,
                              (proc, epoch, run, attempt, step_busy, 0.0)))
                        continue
                    if fast_rw:
                        word = run.step_word[i]
                        tid = run.spec.task_id
                        if kind == STEP_READ:
                            # version_for_read against the interned rows.
                            row = dir_rows.get(word)
                            if row is None:
                                producer = ARCH_TASK_ID
                            else:
                                producers = dir_producers[row]
                                idx = (bisect_right(producers, tid)
                                       if producers else 0)
                                producer = (producers[idx - 1] if idx
                                            else ARCH_TASK_ID)
                            line = word >> _LINE_SHIFT
                            slot = l1_keys[pid].get(
                                (line << _KEY_SHIFT) + producer + 2)
                            if slot is not None:
                                # L1 hit on the exact version: touch,
                                # record the read, complete at L1 latency.
                                l1_touch[pid][slot] = when
                                l1_stats[pid].hits += 1
                                dstats.reads += 1
                                if producer != tid:
                                    if producer != ARCH_TASK_ID:
                                        dstats.forwarded_reads += 1
                                    if row is None:
                                        row = len(dir_words)
                                        dir_rows[word] = row
                                        dir_producers.append([])
                                        dir_readers.append({tid: producer})
                                        dir_words.append(word)
                                    else:
                                        readers = dir_readers[row]
                                        previous = readers.get(tid)
                                        if (previous is None
                                                or producer < previous):
                                            readers[tid] = producer
                                    run.read_words.add(word)
                                observed = run.observed_reads
                                if word not in observed:
                                    observed[word] = producer
                                run.op_index = i + 1
                                inflight_start[pid] = when
                                inflight_busy[pid] = 0.0
                                inflight_mem[pid] = lat_l1
                                inflight_live[pid] = True
                                seq = self._seq + 1
                                self._seq = seq
                                push((when + lat_l1, seq, None,
                                      (proc, epoch, run, attempt,
                                       0.0, lat_l1)))
                                continue
                        elif not is_sv:
                            # Write hitting the task's own L1 version.
                            line = word >> _LINE_SHIFT
                            slot = l1_keys[pid].get(
                                (line << _KEY_SHIFT) + tid + 2)
                            if slot is not None:
                                l1_touch[pid][slot] = when
                                l1_stats[pid].hits += 1
                                l1_dirty[pid][slot] = 1
                                words = run.words_by_line.get(line)
                                if words is None:
                                    run.words_by_line[line] = {word}
                                else:
                                    words.add(word)
                                # record_write against the interned rows.
                                dstats.writes += 1
                                row = dir_rows.get(word)
                                if row is None:
                                    dir_rows[word] = len(dir_words)
                                    dir_producers.append([tid])
                                    dir_readers.append({})
                                    dir_words.append(word)
                                else:
                                    producers = dir_producers[row]
                                    idx = bisect_right(producers, tid)
                                    if idx == 0 or producers[idx - 1] != tid:
                                        insort(producers, tid)
                                    readers = dir_readers[row]
                                    if readers:
                                        violated = [
                                            reader
                                            for reader, seen
                                            in readers.items()
                                            if reader > tid and seen < tid
                                        ]
                                        if violated:
                                            dstats.violations += 1
                                            self._squash(min(violated), when)
                                run.op_index = i + 1
                                inflight_start[pid] = when
                                inflight_busy[pid] = 0.0
                                inflight_mem[pid] = lat_l1
                                inflight_live[pid] = True
                                seq = self._seq + 1
                                self._seq = seq
                                push((when + lat_l1, seq, None,
                                      (proc, epoch, run, attempt,
                                       0.0, lat_l1)))
                                continue
                    # Anything else — L1 miss, SV write, line-granularity
                    # mode, FMM first write, overflow refetch — takes the
                    # reference method path from the current step.
                    self._advance(proc, when)
                    if self._finished:
                        break
        finally:
            self._events_processed = processed

    def _drain_events_hooked(self, hook: "SimulationHook") -> None:
        """Batched dispatch loop variant with an observation hook.

        Identical semantics to :meth:`_drain_events`, with two
        differences: every event goes through the reference methods
        (no inline fast path — observed runs are not the hot path), and
        ``after_event`` fires after each event, including the one that
        finishes the simulation.
        """
        events = self._events
        pop_batch = events.pop_batch
        max_events = self.max_events
        processed = self._events_processed
        after_event = hook.after_event
        op_done = self._op_done
        try:
            while not self._finished:
                if not events:
                    raise SimulationError(
                        f"event queue empty before completion "
                        f"(committed {self.commit.next_to_commit}/"
                        f"{self.commit.n_tasks})"
                    )
                batch = pop_batch()
                when = batch[0][0]
                self.now = when
                for event in batch:
                    processed += 1
                    if processed > max_events:
                        raise SimulationError(
                            f"exceeded {self.max_events} events; "
                            f"likely livelock"
                        )
                    fn = event[2]
                    if fn is None:
                        op_done(*event[3], when)
                    else:
                        fn(*event[3], when)
                    after_event(self, when)
                    if self._finished:
                        break
        finally:
            self._events_processed = processed

    # ==================================================================
    # Task claiming and op processing
    # ==================================================================
    def _claim(self, proc: Processor, now: float) -> None:
        """Give ``proc`` its next task, or park it idle."""
        if proc.current is not None:
            raise SimulationError(f"P{proc.proc_id} claiming while running")
        run = self.scheduler.claim()
        if run is None:
            self._idle_procs.add(proc.proc_id)
            proc.park(now, CycleCategory.IDLE)
            return
        run.begin_attempt(proc.proc_id, now)
        proc.current = run
        proc.resident[run.task_id] = run
        self._spec_count_change(+1, now)
        if self.trace is not None:
            self.trace.emit(TraceEvent.TASK_START, now, run.task_id,
                            proc.proc_id)
        self._advance(proc, now)

    def _advance(self, proc: Processor, now: float) -> None:
        """Process the current task's next step, or complete the task.

        Reference implementation of one advance: the batched drain loops
        inline the common cases (busy burst, L1-resident read/write) and
        fall back here for everything else. Steps come from the compiled
        flat columns (:func:`~repro.tls.task.compile_steps`): compute
        instructions are already coalesced into single busy bursts that
        complete in one event, and memory operations are performed with
        no pending busy time, so violation interleavings and stall starts
        are observed at their true simulated times.
        """
        run = proc.current
        if run is None:
            raise SimulationError(f"P{proc.proc_id} advancing without a task")
        kinds = run.step_kind
        i = run.op_index
        if i == len(kinds):
            self._task_done(proc, run, now)
            return
        kind = kinds[i]
        if kind == STEP_BUSY:
            run.op_index = i + 1
            self._schedule_op_done(proc, run, now, busy=run.step_busy[i],
                                   mem=0.0)
            return
        word = run.step_word[i]
        if kind == STEP_WRITE and self._is_sv:
            blocker = self._sv_blocker(proc, run, word)
            if blocker is not None:
                run.state = TaskState.SV_STALLED
                proc.park(now, CycleCategory.SV_STALL, sv_blocker=blocker)
                if self.trace is not None:
                    self.trace.emit(TraceEvent.SV_STALL, now, run.task_id,
                                    proc.proc_id, detail=blocker)
                return
        if kind == STEP_READ:
            latency, extra_busy = self._do_read(proc, run, word, now)
        else:
            latency, extra_busy = self._do_write(proc, run, word, now)
        run.op_index = i + 1
        self._schedule_op_done(proc, run, now, busy=extra_busy, mem=latency)

    def _schedule_op_done(self, proc: Processor, run: TaskRun, now: float,
                          *, busy: float, mem: float) -> None:
        pid = proc.proc_id
        self._inflight_start[pid] = now
        self._inflight_busy[pid] = busy
        self._inflight_mem[pid] = mem
        self._inflight_live[pid] = 1
        # Direct push: durations are non-negative by construction, so the
        # scheduling-into-the-past check of _schedule is redundant here.
        # Op completions are marked with fn=None instead of a bound method:
        # the drain loops recognize the marker and run the completion
        # inline (or via _op_done on the hooked path).
        self._seq += 1
        self._events.push((
            now + busy + mem, self._seq, None,
            (proc, proc.epoch, run, run.attempt, busy, mem),
        ))

    def _op_done(
        self,
        proc: Processor,
        epoch: int,
        run: TaskRun,
        attempt: int,
        busy: float,
        mem: float,
        now: float,
    ) -> None:
        if proc.epoch != epoch or run.attempt != attempt:
            return  # aborted by a squash; accounting handled there
        self._inflight_live[proc.proc_id] = 0
        proc.account.add_op(busy, mem)
        run.attempt_busy += busy
        self._advance(proc, now)

    def _task_done(self, proc: Processor, run: TaskRun, now: float) -> None:
        run.state = TaskState.DONE
        run.finish_time = now
        if self.trace is not None:
            self.trace.emit(TraceEvent.TASK_DONE, now, run.task_id,
                            proc.proc_id)
        self._drain_l1_to_l2(proc, run, now)
        self._record_footprint(run)
        proc.current = None
        if self.scheme.task_policy is TaskPolicy.SINGLE_T:
            proc.park(now, CycleCategory.COMMIT_STALL)
        else:
            self._claim(proc, now)
        self._try_commit(now)

    def _drain_l1_to_l2(self, proc: Processor, run: TaskRun, now: float) -> None:
        """Move the finished task's dirty L1 lines into the L2.

        Models the L1-table traversal of Section 4.1 (its time is "largely
        negligible", so no cycles are charged).
        """
        l1 = proc.l1
        dirty_col = l1._dirty
        committed_col = l1._committed
        for entry in l1.lines_of_task(run.task_id):
            slot = entry._slot
            if dirty_col[slot]:
                committed = bool(committed_col[slot])
                l1.remove(entry)
                victim = proc.l2.install(entry.line_addr, entry.task_id,
                                         dirty=True, committed=committed,
                                         now=now)
                if victim is not None:
                    self._dispose_victim(proc, victim, now)

    # ==================================================================
    # Memory operations
    # ==================================================================
    def _do_read(
        self, proc: Processor, run: TaskRun, word: int, now: float
    ) -> tuple[float, float]:
        producer = self.directory.version_for_read(word, run.task_id)
        latency = self._fetch_latency(proc, line_of(word), producer, now)
        if producer == run.task_id and self._line_gran:
            # Line-granularity hardware sets a per-line read bit even when
            # the task only consumes its own word: the rest of the line
            # copy dates from before this task's version, so an
            # out-of-order write to the line must squash conservatively.
            base = self.directory.latest_version_below(word, run.task_id)
            self.directory.record_read(word, run.task_id, base)
            run.read_words.add(word)
        else:
            self.directory.record_read(word, run.task_id, producer)
            if producer != run.task_id:
                run.read_words.add(word)
        if word not in run.observed_reads:
            run.observed_reads[word] = producer
        return latency, 0.0

    def _do_write(
        self, proc: Processor, run: TaskRun, word: int, now: float
    ) -> tuple[float, float]:
        line = word >> _LINE_SHIFT
        tid = run.task_id
        extra_busy = 0.0

        # Locate / allocate the task's own version of the line (probing
        # the packed residency key directly; the task's own lookup does
        # not record misses, matching find()'s purity).
        l1 = proc.l1
        key = (line << _KEY_SHIFT) + tid + 2
        slot = l1._key_slot.get(key)
        l2_slot = None if slot is not None else proc.l2._key_slot.get(key)
        if slot is not None:
            l1._touch[slot] = now
            l1.stats.hits += 1
            l1._dirty[slot] = 1
            latency = self._lat_l1f
        elif l2_slot is not None:
            l2 = proc.l2
            l2._touch[l2_slot] = now
            l2.stats.hits += 1
            l2._dirty[l2_slot] = 1
            self._install(l1, proc, line, tid, dirty=True,
                          committed=False, now=now)
            latency = self._lat_l2f
        elif proc.overflow.holds(line, tid):
            # Refetch the task's own overflowed version (the excess
            # penalty is judged on occupancy before the version is
            # removed from the area).
            excess = self._overflow_excess_penalty(proc)
            proc.overflow.fetch(line, tid)
            home = self.machine.home_node(line)
            latency = (self._mem_lat[proc.proc_id][home]
                       + self._overflow_pen + excess)
            self._install_both(proc, line, tid, dirty=True, now=now)
        else:
            # First write (or version displaced to memory under FMM):
            # write-allocate, fetching the previous version of the word.
            if self.high_level_patterns and self.workload.is_priv(word):
                # HLAP: the compiler declared this data mostly-private and
                # fully overwritten, so the line is allocated locally
                # without fetching the stale previous version.
                latency = self._lat_l2f
            else:
                prev = self.directory.latest_version_at_most(word, tid)
                latency = self._fetch_latency(proc, line, prev, now,
                                              install_copy=False)
            if self._is_fmm:
                extra_busy += self._fmm_log_overwrite(proc, run, line, now)
            self._install_both(proc, line, tid, dirty=True, now=now)

        words = run.words_by_line.get(line)
        if words is None:
            run.words_by_line[line] = {word}
        else:
            words.add(word)
        violated = self.directory.record_write(word, tid)
        if self._line_gran:
            # Conservative line-granularity detection: readers of *any*
            # word in the written line are (falsely) violated too.
            for other in words_of_line(line):
                if other != word:
                    violated = sorted(set(violated).union(
                        self.directory.violated_readers(other, tid)))
        if violated:
            self._squash(violated[0], now)
        return latency, extra_busy

    def _fmm_log_overwrite(
        self, proc: Processor, run: TaskRun, line: int, now: float
    ) -> float:
        """Save the pre-overwrite version of ``line`` into the MHB.

        Returns extra busy cycles (software logging executes instructions;
        hardware ULOG insertion is charged as a small fixed cost).
        Under FMM only the newest version of a line lives in a processor's
        cache: older local versions are dropped once their contents are
        safely in the log (and reachable in memory through MTID ordering).
        """
        tid = run.task_id
        if not proc.undolog.needs_entry(tid, line):
            return 0.0
        # Per-word previous-version probes against the directory's
        # interned rows (inline latest_version_at_most: one line is
        # WORDS_PER_LINE probes, several thousand lines get logged per
        # FMM run). The words iterate in ascending address order, so the
        # collected pairs are already sorted.
        rows = self.directory._row
        all_producers = self.directory._producers
        words: list[tuple[int, int]] = []
        saved_producer = ARCH_TASK_ID
        start = line << _LINE_SHIFT
        for w in range(start, start + WORDS_PER_LINE):
            row = rows.get(w)
            if row is None:
                prev = ARCH_TASK_ID
            else:
                producers = all_producers[row]
                idx = bisect_right(producers, tid) if producers else 0
                prev = producers[idx - 1] if idx else ARCH_TASK_ID
            if prev == tid:
                # The word was written by tid itself in an earlier attempt
                # epoch; cannot happen for a first write in this attempt.
                raise SimulationError(
                    f"task {tid} logging a line it already owns: {line:#x}"
                )
            words.append((w, prev))
            if prev > saved_producer:
                saved_producer = prev
        proc.undolog.append(LogEntry(
            line_addr=line,
            producer_task=saved_producer if saved_producer < tid else ARCH_TASK_ID,
            overwriting_task=tid,
            words=tuple(words),
        ))
        if self.trace is not None:
            self.trace.emit(TraceEvent.UNDOLOG_APPEND, now, tid,
                            proc.proc_id, detail=line)
        # Drop older local versions of the line: their state is recoverable
        # from the MHB, and memory keeps the latest future state via MTID.
        for cache in (proc.l1, proc.l2):
            for entry in list(cache.entries(line)):
                if entry.task_id != tid:
                    if entry.dirty:
                        self._writeback_entry_to_memory(entry)
                    cache.remove(entry)
        if self.scheme.software_log:
            return self.costs.swlog_instructions / self.costs.ipc
        return float(self.costs.ulog_insert)

    # ------------------------------------------------------------------
    # Version location and latency
    # ------------------------------------------------------------------
    def _fetch_latency(
        self,
        proc: Processor,
        line: int,
        producer: int,
        now: float,
        install_copy: bool = True,
    ) -> float:
        """Round-trip latency to obtain version ``producer`` of ``line``."""
        l1 = proc.l1
        key = (line << _KEY_SHIFT) + producer + 2
        slot = l1._key_slot.get(key)
        if slot is not None:
            l1._touch[slot] = now
            l1.stats.hits += 1
            return self._lat_l1f
        l1.stats.misses += 1
        l2 = proc.l2
        slot = l2._key_slot.get(key)
        if slot is not None:
            l2._touch[slot] = now
            l2.stats.hits += 1
            if install_copy:
                self._install(l1, proc, line, producer, dirty=False,
                              committed=bool(l2._committed[slot]), now=now)
            return self._lat_l2f
        l2.stats.misses += 1
        latency, cacheable = self._global_fetch(proc, line, producer)
        if install_copy and cacheable:
            self._install_both(proc, line, producer, dirty=False, now=now,
                               committed=True)
        return latency

    def _global_fetch(
        self, proc: Processor, line: int, producer: int
    ) -> tuple[float, bool]:
        """Latency to fetch (line, producer) from outside the local caches.

        Returns ``(latency, cacheable)``: copies of *speculative* remote
        versions are not installed locally (the producer may still extend
        them word by word), so they are re-fetched on every access —
        matching the conservative forwarding of the base protocol.
        Architectural and committed data is immutable and cacheable.
        """
        if producer == ARCH_TASK_ID:
            return self._arch_fetch_latency(proc, line), True

        owner_run = self.runs[producer]
        committed = owner_run.state is TaskState.COMMITTED
        owner_id = owner_run.proc_id
        if owner_id is not None:
            owner = self.procs[owner_id]
            entry = owner.l2.find(line, producer) or owner.l1.find(line, producer)
            if entry is not None:
                lat = self._remote_lat[proc.proc_id][owner_id]
                self.traffic.remote_cache_fetches += 1
                if self._is_mv and owner.l2.version_count(line) > 1:
                    lat += self._crl_select
                if entry.committed and self._is_lazy:
                    lat += self._vcl_combine
                return lat, committed
            if owner.overflow.holds(line, producer):
                lat = (self._mem_lat[proc.proc_id][owner_id]
                       + self._overflow_pen
                       + self._overflow_excess_penalty(owner))
                self.traffic.overflow_fetches += 1
                return lat, committed
        # Fallback: the version has been merged into (or displaced to)
        # main memory.
        return self._arch_fetch_latency(proc, line), committed

    def _arch_fetch_latency(self, proc: Processor, line: int) -> float:
        """Latency of a fetch served by main memory (or the CMP's L3)."""
        self.traffic.memory_fetches += 1
        home = line % self._n_procs
        if self._l3_lines is not None:
            if line in self._l3_lines:
                return float(self.machine.lat_l3 or 0) + self._bank_wait(home)
            self._l3_lines.add(line)
            return self._mem_lat[proc.proc_id][0] + self._bank_wait(home)
        return self._mem_lat[proc.proc_id][home] + self._bank_wait(home)

    def _bank_wait(self, home: int) -> float:
        """Queuing delay at the home node's memory/directory bank.

        With a non-zero ``memory_bank_service``, each access occupies the
        bank for that many cycles; concurrent requests to the same bank
        serialize and the requester pays the wait.
        """
        service = self._bank_service
        if not service:
            return 0.0
        start = max(self.now, self._bank_free[home])
        self._bank_free[home] = start + service
        return start - self.now

    # ------------------------------------------------------------------
    # Cache installation and displacement
    # ------------------------------------------------------------------
    def _install_both(self, proc: Processor, line: int, task_id: int, *,
                      dirty: bool, now: float, committed: bool = False) -> None:
        self._install(proc.l2, proc, line, task_id, dirty=dirty,
                      committed=committed, now=now)
        self._install(proc.l1, proc, line, task_id, dirty=dirty,
                      committed=committed, now=now)

    def _install(self, cache, proc: Processor, line: int, task_id: int, *,
                 dirty: bool, committed: bool, now: float) -> None:
        victim = cache.install(line, task_id, dirty=dirty,
                               committed=committed, now=now)
        if victim is None:
            return
        if cache is proc.l1:
            if victim.dirty:
                inner = proc.l2.install(victim.line_addr, victim.task_id,
                                        dirty=True, committed=victim.committed,
                                        now=now)
                if inner is not None:
                    self._dispose_victim(proc, inner, now)
            return
        self._dispose_victim(proc, victim, now)

    def _dispose_victim(self, proc: Processor, victim: CacheLine,
                        now: float) -> None:
        """Handle a dirty line displaced from the L2, per merge policy."""
        if not victim.dirty:
            return
        if self.scheme.merge_policy is MergePolicy.FMM:
            # Free displacement to memory; MTID rejects stale versions.
            self._writeback_entry_to_memory(victim)
            return
        if victim.committed:
            # Lazy AMM: VCL finds the latest committed version, writes it
            # back and invalidates the other committed copies. The victim
            # itself is already out of the cache, so its words are merged
            # explicitly.
            self._vcl_merge_line(victim.line_addr, now, extra_victim=victim)
            return
        # Speculative dirty line under AMM: overflow area.
        self.traffic.overflow_spills += 1
        proc.overflow.spill(victim.line_addr, victim.task_id, committed=False)
        if self.trace is not None:
            self.trace.emit(TraceEvent.OVERFLOW_SPILL, now, victim.task_id,
                            proc.proc_id, detail=victim.line_addr)

    def _overflow_excess_penalty(self, proc: Processor) -> float:
        """Extra cycles per overflow access while the area is over capacity.

        The paper sizes the per-processor overflow area for any working
        set; with a finite :attr:`~repro.core.config.CostModel.\
        overflow_capacity_lines` (the exploration's overflow axis),
        versions beyond the reservation live in pageable memory and each
        access to the overloaded area pays this penalty. Zero when the
        capacity is unbounded (the default), keeping base timing intact.
        """
        cap = self._ov_cap
        if cap is not None and len(proc.overflow) > cap:
            return self._ov_excess
        return 0.0

    def _overflow_excess_lines(self, proc: Processor, drained: int) -> int:
        """How many of ``drained`` overflow lines sit beyond capacity."""
        cap = self._ov_cap
        if cap is None:
            return 0
        return min(drained, max(0, len(proc.overflow) - cap))

    def _writeback_entry_to_memory(self, entry: CacheLine) -> None:
        run = self.runs.get(entry.task_id)
        if run is None:
            return
        words = run.words_by_line.get(entry.line_addr)
        if not words:
            return
        self.traffic.line_writebacks += 1
        self.memory.writeback_words({w: entry.task_id for w in words})
        if self._l3_lines is not None:
            self._l3_lines.add(entry.line_addr)

    def _vcl_merge_line(self, line: int, now: float,
                        extra_victim: CacheLine | None = None) -> None:
        """Version Combining Logic: merge a line's committed versions.

        Identifies the latest committed version of the line across all
        caches and overflow areas, writes it (and by producer-compare, the
        surviving words of older versions) back to memory, and invalidates
        every committed copy. ``extra_victim`` is a just-displaced entry
        that is no longer resident but whose words must participate.
        """
        words: dict[int, int] = {}
        if extra_victim is not None and extra_victim.dirty:
            run = self.runs.get(extra_victim.task_id)
            if run is not None:
                for w in run.words_by_line.get(line, ()):
                    words[w] = extra_victim.task_id
        for other in self.procs:
            for cache in (other.l1, other.l2):
                for entry in list(cache.entries(line)):
                    if entry.committed:
                        if entry.dirty:
                            run = self.runs.get(entry.task_id)
                            if run is not None:
                                for w in run.words_by_line.get(line, ()):
                                    if words.get(w, ARCH_TASK_ID) < entry.task_id:
                                        words[w] = entry.task_id
                        cache.remove(entry)
            for ov_line, ov_task in list(other.overflow.committed_lines()):
                if ov_line == line:
                    run = self.runs.get(ov_task)
                    if run is not None:
                        for w in run.words_by_line.get(line, ()):
                            if words.get(w, ARCH_TASK_ID) < ov_task:
                                words[w] = ov_task
                    other.overflow.discard(ov_line, ov_task)
        if words:
            self.traffic.vcl_merges += 1
            self.memory.writeback_words(words)
            if self._l3_lines is not None:
                self._l3_lines.add(line)

    # ==================================================================
    # MultiT&SV version-conflict stalls
    # ==================================================================
    def _sv_conflict(self, proc: Processor, run: TaskRun, word: int) -> bool:
        if self.scheme.task_policy is not TaskPolicy.MULTI_T_SV:
            return False
        return self._sv_blocker(proc, run, word) is not None

    def _sv_blocker(self, proc: Processor, run: TaskRun,
                    word: int) -> int | None:
        """Earliest local task holding a *dirty* speculative version of the
        line that ``run`` is about to write. Clean copies of remote
        versions do not block (they are not locally-created versions)."""
        line = line_of(word)
        blockers: list[int] = []
        for cache in (proc.l1, proc.l2):
            for entry in cache.find_speculative(line):
                if entry.dirty and entry.task_id != run.task_id:
                    blockers.append(entry.task_id)
        for other_id in list(proc.resident):
            if other_id != run.task_id:
                other = self.runs[other_id]
                if (other.state is not TaskState.COMMITTED
                        and proc.overflow.holds(line, other_id)):
                    blockers.append(other_id)
        return min(blockers) if blockers else None

    def _wake_sv_waiters(self, task_id: int, now: float) -> None:
        """Resume processors whose SV blocker just committed or squashed."""
        for proc in self.procs:
            if proc.parked and proc.sv_blocker == task_id:
                proc.unpark(now)
                run = proc.current
                if run is None:
                    raise SimulationError(
                        f"P{proc.proc_id} SV-parked without a task"
                    )
                run.state = TaskState.RUNNING
                if self.trace is not None:
                    self.trace.emit(TraceEvent.SV_RESUME, now, run.task_id,
                                    proc.proc_id, detail=task_id)
                self._advance(proc, now)

    # ==================================================================
    # Commit
    # ==================================================================
    def _try_commit(self, now: float) -> None:
        if self._finished or not self.commit.token_free:
            return
        nxt = self.commit.next_to_commit
        if nxt >= self.commit.n_tasks:
            return
        run = self.runs[nxt]
        if run.state is not TaskState.DONE:
            return
        self.commit.begin_commit(nxt, now)
        run.commit_start = now
        if self.trace is not None:
            self.trace.emit(TraceEvent.COMMIT_BEGIN, now, nxt, run.proc_id)
        duration = float(self.costs.token_pass)
        if self.scheme.merge_policy is MergePolicy.EAGER_AMM:
            duration += self._eager_merge_cost(run)
        self._schedule(now + duration, self._commit_done, (run, now))

    def _eager_merge_cost(self, run: TaskRun) -> float:
        proc = self.procs[run.proc_id]
        cached = sum(
            1 for e in proc.l2.lines_of_task(run.task_id) if e.dirty
        )
        overflowed = len(proc.overflow.lines_of_task(run.task_id))
        if self.costs.eager_commit_mode == "orb":
            # ORB commit: one ownership request per modified line instead
            # of a data write-back (the Section 4.1 footnote notes that
            # for numerical codes the ORB holds essentially the whole
            # written footprint, so the line count is unchanged).
            per_line = self.costs.orb_request_per_line
            cost = (cached + overflowed) * per_line + overflowed * (
                self.costs.overflow_penalty)
        else:
            cost = (
                cached * self.costs.commit_writeback_per_line
                + overflowed * (self.costs.commit_writeback_per_line
                                + self.costs.overflow_penalty)
            )
        cost += (self._overflow_excess_lines(proc, overflowed)
                 * self.costs.overflow_excess_penalty)
        if self.scheme.task_policy is TaskPolicy.SINGLE_T:
            # The processor itself performs the merge with plain
            # loads/stores; MultiT schemes use background merge hardware.
            cost *= self.costs.singlet_commit_factor
        return cost

    def _commit_done(self, run: TaskRun, start: float, now: float) -> None:
        tid = run.task_id
        proc = self.procs[run.proc_id]
        policy = self.scheme.merge_policy
        if policy is MergePolicy.EAGER_AMM:
            for entry in proc.l2.drain_task(tid, clean=True):
                self._writeback_entry_to_memory(entry)
            for line in proc.overflow.drain_task(tid):
                words = run.words_by_line.get(line)
                if words:
                    self.memory.writeback_words({w: tid for w in words})
                    if self._l3_lines is not None:
                        self._l3_lines.add(line)
            proc.l1.mark_committed(tid)
            for entry in proc.l1.lines_of_task(tid):
                entry.dirty = False
        elif policy is MergePolicy.LAZY_AMM:
            proc.l1.mark_committed(tid)
            proc.l2.mark_committed(tid)
            proc.overflow.mark_committed(tid)
        else:  # FMM
            proc.l1.mark_committed(tid)
            proc.l2.mark_committed(tid)
            proc.undolog.free_task(tid)

        run.state = TaskState.COMMITTED
        run.commit_time = now
        self.commit.finish_commit(tid, start, now)
        if self.trace is not None:
            self.trace.emit(TraceEvent.COMMIT_DONE, now, tid, run.proc_id)
        self.directory.forget_reader(tid, run.read_words)
        proc.drop_resident(tid)
        self._spec_count_change(-1, now)

        if (self.scheme.task_policy is TaskPolicy.SINGLE_T
                and proc.parked
                and proc.parked_category is CycleCategory.COMMIT_STALL):
            proc.unpark(now)
            self._claim(proc, now)
        self._wake_sv_waiters(tid, now)

        if self.commit.all_committed:
            self._finish(now)
        else:
            self._try_commit(now)

    # ==================================================================
    # Squash and recovery
    # ==================================================================
    def _squash(self, first_victim: int, now: float) -> None:
        victims = [
            r for r in self.runs.values()
            if r.task_id >= first_victim
            and r.state in (TaskState.RUNNING, TaskState.SV_STALLED,
                            TaskState.DONE)
        ]
        if not victims:
            return
        self._violation_events += 1
        victim_ids = {v.task_id for v in victims}
        if self.trace is not None:
            self.trace.emit(TraceEvent.VIOLATION, now, first_victim)
            for victim in victims:
                self.trace.emit(TraceEvent.TASK_SQUASHED, now,
                                victim.task_id, victim.proc_id)

        recovery = float(self.costs.squash_fixed)
        if self.scheme.merge_policy is MergePolicy.FMM:
            recovery += self._fmm_recover(victims, victim_ids)
        else:
            recovery += self._amm_recover(victims)

        # Tear down execution state of every victim.
        for victim in sorted(victims, key=lambda r: -r.task_id):
            self._squashed_executions += 1
            self._wasted_busy += victim.attempt_busy
            written = {w for ws in victim.words_by_line.values() for w in ws}
            self.directory.purge_task(victim.task_id, written,
                                      victim.read_words)
            if victim.proc_id is not None:
                self.procs[victim.proc_id].drop_resident(victim.task_id)
            victim.squash()
            self.scheduler.release(victim.task_id)
            self._spec_count_change(-1, now)

        resume_at = now + recovery
        for proc in self.procs:
            self._abort_proc_if_needed(proc, victim_ids, now, resume_at)
        # Idle processors wait out the recovery before picking up the
        # re-enqueued work; that wait is recovery time, not idleness.
        for proc_id in list(self._idle_procs):
            proc = self.procs[proc_id]
            if proc.parked and proc.parked_category is CycleCategory.IDLE:
                self._idle_procs.discard(proc_id)
                proc.unpark(now)
                proc.park(now, CycleCategory.RECOVERY)
                self._schedule(resume_at, self._resume_after_recovery, (proc,))
        self._schedule(resume_at, self._wake_idle)

    def _amm_recover(self, victims: list[TaskRun]) -> float:
        """Invalidate squashed versions from the MROB; returns cycles."""
        invalidated = 0
        for victim in victims:
            tid = victim.task_id
            for proc in self.procs:
                invalidated += proc.l1.invalidate_task(tid)
                invalidated += proc.l2.invalidate_task(tid)
                invalidated += len(proc.overflow.drain_task(tid))
        return invalidated * self.costs.amm_invalidate_per_line

    def _fmm_recover(self, victims: list[TaskRun],
                     victim_ids: set[int]) -> float:
        """Replay the distributed MHB in strict reverse task order.

        Restores the future memory state and invalidates squashed versions;
        returns the (software-handler) recovery cycles.
        """
        entries_restored = 0
        for victim in sorted(victims, key=lambda r: -r.task_id):
            tid = victim.task_id
            for proc in self.procs:
                for entry in proc.undolog.pop_entries_of(tid):
                    entries_restored += 1
                    restore = {}
                    for word, saved in entry.words_dict().items():
                        current = self.memory.producer_of(word)
                        if current > saved and (
                                current == tid or current in victim_ids):
                            restore[word] = saved
                    if restore:
                        self.memory.restore_words(restore)
            for proc in self.procs:
                proc.l1.invalidate_task(tid)
                proc.l2.invalidate_task(tid)
        per_entry = (
            self.costs.fmm_recovery_instructions_per_entry / self.costs.ipc
            + self.costs.commit_writeback_per_line
        )
        return entries_restored * per_entry

    def _abort_proc_if_needed(self, proc: Processor, victim_ids: set[int],
                              now: float, resume_at: float) -> None:
        current = proc.current
        if current is not None and current.task_id in victim_ids:
            # Charge the partially-executed in-flight op exactly.
            pid = proc.proc_id
            live = self._inflight_live[pid]
            self._inflight_live[pid] = 0
            if proc.parked:
                # SV-stalled on a squashed task: close the stall interval.
                proc.unpark(now)
            elif live:
                start = self._inflight_start[pid]
                busy = self._inflight_busy[pid]
                elapsed = max(0.0, now - start)
                busy_part = min(busy, elapsed)
                proc.account.add(CycleCategory.BUSY, busy_part)
                proc.account.add(CycleCategory.MEMORY,
                                 max(0.0, elapsed - busy_part))
                current.attempt_busy += busy_part
            proc.current = None
            proc.epoch += 1
            proc.park(now, CycleCategory.RECOVERY)
            self._schedule(resume_at, self._resume_after_recovery, (proc,))
            return
        if proc.parked and proc.parked_category is CycleCategory.COMMIT_STALL:
            # SingleT waiter whose done (speculative) task was squashed:
            # the squash teardown already removed it from the residency
            # map, so the processor waits on nothing — recover and reclaim.
            if not proc.speculative_resident():
                proc.unpark(now)
                proc.epoch += 1
                proc.park(now, CycleCategory.RECOVERY)
                self._schedule(resume_at, self._resume_after_recovery, (proc,))
            return
        if (proc.parked and proc.parked_category is CycleCategory.SV_STALL
                and proc.sv_blocker in victim_ids):
            # Blocker vanished; its version is gone, so the write proceeds
            # once recovery completes.
            proc.unpark(now)
            run = proc.current
            proc.park(now, CycleCategory.RECOVERY)
            self._schedule(resume_at, self._resume_sv_after_recovery,
                           (proc, run))

    def _resume_after_recovery(self, proc: Processor, now: float) -> None:
        if proc.parked and proc.parked_category is CycleCategory.RECOVERY:
            proc.unpark(now)
            if proc.current is None:
                self._claim(proc, now)

    def _resume_sv_after_recovery(self, proc: Processor, run: TaskRun,
                                  now: float) -> None:
        if (proc.parked and proc.parked_category is CycleCategory.RECOVERY
                and proc.current is run
                and run.state is TaskState.SV_STALLED):
            proc.unpark(now)
            run.state = TaskState.RUNNING
            self._advance(proc, now)

    def _wake_idle(self, now: float) -> None:
        if self._finished:
            return
        for proc_id in list(self._idle_procs):
            if not self.scheduler.has_pending():
                break
            proc = self.procs[proc_id]
            if proc.parked and proc.parked_category is CycleCategory.IDLE:
                self._idle_procs.discard(proc_id)
                proc.unpark(now)
                self._claim(proc, now)

    # ==================================================================
    # Completion
    # ==================================================================
    def _finish(self, now: float) -> None:
        end = now
        if self.scheme.merge_policy is MergePolicy.LAZY_AMM:
            end += self._final_merge(now)
        self._flush_remaining_dirty()
        self._finished = True
        self.total_cycles = end
        # Close every processor's accounting at the loop end.
        for proc in self.procs:
            if proc.parked:
                proc.unpark(end)
            total = proc.account.total()
            if total < end - 1e-6:
                proc.account.add(CycleCategory.IDLE, end - total)

    def _final_merge(self, now: float) -> float:
        """Lazy AMM end-of-loop merge of versions still in caches.

        Processors merge their remaining committed dirty lines in parallel
        (the diamonds of Figure 6-(b)); the loop ends when the slowest
        processor finishes.
        """
        longest = 0.0
        for proc in self.procs:
            lines = {(e.line_addr, e.task_id)
                     for e in proc.l2.committed_dirty()}
            lines |= {(e.line_addr, e.task_id)
                      for e in proc.l1.committed_dirty()}
            cost = len(lines) * self.costs.final_merge_per_line
            overflow_lines = proc.overflow.committed_lines()
            cost += len(overflow_lines) * (
                self.costs.final_merge_per_line
                + self.costs.overflow_penalty
            )
            cost += (self._overflow_excess_lines(proc, len(overflow_lines))
                     * self.costs.overflow_excess_penalty)
            longest = max(longest, float(cost))
        return longest

    def _flush_remaining_dirty(self) -> None:
        """Push all remaining committed dirty state to memory (zero cost).

        After the lazy final merge (or under FMM, where memory already
        tracks the future state modulo cache-resident lines), this makes
        the memory image complete so the correctness invariants can compare
        it against sequential execution.
        """
        for proc in self.procs:
            for cache in (proc.l1, proc.l2):
                for entry in list(cache):
                    if entry.dirty:
                        self._writeback_entry_to_memory(entry)
                        entry.dirty = False
            for line, task in list(proc.overflow.committed_lines()):
                run = self.runs.get(task)
                if run is not None:
                    words = run.words_by_line.get(line)
                    if words:
                        self.memory.writeback_words({w: task for w in words})
                proc.overflow.discard(line, task)

    # ==================================================================
    # Statistics
    # ==================================================================
    def _spec_count_change(self, delta: int, now: float) -> None:
        self._spec_task_integral += self._spec_task_count * (
            now - self._spec_task_last_t
        )
        self._spec_task_last_t = now
        self._spec_task_count += delta
        if self._spec_task_count < 0:
            raise SimulationError("negative speculative task count")

    def _record_footprint(self, run: TaskRun) -> None:
        words = {w for ws in run.words_by_line.values() for w in ws}
        from repro.core.config import WORD_BYTES

        self._footprint_bytes.append(len(words) * WORD_BYTES)
        self._footprint_total_words += len(words)
        self._footprint_priv_words += sum(
            1 for w in words if self.workload.is_priv(w)
        )

    def _build_result(self) -> SimulationResult:
        by_cat = {c: 0.0 for c in CycleCategory}
        for proc in self.procs:
            for cat, cycles in proc.account.by_category.items():
                by_cat[cat] += cycles
        timings = [
            TaskTiming(
                task_id=r.task_id,
                proc_id=r.proc_id if r.proc_id is not None else -1,
                start_time=r.start_time,
                finish_time=r.finish_time,
                commit_start=r.commit_start,
                commit_end=r.commit_time,
                squashes=r.squashes,
            )
            for r in self.runs.values()
        ]
        avg_in_system = (
            self._spec_task_integral / self.total_cycles
            if self.total_cycles else 0.0
        )
        n_foot = len(self._footprint_bytes)
        l2_acc = sum(p.l2.stats.accesses for p in self.procs)
        l2_hits = sum(p.l2.stats.hits for p in self.procs)
        return SimulationResult(
            scheme=self.scheme,
            machine_name=self.machine.name,
            workload_name=self.workload.name,
            n_procs=self.machine.n_procs,
            n_tasks=len(self.runs),
            total_cycles=self.total_cycles,
            cycles_by_category=by_cat,
            violation_events=self._violation_events,
            squashed_executions=self._squashed_executions,
            commit_wavefront=list(self.commit.stats.wavefront),
            token_hold_cycles=self.commit.stats.token_hold_cycles,
            task_timings=timings,
            avg_spec_tasks_in_system=avg_in_system,
            avg_written_footprint_bytes=(
                sum(self._footprint_bytes) / n_foot if n_foot else 0.0
            ),
            priv_footprint_fraction=(
                self._footprint_priv_words / self._footprint_total_words
                if self._footprint_total_words else 0.0
            ),
            memory_image=self.memory.image(),
            peak_overflow_lines=max(
                (p.overflow.stats.peak_lines for p in self.procs), default=0
            ),
            peak_undolog_entries=max(
                (p.undolog.stats.peak_entries for p in self.procs), default=0
            ),
            observed_reads={
                (r.task_id, word): producer
                for r in self.runs.values()
                for word, producer in r.observed_reads.items()
            },
            wasted_busy_cycles=self._wasted_busy,
            l2_hit_rate=l2_hits / l2_acc if l2_acc else 0.0,
            l2_speculative_displacements=sum(
                p.l2.stats.speculative_displacements for p in self.procs
            ),
            traffic=self.traffic,
            events_processed=self._events_processed,
            wall_clock_seconds=self._wall_clock_seconds,
        )


def simulate(machine: MachineConfig, scheme: Scheme,
             workload: Workload, **kwargs) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulation` and run it."""
    return Simulation(machine, scheme, workload, **kwargs).run()
