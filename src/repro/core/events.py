"""Calendar-bucket event queue for the simulation engine.

The engine's pending-event set is small (one in-flight operation per
processor plus a handful of commit/recovery wakeups) but extremely hot:
every simulated memory operation pushes and pops exactly one event. A
single global heap orders *all* pending events against each other on
every operation; the calendar queue instead hashes each event into a
time bucket and only orders events within one bucket, so the common
case — a handful of near-simultaneous per-processor completions — costs
one dict probe and a push onto a tiny heap.

Ordering contract: :meth:`pop` returns items in exactly the order
``heapq`` would — ascending ``(when, seq)`` — because the bucket index
``int(when / width)`` is monotone in ``when`` and items within a bucket
are kept in a per-bucket heap. :data:`DEFAULT_BUCKET_WIDTH` is tuned to
the latency quantization of :class:`~repro.core.config.CostModel`: the
bulk of event spacings are memory round-trips and commit-token passes in
the tens-to-hundreds of cycles, so 64-cycle buckets keep per-bucket
occupancy near one while long sleeps (squash recovery, eager commits)
hash far away without ever being compared against the near-term events.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any

#: Bucket width in simulated cycles. See the module docstring for the
#: rationale; the engine's event times are non-negative floats.
DEFAULT_BUCKET_WIDTH = 64.0


class BucketQueue:
    """Min-queue of ``(when, seq, ...)`` tuples with calendar buckets.

    Drop-in replacement for a ``heapq``-managed list in the engine's hot
    loop: :meth:`push` and :meth:`pop` preserve exact ``(when, seq)``
    heap order (``seq`` must be unique, so comparisons never reach the
    later tuple elements, which may be uncomparable callables).
    """

    __slots__ = ("_buckets", "_order", "_inv_width", "_len")

    def __init__(self, width: float = DEFAULT_BUCKET_WIDTH) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        self._inv_width = 1.0 / width
        #: bucket id -> per-bucket heap of items.
        self._buckets: dict[int, list[tuple]] = {}
        #: heap of live bucket ids (an id is present iff its bucket is).
        self._order: list[int] = []
        self._len = 0

    def push(self, item: tuple[float, int, Any, Any]) -> None:
        """Queue ``item`` (ordered by its ``(when, seq)`` prefix)."""
        bucket_id = int(item[0] * self._inv_width)
        bucket = self._buckets.get(bucket_id)
        if bucket is None:
            self._buckets[bucket_id] = [item]
            heappush(self._order, bucket_id)
        else:
            heappush(bucket, item)
        self._len += 1

    def pop(self) -> tuple[float, int, Any, Any]:
        """Remove and return the earliest item; IndexError when empty."""
        order = self._order
        bucket_id = order[0]
        bucket = self._buckets[bucket_id]
        item = heappop(bucket) if len(bucket) > 1 else bucket.pop()
        if not bucket:
            del self._buckets[bucket_id]
            heappop(order)
        self._len -= 1
        return item

    def pop_batch(self) -> list[tuple[float, int, Any, Any]]:
        """Remove and return *all* items sharing the minimum ``when``.

        The batch preserves exact ``(when, seq)`` order, so iterating it
        is indistinguishable from calling :meth:`pop` repeatedly while
        the head time stays constant. The engine's batched dispatch loop
        (engine-core v3) uses this to hoist clock updates and
        policy-flag reads out of the per-event body: events with the
        same timestamp cannot observe each other's latencies, only each
        other's protocol state, which the in-order batch walk preserves.

        Items pushed *while* a batch is being processed (even at the
        same simulated time) land in the queue for the next call — their
        ``seq`` is necessarily higher than every batch member's, so
        overall ``(when, seq)`` order is still exactly heap order.

        Raises IndexError when the queue is empty.
        """
        order = self._order
        bucket_id = order[0]
        bucket = self._buckets[bucket_id]
        if len(bucket) == 1:
            # Common case: a lone event in the head bucket.
            del self._buckets[bucket_id]
            heappop(order)
            self._len -= 1
            return bucket
        first = heappop(bucket)
        when = first[0]
        batch = [first]
        append = batch.append
        while bucket and bucket[0][0] == when:
            append(heappop(bucket))
        if not bucket:
            del self._buckets[bucket_id]
            heappop(order)
        self._len -= len(batch)
        return batch

    def peek_time(self) -> float:
        """Simulated time of the earliest item; IndexError when empty."""
        return self._buckets[self._order[0]][0][0]

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0
