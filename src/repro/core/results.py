"""Simulation results and aggregate statistics.

:class:`SimulationResult` is what :func:`repro.core.engine.simulate`
returns: total execution time of the non-analyzable (speculative) section,
the per-category cycle breakdown the paper's stacked bars need, squash and
commit statistics, the Figure 1 occupancy/footprint characterization, and
the final memory image for correctness checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.taxonomy import Scheme
from repro.processor.processor import CycleCategory


@dataclass
class TrafficStats:
    """Protocol message counts of one run (network/memory traffic).

    Counts are events, not bytes: a remote-cache fetch is one
    request/response pair, a line write-back one data message, a VCL merge
    one combining transaction. Token passes equal the number of commits.
    """

    remote_cache_fetches: int = 0
    memory_fetches: int = 0
    line_writebacks: int = 0
    vcl_merges: int = 0
    overflow_spills: int = 0
    overflow_fetches: int = 0

    def total_messages(self) -> int:
        """Sum of all message counters."""
        return (self.remote_cache_fetches + self.memory_fetches
                + self.line_writebacks + self.vcl_merges
                + self.overflow_spills + self.overflow_fetches)


@dataclass(frozen=True)
class TaskTiming:
    """Per-task timing sample (wall-clock points of the final execution)."""

    task_id: int
    proc_id: int
    start_time: float
    finish_time: float
    commit_start: float
    commit_end: float
    squashes: int

    @property
    def execution_cycles(self) -> float:
        return max(0.0, self.finish_time - self.start_time)

    @property
    def commit_cycles(self) -> float:
        return max(0.0, self.commit_end - self.commit_start)


@dataclass
class SimulationResult:
    """Outcome of simulating one workload on one machine under one scheme."""

    scheme: Scheme
    machine_name: str
    workload_name: str
    n_procs: int
    n_tasks: int
    #: Wall-clock cycles of the speculative section, including the lazy
    #: final merge when applicable.
    total_cycles: float
    #: Sum over processors of cycles per category (each processor's
    #: categories sum to ``total_cycles``).
    cycles_by_category: dict[CycleCategory, float]
    #: Number of squash (violation recovery) events and squashed task
    #: executions.
    violation_events: int
    squashed_executions: int
    #: Commit wavefront: (task_id, start, end) per commit.
    commit_wavefront: list[tuple[int, float, float]]
    #: Cycles the commit token was held in total.
    token_hold_cycles: float
    #: Per-task execution/commit samples (for the commit/exec ratio).
    task_timings: list[TaskTiming]
    #: Time-weighted average number of speculative tasks in the system.
    avg_spec_tasks_in_system: float
    #: Mean written footprint per task, bytes and privatized fraction.
    avg_written_footprint_bytes: float
    priv_footprint_fraction: float
    #: Final word -> producer image of main memory after all merges.
    memory_image: dict[int, int] = field(default_factory=dict)
    #: (reader task, word) -> producer observed at the committed attempt's
    #: first read. Sequential semantics require this to equal the last
    #: program-order writer before the read (see Workload.sequential_reads).
    observed_reads: dict[tuple[int, int], int] = field(default_factory=dict)
    #: Peak lines resident in any overflow area / undo log.
    peak_overflow_lines: int = 0
    peak_undolog_entries: int = 0
    #: Total busy cycles wasted in squashed (re-executed) attempts.
    wasted_busy_cycles: float = 0.0
    #: L2 statistics aggregated over processors.
    l2_hit_rate: float = 0.0
    l2_speculative_displacements: int = 0
    #: Protocol message counts (see :class:`TrafficStats`).
    traffic: TrafficStats = field(default_factory=TrafficStats)
    #: Engine self-reported throughput: discrete events processed and the
    #: host wall-clock seconds the run took. ``wall_clock_seconds`` is a
    #: measurement of the *host*, not of the simulated machine — it varies
    #: run to run and is excluded from the deterministic serialized form
    #: (see :func:`repro.analysis.serialization.canonical_result_bytes`).
    events_processed: int = 0
    wall_clock_seconds: float = 0.0
    #: Observability attachments, populated only when the run carried a
    #: :class:`repro.obs.MetricsHook` / :class:`~repro.core.trace.\
    #: TraceRecorder`. Both are excluded from comparison and from every
    #: serialized form (see :mod:`repro.analysis.serialization`), so
    #: instrumented runs share cache keys semantics and canonical bytes
    #: with plain ones.
    metrics: "object | None" = field(default=None, compare=False, repr=False)
    trace: "object | None" = field(default=None, compare=False, repr=False)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def avg_spec_tasks_per_proc(self) -> float:
        return self.avg_spec_tasks_in_system / self.n_procs

    @property
    def busy_cycles(self) -> float:
        return self.cycles_by_category[CycleCategory.BUSY]

    @property
    def stall_cycles(self) -> float:
        return sum(v for c, v in self.cycles_by_category.items()
                   if c is not CycleCategory.BUSY)

    def busy_fraction(self) -> float:
        """Busy share of all processor cycles (the bars' Busy segment)."""
        total = self.busy_cycles + self.stall_cycles
        return self.busy_cycles / total if total else 0.0

    def commit_exec_ratio(self) -> float:
        """Mean ratio of task commit duration to task execution duration.

        The paper's Table 3 Commit/Execution Ratio, measured the same way:
        under a scheme where tasks do not stall (MultiT&MV Eager), the mean
        over committed tasks of commit time divided by execution time.
        """
        ratios = [t.commit_cycles / t.execution_cycles
                  for t in self.task_timings if t.execution_cycles > 0]
        return sum(ratios) / len(ratios) if ratios else 0.0

    def speedup_over(self, sequential_cycles: float) -> float:
        """Speedup of this run relative to ``baseline_cycles``."""
        if self.total_cycles <= 0:
            return 0.0
        return sequential_cycles / self.total_cycles

    def normalized_to(self, reference: "SimulationResult") -> float:
        """Execution time normalized to a reference run (Figure 9 bars)."""
        return self.total_cycles / reference.total_cycles

    def events_per_second(self) -> float:
        """Host-side engine throughput of the run (0 when not measured)."""
        if self.wall_clock_seconds <= 0:
            return 0.0
        return self.events_processed / self.wall_clock_seconds

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.workload_name:>8} | {self.scheme.name:<22} | "
            f"{self.total_cycles:>12.0f} cyc | busy {self.busy_fraction():5.1%} | "
            f"squash events {self.violation_events}"
        )
