"""Opt-in batch-drain kernel for the simulation engine (engine-core v3).

This module holds the engine's hottest code path — the batched event
drain of :meth:`repro.core.engine.Simulation._drain_events` — factored
into a free function over a ``Simulation`` instance, selected at run
time by the ``REPRO_TLS_KERNEL`` environment switch (see
:data:`repro.core.engine.KERNEL_ENV`).

The function mirrors the in-class reference loop statement for
statement; both must stay in lock-step, and CI runs the golden corpus
on both legs to assert byte-identical results. Keeping the loop in a
self-contained module makes it compilable ahead of time with mypyc::

    python -m pip install mypy
    python -m mypyc src/repro/core/_kernel.py

which drops a compiled extension next to this file that Python's import
machinery then prefers. Everything the loop touches is either a plain
container (list, dict, bytearray, tuple), a float/int, or an opaque
object whose attributes are accessed dynamically, so the module stays
inside the mypyc-supported subset. When no compiled extension is
present the plain Python source runs — still a valid A/B leg for the
byte-equality check, just not a faster one
(:func:`repro.core.engine.kernel_info` reports which variant loaded).

Simulated behaviour is identical either way by construction: the loop
performs exactly the same mutations in exactly the same order as the
reference, so enabling the kernel requires no ENGINE_VERSION bump.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Any

from repro.errors import SimulationError
from repro.memsys.address import WORDS_PER_LINE
from repro.memsys.cache import ARCH_TASK_ID, KEY_SHIFT
from repro.tls.task import STEP_BUSY, STEP_READ, STEP_WRITE

_LINE_SHIFT: int = WORDS_PER_LINE.bit_length() - 1
_KEY_SHIFT: int = KEY_SHIFT


def drain(sim: Any) -> None:
    """Drain ``sim``'s event queue to completion (no hook attached).

    Mirror of ``Simulation._drain_events`` — see that method for the
    batching and fast-path rationale, and keep the two bodies in sync.
    """
    # Bind everything the loop touches to locals once.
    events = sim._events
    pop_batch = events.pop_batch
    push = events.push
    max_events = sim.max_events
    processed = sim._events_processed
    procs = sim.procs
    directory = sim.directory
    dir_rows = directory._row
    dir_producers = directory._producers
    dir_readers = directory._readers
    dir_words = directory._words
    dstats = directory.stats
    l1_keys = [p.l1._key_slot for p in procs]
    l1_touch = [p.l1._touch for p in procs]
    l1_dirty = [p.l1._dirty for p in procs]
    l1_stats = [p.l1.stats for p in procs]
    accounts = [p.account._cycles for p in procs]
    inflight_start = sim._inflight_start
    inflight_busy = sim._inflight_busy
    inflight_mem = sim._inflight_mem
    inflight_live = sim._inflight_live
    lat_l1 = sim._lat_l1f
    is_sv = sim._is_sv
    fast_rw = not sim._line_gran
    try:
        while not sim._finished:
            if not events:
                raise SimulationError(
                    f"event queue empty before completion "
                    f"(committed {sim.commit.next_to_commit}/"
                    f"{sim.commit.n_tasks})"
                )
            batch = pop_batch()
            when = batch[0][0]
            sim.now = when
            for event in batch:
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"exceeded {sim.max_events} events; "
                        f"likely livelock"
                    )
                fn = event[2]
                if fn is not None:
                    fn(*event[3], when)
                    if sim._finished:
                        break
                    continue
                # ---- op completion (inlined _op_done) ----
                proc, epoch, run, attempt, busy, mem = event[3]
                if proc.epoch != epoch or run.attempt != attempt:
                    continue  # aborted by a squash
                pid = proc.proc_id
                inflight_live[pid] = False
                account = accounts[pid]
                account[0] += busy   # CycleCategory.BUSY
                account[1] += mem    # CycleCategory.MEMORY
                run.attempt_busy += busy
                # ---- advance (inlined) ----
                kinds = run.step_kind
                i = run.op_index
                if i == len(kinds):
                    sim._task_done(proc, run, when)
                    if sim._finished:
                        break
                    continue
                kind = kinds[i]
                if kind == STEP_BUSY:
                    step_busy = run.step_busy[i]
                    run.op_index = i + 1
                    inflight_start[pid] = when
                    inflight_busy[pid] = step_busy
                    inflight_mem[pid] = 0.0
                    inflight_live[pid] = True
                    seq = sim._seq + 1
                    sim._seq = seq
                    push((when + step_busy, seq, None,
                          (proc, epoch, run, attempt, step_busy, 0.0)))
                    continue
                if fast_rw:
                    word = run.step_word[i]
                    tid = run.spec.task_id
                    if kind == STEP_READ:
                        # version_for_read against the interned rows.
                        row = dir_rows.get(word)
                        if row is None:
                            producer = ARCH_TASK_ID
                        else:
                            producers = dir_producers[row]
                            idx = (bisect_right(producers, tid)
                                   if producers else 0)
                            producer = (producers[idx - 1] if idx
                                        else ARCH_TASK_ID)
                        line = word >> _LINE_SHIFT
                        slot = l1_keys[pid].get(
                            (line << _KEY_SHIFT) + producer + 2)
                        if slot is not None:
                            # L1 hit on the exact version: touch,
                            # record the read, complete at L1 latency.
                            l1_touch[pid][slot] = when
                            l1_stats[pid].hits += 1
                            dstats.reads += 1
                            if producer != tid:
                                if producer != ARCH_TASK_ID:
                                    dstats.forwarded_reads += 1
                                if row is None:
                                    row = len(dir_words)
                                    dir_rows[word] = row
                                    dir_producers.append([])
                                    dir_readers.append({tid: producer})
                                    dir_words.append(word)
                                else:
                                    readers = dir_readers[row]
                                    previous = readers.get(tid)
                                    if (previous is None
                                            or producer < previous):
                                        readers[tid] = producer
                                run.read_words.add(word)
                            observed = run.observed_reads
                            if word not in observed:
                                observed[word] = producer
                            run.op_index = i + 1
                            inflight_start[pid] = when
                            inflight_busy[pid] = 0.0
                            inflight_mem[pid] = lat_l1
                            inflight_live[pid] = True
                            seq = sim._seq + 1
                            sim._seq = seq
                            push((when + lat_l1, seq, None,
                                  (proc, epoch, run, attempt,
                                   0.0, lat_l1)))
                            continue
                    elif not is_sv:
                        # Write hitting the task's own L1 version.
                        line = word >> _LINE_SHIFT
                        slot = l1_keys[pid].get(
                            (line << _KEY_SHIFT) + tid + 2)
                        if slot is not None:
                            l1_touch[pid][slot] = when
                            l1_stats[pid].hits += 1
                            l1_dirty[pid][slot] = 1
                            words = run.words_by_line.get(line)
                            if words is None:
                                run.words_by_line[line] = {word}
                            else:
                                words.add(word)
                            # record_write against the interned rows.
                            dstats.writes += 1
                            row = dir_rows.get(word)
                            if row is None:
                                dir_rows[word] = len(dir_words)
                                dir_producers.append([tid])
                                dir_readers.append({})
                                dir_words.append(word)
                            else:
                                producers = dir_producers[row]
                                idx = bisect_right(producers, tid)
                                if idx == 0 or producers[idx - 1] != tid:
                                    insort(producers, tid)
                                readers = dir_readers[row]
                                if readers:
                                    violated = [
                                        reader
                                        for reader, seen
                                        in readers.items()
                                        if reader > tid and seen < tid
                                    ]
                                    if violated:
                                        dstats.violations += 1
                                        sim._squash(min(violated), when)
                            run.op_index = i + 1
                            inflight_start[pid] = when
                            inflight_busy[pid] = 0.0
                            inflight_mem[pid] = lat_l1
                            inflight_live[pid] = True
                            seq = sim._seq + 1
                            sim._seq = seq
                            push((when + lat_l1, seq, None,
                                  (proc, epoch, run, attempt,
                                   0.0, lat_l1)))
                            continue
                # Anything else — L1 miss, SV write, line-granularity
                # mode, FMM first write, overflow refetch — takes the
                # reference method path from the current step.
                sim._advance(proc, when)
                if sim._finished:
                    break
    finally:
        sim._events_processed = processed
