"""Observation hooks on the simulation engine.

A :class:`SimulationHook` passed to :class:`~repro.core.engine.Simulation`
is called around the event loop: once before the first event, after every
processed event, and once when the run completes. Attaching a hook selects
a separate dispatch-loop variant compiled with the per-event callback
baked in; an unhooked run drains events through a loop that contains no
hook test at all, so observation costs nothing unless requested — and the
hot loop stays allocation-free either way.

Hooks are *observers*: they may read any engine state but must not mutate
it, schedule events, or otherwise perturb the simulated machine. The
validation subsystem (:mod:`repro.validate`) relies on this contract to
guarantee that a checked run produces bit-identical results to an
unchecked one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.engine import Simulation
    from repro.core.results import SimulationResult


class SimulationHook:
    """Base class / interface for engine observation hooks.

    Subclasses override any subset of the three callbacks; the defaults
    do nothing, so a hook only pays for what it watches.
    """

    def on_start(self, sim: "Simulation") -> None:
        """Called once, after processors claimed their first tasks but
        before the first event is popped."""

    def after_event(self, sim: "Simulation", now: float) -> None:
        """Called after each event callback has fully executed.

        ``now`` is the simulated time of the event just processed.
        """

    def on_finish(self, sim: "Simulation", result: "SimulationResult") -> None:
        """Called once, after the run completed and the result was built."""


class CompositeHook(SimulationHook):
    """Fan one engine hook slot out to several hooks, in order."""

    def __init__(self, hooks: tuple[SimulationHook, ...]) -> None:
        self.hooks = tuple(hooks)

    def on_start(self, sim: "Simulation") -> None:
        """Called once before the first event is dispatched."""
        for hook in self.hooks:
            hook.on_start(sim)

    def after_event(self, sim: "Simulation", now: float) -> None:
        """Called after every dispatched event."""
        for hook in self.hooks:
            hook.after_event(sim, now)

    def on_finish(self, sim: "Simulation", result: "SimulationResult") -> None:
        """Called once after the last event, before results are built."""
        for hook in self.hooks:
            hook.on_finish(sim, result)
