"""Machine and simulation configuration.

Two machine presets mirror the paper's Section 4.1 targets:

* :data:`NUMA_16` — a 16-node CC-NUMA with one processor per node, 2-way
  32-KB D-L1 and 4-way 512-KB L2 per node, nodes on a 2D mesh. Minimum
  round-trip latencies: L1 2, L2 12, local memory 75, remote memory 208
  (2 hops) and 291 (3 hops) cycles.
* :data:`CMP_8` — an 8-processor chip multiprocessor with 2-way 32-KB D-L1
  and 4-way 256-KB L2 per processor, crossbar to a shared off-chip L3.
  Minimum round-trip latencies: L1 2, L2 8, another L2 18, L3 38, memory
  102 cycles.

The cost knobs in :class:`CostModel` are the calibrated per-event costs of
the simplified timing model (see DESIGN.md Section 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError

#: Cache line size used throughout (bytes); the paper uses 64-byte lines.
LINE_BYTES = 64
#: Word size (bytes); violation detection is word-granular.
WORD_BYTES = 4
#: Words per cache line.
WORDS_PER_LINE = LINE_BYTES // WORD_BYTES


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity of one cache level.

    ``size_bytes`` must be divisible by ``assoc * LINE_BYTES`` and the
    resulting number of sets must be a power of two (so set selection is a
    mask of the line address).
    """

    size_bytes: int
    assoc: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0:
            raise ConfigurationError(
                f"cache size and associativity must be positive, got "
                f"{self.size_bytes}B / {self.assoc}-way"
            )
        if self.size_bytes % (self.assoc * LINE_BYTES):
            raise ConfigurationError(
                f"cache size {self.size_bytes}B is not divisible by "
                f"assoc*line ({self.assoc}*{LINE_BYTES})"
            )
        if self.n_sets & (self.n_sets - 1):
            raise ConfigurationError(
                f"number of sets must be a power of two, got {self.n_sets}"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * LINE_BYTES)

    @property
    def n_lines(self) -> int:
        return self.size_bytes // LINE_BYTES


@dataclass(frozen=True)
class CostModel:
    """Calibrated per-event costs of the simplified timing model (cycles).

    These knobs are where the paper's measured protocol overheads enter the
    model; defaults are shared by both machines except where a preset
    overrides them.
    """

    #: Effective instructions per cycle of the 4-issue dynamic superscalar.
    ipc: float = 2.0
    #: Cost of writing one dirty line back to main memory during an eager
    #: commit or a lazy final merge (writebacks are pipelined, so this is
    #: well below a full memory round trip).
    commit_writeback_per_line: int = 60
    #: Latency of passing the commit token to the (possibly remote) successor.
    token_pass: int = 90
    #: Per-line cost of the Lazy AMM end-of-loop merge. Cheaper than the
    #: token-holding commit write-backs: every processor flushes its
    #: committed dirty lines in parallel as a pipelined bulk transfer
    #: (the diamonds of Figure 6-(b)).
    final_merge_per_line: int = 10
    #: Extra latency for an access that must be serviced from the overflow
    #: memory area rather than a cache (on top of memory latency).
    overflow_penalty: int = 20
    #: VCL: combining/invalidating the stale committed versions of a line
    #: when its latest committed version is written back or fetched.
    vcl_combine: int = 12
    #: CRL: extra occupancy for an external read that must select among
    #: multiple same-address versions in one cache (MultiT&MV only).
    crl_select: int = 4
    #: Hardware undo-log insertion (mostly hidden by the write buffer).
    ulog_insert: int = 2
    #: Extra *instructions* per logged variable under software logging
    #: (FMM.Sw); converted to cycles through ``ipc``.
    swlog_instructions: int = 110
    #: Instructions executed by the software recovery handler per restored
    #: log entry under FMM (fully simulated, Section 4.1).
    fmm_recovery_instructions_per_entry: int = 60
    #: Eager-commit write-back slowdown under SingleT, where the processor
    #: itself performs the merge with plain loads/stores instead of the
    #: background merge hardware MultiT schemes use (Section 4.1).
    singlet_commit_factor: float = 1.7
    #: Cycles to gang-invalidate one squashed speculative line under AMM.
    amm_invalidate_per_line: float = 1.0
    #: Fixed cost of initiating any squash recovery (trap + dispatch).
    squash_fixed: int = 200
    #: Memory-bank occupancy per memory access (cycles). When non-zero,
    #: concurrent accesses to the same home bank queue behind each other —
    #: a lightweight model of the "contention accurately modeled" aspect of
    #: the paper's simulator. 0 disables queuing (latency-only model).
    memory_bank_service: int = 0
    #: Eager-commit merge mechanism: "writeback" (the base protocol writes
    #: each dirty line back to memory while holding the token) or "orb"
    #: (Steffan et al.'s Ownership Required Buffer: the commit instead
    #: issues an ownership request per modified non-owned line — the
    #: alternative discussed in the Section 4.1 footnote).
    eager_commit_mode: str = "writeback"
    #: Cost of one ORB ownership request at commit (cheaper than a data
    #: write-back: only a coherence transaction, no data transfer).
    orb_request_per_line: int = 36
    #: Per-processor overflow-area reservation, in cache lines. The paper
    #: assumes an overflow area large enough for any working set
    #: (``None`` = unbounded, the default — timing is then unchanged).
    #: With a finite capacity, versions beyond the reservation live in
    #: pageable memory and every access to them pays
    #: :attr:`overflow_excess_penalty` on top of the usual overflow costs
    #: — the knob the design-space exploration's overflow axis sweeps.
    overflow_capacity_lines: int | None = None
    #: Extra cycles per access to an overflow line beyond
    #: :attr:`overflow_capacity_lines` (ignored while capacity is
    #: unbounded).
    overflow_excess_penalty: int = 60

    def __post_init__(self) -> None:
        if self.ipc <= 0:
            raise ConfigurationError(f"ipc must be positive, got {self.ipc}")
        if self.eager_commit_mode not in ("writeback", "orb"):
            raise ConfigurationError(
                f"eager_commit_mode must be 'writeback' or 'orb', got "
                f"{self.eager_commit_mode!r}")
        if (self.overflow_capacity_lines is not None
                and self.overflow_capacity_lines <= 0):
            raise ConfigurationError(
                f"overflow_capacity_lines must be positive or None, got "
                f"{self.overflow_capacity_lines}")

    def cycles_for_instructions(self, instructions: float) -> float:
        """Busy cycles needed to execute ``instructions`` at the model IPC."""
        return instructions / self.ipc


@dataclass(frozen=True)
class MachineConfig:
    """A complete machine description consumed by the simulation engine."""

    name: str
    n_procs: int
    l1: CacheGeometry
    l2: CacheGeometry
    #: Round-trip latency of an L1 hit.
    lat_l1: int
    #: Round-trip latency of an L2 hit.
    lat_l2: int
    #: Round-trip latency to memory, indexed by network hop distance.
    #: NUMA: {0: local, 1..3: remote}; CMP: a single distance through L3.
    lat_memory_by_hops: dict[int, int]
    #: Round-trip latency of a cache-to-cache transfer from another
    #: processor at a given hop distance.
    lat_remote_cache_by_hops: dict[int, int]
    #: Shared L3 hit latency (CMP only; ``None`` when there is no L3).
    lat_l3: int | None = None
    l3: CacheGeometry | None = None
    #: Mesh side for NUMA hop computation; ``None`` means all-equidistant
    #: (crossbar).
    mesh_side: int | None = None
    costs: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.n_procs <= 0:
            raise ConfigurationError(f"n_procs must be positive, got {self.n_procs}")
        if self.mesh_side is not None and self.mesh_side**2 < self.n_procs:
            raise ConfigurationError(
                f"mesh {self.mesh_side}x{self.mesh_side} cannot hold "
                f"{self.n_procs} nodes"
            )
        if not self.lat_memory_by_hops:
            raise ConfigurationError("lat_memory_by_hops must not be empty")

    def hops(self, node_a: int, node_b: int) -> int:
        """Network hop distance between two nodes.

        Mesh distances beyond the latency table the paper provides are
        capped at the table's maximum (the paper quotes latencies up to 3
        protocol hops).
        """
        from repro.interconnect import topology

        distance = topology(self.n_procs, self.mesh_side).hops(node_a, node_b)
        return min(distance, self.max_hops)

    @property
    def max_hops(self) -> int:
        return max(self.lat_memory_by_hops)

    def memory_latency(self, requester: int, home: int) -> int:
        """Round-trip latency from ``requester`` to memory at ``home``."""
        return self.lat_memory_by_hops[self.hops(requester, home)]

    def remote_cache_latency(self, requester: int, owner: int) -> int:
        """Round-trip latency of a cache-to-cache transfer."""
        return self.lat_remote_cache_by_hops[self.hops(requester, owner)]

    def home_node(self, line_addr: int) -> int:
        """Home node of a line (round-robin interleaving by line address)."""
        return line_addr % self.n_procs

    def with_l2(self, geometry: CacheGeometry) -> "MachineConfig":
        """A copy of this machine with a different L2 (for Lazy.L2)."""
        return replace(self, l2=geometry)

    def with_costs(self, costs: CostModel) -> "MachineConfig":
        """A copy of this machine with different cost knobs."""
        return replace(self, costs=costs)


def _numa_hop_latencies() -> tuple[dict[int, int], dict[int, int]]:
    """NUMA latency tables from the paper, with 1-hop interpolated.

    The paper quotes local (75), 2-hop (208) and 3-hop (291) memory round
    trips; a 1-hop remote access is interpolated between local and 2-hop.
    Cache-to-cache transfers cost roughly the memory latency of the owner's
    node plus one forwarding leg.
    """
    memory = {0: 75, 1: 142, 2: 208, 3: 291}
    remote_cache = {0: 40, 1: 150, 2: 216, 3: 299}
    return memory, remote_cache


_NUMA_MEM, _NUMA_CACHE = _numa_hop_latencies()

#: The paper's 16-node scalable CC-NUMA (Section 4.1).
NUMA_16 = MachineConfig(
    name="CC-NUMA-16",
    n_procs=16,
    l1=CacheGeometry(size_bytes=32 * 1024, assoc=2),
    l2=CacheGeometry(size_bytes=512 * 1024, assoc=4),
    lat_l1=2,
    lat_l2=12,
    lat_memory_by_hops=_NUMA_MEM,
    lat_remote_cache_by_hops=_NUMA_CACHE,
    mesh_side=4,
    costs=CostModel(),
)

#: The enlarged-L2 NUMA used for the Lazy.L2 bar of Figure 10
#: (4-MB, 16-way L2).
NUMA_16_BIG_L2 = NUMA_16.with_l2(CacheGeometry(size_bytes=4 * 1024 * 1024, assoc=16))

#: The paper's 8-processor CMP (Section 4.1). Memory and L3 are
#: equidistant from every processor through the crossbar.
CMP_8 = MachineConfig(
    name="CMP-8",
    n_procs=8,
    l1=CacheGeometry(size_bytes=32 * 1024, assoc=2),
    l2=CacheGeometry(size_bytes=256 * 1024, assoc=4),
    lat_l1=2,
    lat_l2=8,
    lat_memory_by_hops={0: 102, 1: 102},
    lat_remote_cache_by_hops={0: 18, 1: 18},
    lat_l3=38,
    l3=CacheGeometry(size_bytes=16 * 1024 * 1024, assoc=4),
    mesh_side=None,
    costs=CostModel(
        commit_writeback_per_line=28,
        token_pass=24,
        final_merge_per_line=8,
        overflow_penalty=12,
        vcl_combine=4,
        crl_select=4,
    ),
)

#: Machines keyed by name, for the CLI and experiment harness.
MACHINES: dict[str, MachineConfig] = {
    "numa16": NUMA_16,
    "numa16-bigl2": NUMA_16_BIG_L2,
    "cmp8": CMP_8,
}


def _extend_hop_table(table: dict[int, int], diameter: int,
                      what: str) -> dict[int, int]:
    """A hop-latency table covering every distance up to ``diameter``.

    The base table must be contiguous (keys exactly ``0..max``); gaps
    would silently map real hop distances onto the wrong latency, so they
    are rejected. Distances beyond the table are linearly extrapolated
    from its last per-hop increment — the per-hop cost of the mesh the
    base table was measured on.
    """
    max_hop = max(table)
    if sorted(table) != list(range(max_hop + 1)):
        raise ConfigurationError(
            f"{what} table has gaps: keys {sorted(table)} are not "
            f"contiguous from 0; cannot derive latencies for a scaled mesh"
        )
    if diameter <= max_hop:
        return dict(table)
    if max_hop == 0:
        raise ConfigurationError(
            f"{what} table has a single (local) entry; cannot extrapolate "
            f"latencies out to {diameter} hops"
        )
    per_hop = table[max_hop] - table[max_hop - 1]
    extended = dict(table)
    for hop in range(max_hop + 1, diameter + 1):
        extended[hop] = extended[hop - 1] + per_hop
    return extended


def scaled_machine(base: MachineConfig, n_procs: int) -> MachineConfig:
    """A copy of ``base`` with a different processor count.

    Used by tests, ablations, and the design-space exploration's
    processor-count axis; the mesh side grows to the smallest square that
    holds the processors. The hop-latency tables are validated
    (contiguous hop keys) and extended out to the derived mesh diameter by
    linear extrapolation, so a non-power-of-two or larger-than-base count
    never silently folds distant nodes onto the base table's last entry.
    """
    if n_procs <= 0:
        raise ConfigurationError(f"n_procs must be positive, got {n_procs}")
    mesh_side = None
    lat_memory = base.lat_memory_by_hops
    lat_remote = base.lat_remote_cache_by_hops
    if base.mesh_side is not None:
        from repro.interconnect import topology

        mesh_side = max(1, math.isqrt(n_procs - 1) + 1)
        diameter = topology(n_procs, mesh_side).diameter
        lat_memory = _extend_hop_table(lat_memory, diameter, "memory latency")
        lat_remote = _extend_hop_table(lat_remote, diameter,
                                       "remote-cache latency")
    return replace(base, n_procs=n_procs, mesh_side=mesh_side,
                   lat_memory_by_hops=lat_memory,
                   lat_remote_cache_by_hops=lat_remote,
                   name=f"{base.name}-x{n_procs}")
