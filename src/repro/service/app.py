"""The simulation service: async coordination over the sync runner.

:class:`SimulationService` is the engine-agnostic core behind the HTTP
layer (:mod:`repro.service.http`). It owns exactly one
:class:`~repro.runner.runner.SweepRunner` — and therefore one memory
LRU, one shared sharded tier, and one
:class:`~repro.runner.singleflight.SingleFlight` registry — so every
request on a frontend funnels into the same cache/stampede machinery the
CLI uses. The asyncio side never blocks on a simulation: compute runs in
a small thread pool, and per-cell completion (the runner's ``progress``
callback) is marshalled back onto the event loop and fanned out to any
number of streaming subscribers.

Determinism contract, restated for the wire: a response's ``digest`` is
the SHA-256 of the result's canonical byte form
(:func:`~repro.analysis.serialization.canonical_result_bytes`), so a
client can verify that what it decoded over HTTP is bit-identical to a
local run of the same job — no matter which tier served it.
"""

from __future__ import annotations

import asyncio
import json
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.runner.cache import MemoryResultCache, ResultCache
from repro.runner.jobs import SimJob
from repro.runner.runner import SweepRunner, result_from_payload

#: Default bound (seconds) a request waits on a computation another
#: request leads before failing with a timeout instead of hanging.
DEFAULT_INFLIGHT_TIMEOUT = 300.0

#: Default thread-pool width for compute dispatch. Each thread mostly
#: waits on the runner (which itself fans out to processes), so this
#: bounds concurrent *sweeps*, not concurrent simulations.
DEFAULT_WORKERS = 8

#: Memory-tier size for a service frontend: larger than the CLI default
#: because a warm frontend's whole point is serving repeated lookups
#: from process memory.
DEFAULT_SERVICE_MEMORY_ENTRIES = 1024

#: How many *finished* sweeps a frontend keeps around for late status /
#: event-replay reads. Beyond this, the oldest finished sweeps (and
#: their full event histories) are dropped so a long-running server's
#: memory stays bounded; running sweeps are never pruned.
MAX_FINISHED_SWEEPS = 256

#: Bound on the key → canonical-digest memo. Entries are ~100 bytes, so
#: this is generosity, not pressure — the point is that the memo cannot
#: grow monotonically with distinct keys served.
MAX_DIGEST_MEMO_ENTRIES = 4096


# Re-exported from its home in the runner layer: the digest is what the
# fleet's bit-identity cross-check hashes, so it lives beside the cache
# payload encoding rather than in the HTTP-facing service.
from repro.runner.runner import canonical_payload_digest  # noqa: E402,F401


@dataclass
class SweepState:
    """Bookkeeping for one submitted sweep, shared by all subscribers."""

    sweep_id: str
    keys: list[str]
    descriptions: list[str]
    total: int
    done: int = 0
    status: str = "running"  # running | done | failed
    error: str | None = None
    #: Event history, appended only from the event loop; late subscribers
    #: replay it from the start, so every waiter sees the full stream.
    events: list[dict[str, Any]] = field(default_factory=list)
    cond: asyncio.Condition = field(default_factory=asyncio.Condition)

    @property
    def finished(self) -> bool:
        """Whether the terminal event has been published."""
        return self.status != "running"

    def to_dict(self) -> dict[str, Any]:
        """The ``GET /v1/sweeps/{id}`` status body."""
        body: dict[str, Any] = {
            "sweep_id": self.sweep_id,
            "status": self.status,
            "done": self.done,
            "total": self.total,
            "keys": list(self.keys),
            "events_url": f"/v1/sweeps/{self.sweep_id}/events",
        }
        if self.error is not None:
            body["error"] = self.error
        return body


class SimulationService:
    """Async facade over one shared :class:`SweepRunner`."""

    def __init__(self, runner: SweepRunner | None = None,
                 cache_dir: str | None = None,
                 jobs: int | None = None,
                 workers: int = DEFAULT_WORKERS,
                 use_disk: bool = True,
                 inflight_timeout: float = DEFAULT_INFLIGHT_TIMEOUT,
                 dispatcher: Any = None) -> None:
        if runner is None:
            runner = SweepRunner(
                jobs=jobs,
                cache=ResultCache(cache_dir) if use_disk else None,
                memory_cache=MemoryResultCache(
                    DEFAULT_SERVICE_MEMORY_ENTRIES),
                inflight_timeout=inflight_timeout,
                dispatcher=dispatcher,
            )
        self.runner = runner
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-svc")
        self._loop: asyncio.AbstractEventLoop | None = None
        self._sweeps: dict[str, SweepState] = {}
        self._sweep_seq = 0
        #: key -> canonical digest, memoized (bounded LRU) so the warm
        #: lookup path never re-decodes a payload it has digested
        #: recently.
        self._digests: OrderedDict[str, str] = OrderedDict()
        self.counters: dict[str, int] = {
            "jobs.submitted": 0,
            "sweeps.submitted": 0,
            "results.served": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind_loop(self) -> None:
        """Adopt the running event loop (call once, from the loop)."""
        self._loop = asyncio.get_running_loop()

    def close(self) -> None:
        """Release the compute thread pool."""
        self._executor.shutdown(wait=False, cancel_futures=True)

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The bound event loop (``bind_loop`` must have run)."""
        assert self._loop is not None, "SimulationService.bind_loop not called"
        return self._loop

    # ------------------------------------------------------------------
    # Cached lookup (the warm path)
    # ------------------------------------------------------------------
    def lookup_raw(self, key: str) -> tuple[str, bytes] | None:
        """Tiered read-only lookup: ``(source, payload bytes)`` or miss.

        Memory tier first (sub-millisecond: one dict probe, no decode);
        a disk hit is promoted into the memory tier, exactly as the
        runner promotes. Never computes.
        """
        raw = self.runner.memory_cache.load(key)
        if raw is not None:
            return "memory", raw
        cache = self.runner.cache
        if cache is not None:
            raw = cache.load_raw(key)
            if raw is not None:
                self.runner.memory_cache.store(key, raw)
                return "disk", raw
        return None

    def digest_for(self, key: str, raw: bytes) -> str:
        """The (memoized) canonical digest of ``key``'s payload.

        The memo is a bounded LRU (:data:`MAX_DIGEST_MEMO_ENTRIES`):
        a frontend serving an unbounded stream of distinct keys pays an
        occasional re-digest instead of growing without limit.
        """
        digest = self._digests.get(key)
        if digest is None:
            digest = canonical_payload_digest(raw)
            self._digests[key] = digest
            if len(self._digests) > MAX_DIGEST_MEMO_ENTRIES:
                self._digests.popitem(last=False)
        else:
            self._digests.move_to_end(key)
        return digest

    def envelope_bytes(self, key: str, source: str, raw: bytes,
                       description: str | None = None) -> bytes:
        """The result-envelope JSON, spliced around the stored bytes.

        The payload is embedded verbatim (it is already compact JSON),
        so the warm path serves without decoding or re-encoding the
        result — the property that keeps a memory hit sub-millisecond.
        """
        self.counters["results.served"] += 1
        head: dict[str, Any] = {
            "key": key,
            "source": source,
            "digest": self.digest_for(key, raw),
        }
        if description is not None:
            head["describe"] = description
        prefix = json.dumps(head, separators=(",", ":"))
        return prefix[:-1].encode() + b',"result":' + raw + b"}"

    # ------------------------------------------------------------------
    # Compute paths
    # ------------------------------------------------------------------
    async def run_job(self, job: SimJob) -> bytes:
        """``POST /v1/jobs``: resolve one job, computing on a miss.

        Returns the envelope bytes. Cache hits never leave the event
        loop; misses run ``run_many([job])`` in the thread pool, where
        the runner's single-flight collapses concurrent identical
        requests into one computation.
        """
        self.counters["jobs.submitted"] += 1
        key = job.cache_key()
        hit = self.lookup_raw(key)
        if hit is None:
            await self.loop.run_in_executor(
                self._executor, self.runner.run_many, [job])
            hit = self.lookup_raw(key)
            if hit is None:  # pragma: no cover - runner always stores
                raise RuntimeError(f"computed job {key} left no cache entry")
            hit = ("computed", hit[1])
        source, raw = hit
        return self.envelope_bytes(key, source, raw,
                                   description=job.describe())

    async def submit_sweep(self, jobs: Sequence[SimJob]) -> SweepState:
        """``POST /v1/sweeps``: launch a grid and return its state.

        The sweep runs in the thread pool; per-cell completion events are
        marshalled onto the event loop and appended to the sweep's
        history, waking every streaming subscriber.
        """
        self.counters["sweeps.submitted"] += 1
        self._sweep_seq += 1
        sweep_id = f"s{self._sweep_seq:06d}"
        distinct: list[str] = []
        seen: set[str] = set()
        descriptions = []
        for job in jobs:
            key = job.cache_key()
            if key not in seen:
                seen.add(key)
                distinct.append(key)
                descriptions.append(job.describe())
        state = SweepState(sweep_id=sweep_id, keys=distinct,
                           descriptions=descriptions, total=len(distinct))
        self._sweeps[sweep_id] = state
        loop = self.loop

        def _progress(key: str, source: str) -> None:
            # Called from the compute thread: hop onto the loop.
            loop.call_soon_threadsafe(self._publish_result, state, key,
                                      source)

        async def _drive() -> None:
            try:
                await loop.run_in_executor(
                    self._executor,
                    lambda: self.runner.run_many(list(jobs),
                                                 progress=_progress))
            except Exception as exc:  # noqa: BLE001 - reported to clients
                await self._finish(state, "failed", error=str(exc))
            else:
                await self._finish(state, "done")

        loop.create_task(_drive())
        return state

    def sweep(self, sweep_id: str) -> SweepState | None:
        """The state of a previously submitted sweep, if any."""
        return self._sweeps.get(sweep_id)

    def pending(self, key: str) -> bool:
        """Whether a computation for ``key`` is currently in flight."""
        return self.runner.flights.pending(key)

    # ------------------------------------------------------------------
    # Event streaming
    # ------------------------------------------------------------------
    def _publish_result(self, state: SweepState, key: str,
                        source: str) -> None:
        """Append one per-cell completion event (loop thread only)."""
        state.done += 1
        self._append_event(state, {
            "event": "result", "key": key, "source": source,
            "done": state.done, "total": state.total,
        })

    async def _finish(self, state: SweepState, status: str,
                      error: str | None = None) -> None:
        """Publish the terminal event and mark the sweep finished."""
        state.status = status
        state.error = error
        event: dict[str, Any] = {"event": "end", "status": status,
                                 "done": state.done, "total": state.total}
        if error is not None:
            event["error"] = error
        self._append_event(state, event)
        self._prune_finished_sweeps()

    def _prune_finished_sweeps(self) -> None:
        """Drop the oldest finished sweeps beyond the retention cap.

        Runs on the event loop (so no locking); live ``stream_events``
        subscribers hold the :class:`SweepState` object directly and
        are unaffected — pruning only ends *new* lookups by id.
        """
        finished = [sweep_id for sweep_id, state in self._sweeps.items()
                    if state.finished]
        excess = len(finished) - MAX_FINISHED_SWEEPS
        for sweep_id in finished[:max(0, excess)]:
            del self._sweeps[sweep_id]

    def _append_event(self, state: SweepState,
                      event: dict[str, Any]) -> None:
        sync = state.cond
        state.events.append(event)

        async def _wake() -> None:
            async with sync:
                sync.notify_all()

        self.loop.create_task(_wake())

    async def stream_events(self, state: SweepState):
        """Yield the sweep's events from the beginning until terminal.

        Any number of subscribers can stream the same sweep; each gets
        the full history (replayed) plus live events as they land.
        """
        index = 0
        while True:
            while index < len(state.events):
                event = state.events[index]
                index += 1
                yield event
                if event.get("event") == "end":
                    return
            async with state.cond:
                await state.cond.wait_for(
                    lambda: len(state.events) > index)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict[str, Any]:
        """The ``GET /v1/cache/stats`` body: every tier's counters."""
        from repro.core.engine import ENGINE_VERSION

        runner = self.runner
        memory = runner.memory_cache
        body: dict[str, Any] = {
            "engine_version": ENGINE_VERSION,
            "memory": {
                **memory.stats.to_dict(),
                "entries": len(memory),
                "max_entries": memory.max_entries,
            },
            "singleflight": runner.flights.stats.to_dict(),
            "dispatch": self._dispatch_stats(runner),
            "service": dict(self.counters),
            "sweeps": {
                "submitted": self._sweep_seq,
                "running": sum(1 for s in self._sweeps.values()
                               if not s.finished),
            },
        }
        if runner.cache is not None:
            body["shared"] = {
                **runner.cache.stats.to_dict(),
                "backend": runner.cache.describe(),
                "entries": len(runner.cache),
            }
        else:
            body["shared"] = None
        return body

    @staticmethod
    def _dispatch_stats(runner: SweepRunner) -> dict[str, Any] | None:
        """The ``dispatch`` block of the stats body.

        Describes whichever :class:`~repro.dist.dispatch.Dispatcher`
        backs the runner — ``local-pool`` counters for the single-host
        path, worker/chunk/divergence counters for a fleet — so service
        benchmarks are comparable across backends.
        """
        dispatcher = getattr(runner, "dispatcher", None)
        if dispatcher is None:
            return None
        body: dict[str, Any] = {"backend": dispatcher.describe()}
        stats_dict = getattr(dispatcher, "stats_dict", None)
        if stats_dict is not None:
            body.update(stats_dict())
        else:
            stats = getattr(dispatcher, "stats", None)
            if stats is not None:
                body.update(stats.to_dict())
        return body
