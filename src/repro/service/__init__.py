"""Simulation-as-a-service: the async HTTP/JSON API over the runner.

``repro-tls serve`` wraps the existing engine/runner contracts — never a
second semantics — in an asyncio frontend: content-addressed job and
sweep submission, streaming per-cell progress, and warm-path result
lookups served straight from the in-process memory tier over the shared
sharded disk tier. See ``docs/service.md`` for the API reference and
``docs/architecture.md`` for where the service sits in the stack.
"""

from repro.service.app import (
    DEFAULT_INFLIGHT_TIMEOUT,
    DEFAULT_WORKERS,
    SimulationService,
    SweepState,
    canonical_payload_digest,
)
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.http import (
    ServiceThread,
    bound_port,
    serve_forever,
    start_server,
)
from repro.service.schemas import (
    MAX_SWEEP_CELLS,
    ServiceError,
    job_from_request,
    jobs_from_sweep_request,
)

__all__ = [
    "DEFAULT_INFLIGHT_TIMEOUT",
    "DEFAULT_WORKERS",
    "MAX_SWEEP_CELLS",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceThread",
    "SimulationService",
    "SweepState",
    "bound_port",
    "canonical_payload_digest",
    "job_from_request",
    "jobs_from_sweep_request",
    "serve_forever",
    "start_server",
]
