"""Blocking HTTP client for the simulation service (stdlib only).

:class:`ServiceClient` speaks the ``repro-tls serve`` API from scripts,
tests, the CI smoke driver, and the ``repro-tls sweep --server``
passthrough. One client holds one keep-alive connection for
request/response calls; the progress stream opens its own connection
(it occupies one until the sweep's terminal event).

Verification is built in: :meth:`result_from_envelope` reconstructs the
:class:`~repro.core.results.SimulationResult` and checks the envelope's
``digest`` against the locally recomputed canonical byte form, so a
client never silently accepts a result that differs from what a local
run would have produced.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Iterator
from urllib.parse import urlsplit

from repro.errors import ReproError
from repro.service.app import canonical_payload_digest


class ServiceClientError(ReproError):
    """A request the server refused (or a transport failure)."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


def _encode(payload: dict[str, Any]) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode()


class ServiceClient:
    """Blocking JSON client for one service frontend."""

    def __init__(self, base_url: str, timeout: float = 600.0) -> None:
        parts = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ServiceClientError(
                0, "bad_url", f"only http:// is supported, got {base_url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        """Drop the persistent connection (reopened on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _request(self, method: str, path: str,
                 body: dict[str, Any] | None = None) -> dict[str, Any]:
        """One request/response exchange, retried once on a stale socket."""
        payload = _encode(body) if body is not None else None
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError,
                    OSError) as exc:
                self.close()
                if attempt:
                    raise ServiceClientError(
                        0, "transport",
                        f"{method} {path} failed: {exc}") from exc
        return self._decode(method, path, response.status, raw)

    @staticmethod
    def _decode(method: str, path: str, status: int,
                raw: bytes) -> dict[str, Any]:
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServiceClientError(
                status, "bad_response",
                f"{method} {path}: non-JSON response ({exc})")
        if status >= 400:
            error = (data.get("error") or {}) if isinstance(data, dict) \
                else {}
            raise ServiceClientError(
                status, error.get("code", "error"),
                error.get("message", f"{method} {path} -> HTTP {status}"))
        if not isinstance(data, dict):
            raise ServiceClientError(status, "bad_response",
                                     f"{method} {path}: expected an object")
        data["_status"] = status
        return data

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def cache_stats(self) -> dict[str, Any]:
        """``GET /v1/cache/stats``."""
        return self._request("GET", "/v1/cache/stats")

    def submit_job(self, request: dict[str, Any]) -> dict[str, Any]:
        """``POST /v1/jobs``: run (or replay) one job, returning its
        envelope (``key``/``source``/``digest``/``result``)."""
        return self._request("POST", "/v1/jobs", body=request)

    def get_job(self, key: str) -> dict[str, Any]:
        """``GET /v1/jobs/{key}``: fetch a cached result envelope.

        A 202 (still computing) returns ``{"status": "running"}`` with
        ``_status == 202``; a 404 raises ``unknown_key``.
        """
        return self._request("GET", f"/v1/jobs/{key}")

    def submit_sweep(self, request: dict[str, Any]) -> dict[str, Any]:
        """``POST /v1/sweeps``: launch a grid; returns the sweep summary
        (``sweep_id``/``keys``/``total``/``events_url``)."""
        return self._request("POST", "/v1/sweeps", body=request)

    def sweep_status(self, sweep_id: str) -> dict[str, Any]:
        """``GET /v1/sweeps/{id}``."""
        return self._request("GET", f"/v1/sweeps/{sweep_id}")

    def stream_events(self, sweep_id: str) -> Iterator[dict[str, Any]]:
        """``GET /v1/sweeps/{id}/events``: yield progress events.

        Blocks between events; returns after the terminal ``end`` event.
        Uses a dedicated connection so the client's request/response
        channel stays usable while streaming.
        """
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/sweeps/{sweep_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                self._decode("GET", f"/v1/sweeps/{sweep_id}/events",
                             response.status, response.read())
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                yield event
                if event.get("event") == "end":
                    return
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Verification helpers
    # ------------------------------------------------------------------
    @staticmethod
    def result_from_envelope(envelope: dict[str, Any],
                             verify: bool = True) -> Any:
        """Reconstruct the result carried by a job envelope.

        With ``verify`` (the default) the payload's canonical digest is
        recomputed locally and compared against the envelope's
        ``digest`` — a mismatch means the bytes were corrupted or the
        server runs a different engine version, and raises.
        """
        from repro.runner.runner import result_from_payload

        payload = envelope.get("result")
        if not isinstance(payload, dict):
            raise ServiceClientError(0, "bad_envelope",
                                     "envelope carries no result payload")
        if verify:
            expected = envelope.get("digest")
            actual = canonical_payload_digest(
                _encode(payload))
            if expected != actual:
                raise ServiceClientError(
                    0, "digest_mismatch",
                    f"result digest {actual} does not match the "
                    f"envelope's {expected}: corrupted transfer or "
                    f"mismatched engine versions")
        return result_from_payload(dict(payload))
