"""A dependency-free asyncio HTTP/1.1 frontend for the service.

Implements exactly what the API needs — request-line + header parsing,
``Content-Length`` bodies, keep-alive, JSON responses, and chunked
transfer encoding for the progress stream — on plain
:func:`asyncio.start_server`. No third-party framework: the runtime
stays standard-library-only, matching the rest of the repository.

Routes (full reference with schemas in ``docs/service.md``):

========  ==============================  =======================================
Method    Path                            Purpose
========  ==============================  =======================================
GET       ``/healthz``                    liveness probe
GET       ``/v1/cache/stats``             per-tier cache / single-flight counters
POST      ``/v1/jobs``                    run (or replay) one job, return result
GET       ``/v1/jobs/{key}``              fetch a result by content address
POST      ``/v1/sweeps``                  launch a job grid asynchronously
GET       ``/v1/sweeps/{id}``             sweep status summary
GET       ``/v1/sweeps/{id}/events``      chunked JSON-lines progress stream
========  ==============================  =======================================
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
from typing import Any

from repro.service.app import SimulationService
from repro.service.schemas import (
    ServiceError,
    job_from_request,
    jobs_from_sweep_request,
)

#: Request bodies above this size are refused with 413.
MAX_BODY_BYTES = 4 * 1024 * 1024
#: Request line + headers above this size are refused.
MAX_HEADER_BYTES = 64 * 1024
#: Idle keep-alive connections are closed after this many seconds.
#: Also bounds how long a fresh connection may dribble its first
#: request, so a silent client cannot hold a handler task forever.
KEEPALIVE_TIMEOUT = 60.0

#: Job keys on the wire must be full SHA-256 hex digests. Anything else
#: is refused before it can reach a cache tier — path characters in a
#: key must never make it to the directory backend.
_JOB_KEY_RE = re.compile(r"[0-9a-f]{64}")

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 500: "Internal Server Error",
    504: "Gateway Timeout",
}


def _reason(status: int) -> str:
    return _REASONS.get(status, "Unknown")


def _head(status: int, *, length: int | None = None, chunked: bool = False,
          close: bool = False) -> bytes:
    """Serialize a response head (status line + standard headers)."""
    lines = [f"HTTP/1.1 {status} {_reason(status)}",
             "Content-Type: application/json"]
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    else:
        lines.append(f"Content-Length: {length or 0}")
    lines.append("Connection: close" if close or chunked
                 else "Connection: keep-alive")
    return ("\r\n".join(lines) + "\r\n\r\n").encode()


def _json_body(obj: Any) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode()


class _HttpRequest:
    """One parsed request: method, path, headers, body."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str,
                 headers: dict[str, str], body: bytes) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        """The decoded JSON body (400 on anything malformed)."""
        if not self.body:
            raise ServiceError(400, "bad_request", "request body required")
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(400, "bad_json",
                               f"request body is not valid JSON: {exc}")


async def _read_request(
        reader: asyncio.StreamReader) -> _HttpRequest | None:
    """Parse one request off the stream; ``None`` at a clean close.

    Every read — the first request included — is bounded by
    :data:`KEEPALIVE_TIMEOUT`, so a connection that never sends (or
    never finishes) a request is dropped rather than pinned open.
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), KEEPALIVE_TIMEOUT)
    except (asyncio.IncompleteReadError, ConnectionError,
            asyncio.TimeoutError):
        return None
    except asyncio.LimitOverrunError:
        raise ServiceError(413, "headers_too_large",
                           "request head exceeds the size limit")
    if len(head) > MAX_HEADER_BYTES:
        raise ServiceError(413, "headers_too_large",
                           "request head exceeds the size limit")
    request_line, _, header_blob = head.decode(
        "latin-1").partition("\r\n")
    parts = request_line.split()
    if len(parts) != 3:
        raise ServiceError(400, "bad_request",
                           f"malformed request line {request_line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in header_blob.split("\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ServiceError(400, "bad_request",
                           f"bad Content-Length {length_text!r}")
    if length < 0:
        raise ServiceError(400, "bad_request",
                           f"bad Content-Length {length_text!r}")
    if length > MAX_BODY_BYTES:
        raise ServiceError(413, "body_too_large",
                           f"request body of {length} bytes exceeds the "
                           f"{MAX_BODY_BYTES}-byte limit")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
    return _HttpRequest(method.upper(), target.split("?", 1)[0],
                        headers, body)


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
async def _route(service: SimulationService,
                 request: _HttpRequest) -> tuple[int, bytes]:
    """Dispatch one non-streaming request → (status, body bytes)."""
    method, path = request.method, request.path

    if path == "/healthz":
        if method != "GET":
            raise ServiceError(405, "method_not_allowed",
                               f"{method} not allowed on {path}")
        return 200, _json_body({"status": "ok"})

    if path == "/v1/cache/stats":
        if method != "GET":
            raise ServiceError(405, "method_not_allowed",
                               f"{method} not allowed on {path}")
        return 200, _json_body(service.cache_stats())

    if path == "/v1/jobs":
        if method != "POST":
            raise ServiceError(405, "method_not_allowed",
                               "submit jobs with POST /v1/jobs")
        job = job_from_request(request.json())
        return 200, await service.run_job(job)

    if path.startswith("/v1/jobs/"):
        if method != "GET":
            raise ServiceError(405, "method_not_allowed",
                               f"{method} not allowed on {path}")
        key = path[len("/v1/jobs/"):]
        if _JOB_KEY_RE.fullmatch(key) is None:
            # Not a possible cache key (keys are SHA-256 hex digests);
            # refusing here keeps traversal-shaped paths away from the
            # cache tiers entirely.
            raise ServiceError(404, "unknown_key",
                               "job keys are 64-character lowercase hex "
                               "digests")
        hit = service.lookup_raw(key)
        if hit is not None:
            source, raw = hit
            return 200, service.envelope_bytes(key, source, raw)
        if service.pending(key):
            return 202, _json_body({"key": key, "status": "running"})
        raise ServiceError(404, "unknown_key",
                           f"no cached result under key {key!r}")

    if path == "/v1/sweeps":
        if method != "POST":
            raise ServiceError(405, "method_not_allowed",
                               "submit sweeps with POST /v1/sweeps")
        jobs = jobs_from_sweep_request(request.json())
        state = await service.submit_sweep(jobs)
        return 202, _json_body(state.to_dict())

    if path.startswith("/v1/sweeps/") and path.endswith("/events"):
        # GET streams never reach _route (handle_connection owns them),
        # so anything landing here used the wrong method.
        raise ServiceError(405, "method_not_allowed",
                           f"{method} not allowed on {path}")

    if path.startswith("/v1/sweeps/") and not path.endswith("/events"):
        if method != "GET":
            raise ServiceError(405, "method_not_allowed",
                               f"{method} not allowed on {path}")
        state = service.sweep(path[len("/v1/sweeps/"):])
        if state is None:
            raise ServiceError(404, "unknown_sweep",
                               "no such sweep on this frontend")
        return 200, _json_body(state.to_dict())

    raise ServiceError(404, "not_found", f"no route for {method} {path}")


async def _stream_sweep_events(service: SimulationService,
                               sweep_id: str,
                               writer: asyncio.StreamWriter) -> None:
    """``GET /v1/sweeps/{id}/events``: chunked JSON-lines until terminal."""
    state = service.sweep(sweep_id)
    if state is None:
        raise ServiceError(404, "unknown_sweep",
                           "no such sweep on this frontend")
    writer.write(_head(200, chunked=True))
    await writer.drain()
    async for event in service.stream_events(state):
        line = _json_body(event) + b"\n"
        writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
        await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()


async def _write_error(writer: asyncio.StreamWriter,
                       error: ServiceError) -> None:
    body = _json_body(error.to_dict())
    writer.write(_head(error.status, length=len(body), close=True) + body)
    await writer.drain()


async def handle_connection(service: SimulationService,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    """Serve one client connection (keep-alive) until it closes."""
    try:
        while True:
            try:
                request = await _read_request(reader)
            except ServiceError as exc:
                await _write_error(writer, exc)
                return
            if request is None:
                return
            if (request.method == "GET"
                    and request.path.startswith("/v1/sweeps/")
                    and request.path.endswith("/events")):
                sweep_id = request.path[
                    len("/v1/sweeps/"):-len("/events")]
                try:
                    await _stream_sweep_events(service, sweep_id, writer)
                except ServiceError as exc:
                    await _write_error(writer, exc)
                return  # streams always close the connection
            try:
                status, body = await _route(service, request)
            except ServiceError as exc:
                await _write_error(writer, exc)
                return
            except Exception as exc:  # noqa: BLE001 - surface as a 500
                await _write_error(writer, ServiceError(
                    500, "internal_error", f"{type(exc).__name__}: {exc}"))
                return
            close = (request.headers.get("connection", "")
                     .lower() == "close")
            writer.write(_head(status, length=len(body), close=close)
                         + body)
            await writer.drain()
            if close:
                return
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass


async def start_server(service: SimulationService, host: str = "127.0.0.1",
                       port: int = 0) -> asyncio.Server:
    """Bind the API server and adopt the running loop for ``service``."""
    service.bind_loop()

    async def _client(reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        await handle_connection(service, reader, writer)

    return await asyncio.start_server(
        _client, host, port, limit=MAX_HEADER_BYTES)


def bound_port(server: asyncio.Server) -> int:
    """The actual TCP port the server listens on (after ``port=0``)."""
    return server.sockets[0].getsockname()[1]


async def serve_forever(service: SimulationService, host: str,
                        port: int) -> None:
    """Run the server until cancelled (the ``repro-tls serve`` body)."""
    server = await start_server(service, host, port)
    address = ", ".join(
        f"http://{sock.getsockname()[0]}:{sock.getsockname()[1]}"
        for sock in server.sockets)
    print(f"repro-tls serve listening on {address}")
    async with server:
        await server.serve_forever()


class ServiceThread:
    """A service + HTTP server running on a background thread's loop.

    The harness for tests, the serve-smoke driver, and embedding: start
    it, talk to ``http://127.0.0.1:{port}`` from any thread with the
    blocking :class:`~repro.service.client.ServiceClient`, stop it when
    done.
    """

    def __init__(self, service: SimulationService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.Server | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()

    def start(self) -> "ServiceThread":
        """Launch the loop thread; returns once the socket is bound."""
        self._thread = threading.Thread(
            target=self._run, name="repro-tls-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread failed to start")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await start_server(self.service, self.host,
                                          self.port)
        self.port = bound_port(self._server)
        self._ready.set()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    @property
    def base_url(self) -> str:
        """The server's root URL."""
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Shut the server down and join the loop thread."""
        loop = self._loop
        if loop is not None and self._server is not None:
            server = self._server

            def _shutdown() -> None:
                # Closing the server stops serve_forever; cancelling the
                # remaining tasks lets asyncio.run tear the loop down.
                server.close()
                for task in asyncio.all_tasks(loop):
                    task.cancel()

            # One combined callback: scheduling close and cancel as two
            # separate threadsafe calls leaves a window where the first
            # ends serve_forever and asyncio.run closes the loop before
            # the second is scheduled, raising "Event loop is closed".
            try:
                loop.call_soon_threadsafe(_shutdown)
            except RuntimeError:
                pass  # loop already closed: the thread is already exiting
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.service.close()
