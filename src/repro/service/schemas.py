"""Request validation: JSON bodies → :class:`~repro.runner.jobs.SimJob`.

The service accepts exactly the job surface the runner already defines —
a named machine, a scheme (or the sequential baseline), a regenerable
:class:`~repro.runner.jobs.WorkloadSpec`, and the cache-identity engine
options. Nothing service-specific enters the cache key: a job submitted
over HTTP lands on the same content address as the same job run from the
CLI, which is what makes the shared tier a shared corpus.

Every validation failure raises :class:`ServiceError` with an HTTP
status and a machine-readable ``code``; the HTTP layer renders it as a
structured ``{"error": {"code", "message"}}`` body.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ReproError
from repro.runner.jobs import SimJob, WorkloadSpec

#: Upper bound on cells in one ``POST /v1/sweeps`` grid. The full paper
#: grid (3 machines x 9 schemes x 7 apps) is 189 cells; this leaves
#: generous headroom while refusing accidental combinatorial blowups.
MAX_SWEEP_CELLS = 4096

#: Guardrail on workload size: scale is a task-count multiplier, and a
#: huge one turns a request into a denial-of-service on the frontend.
MAX_SCALE = 16.0

_GRANULARITIES = ("word", "line")

#: Engine-option request fields forwarded to :class:`SimJob` verbatim
#: (all part of the cache identity).
_OPTION_FIELDS = ("high_level_patterns", "violation_granularity",
                  "check_invariants", "collect_metrics")


class ServiceError(ReproError):
    """A request the service refuses, carrying its HTTP rendering."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code

    def to_dict(self) -> dict[str, Any]:
        """The structured JSON error body."""
        return {"error": {"code": self.code, "message": str(self)}}


def _bad(code: str, message: str) -> ServiceError:
    return ServiceError(400, code, message)


# ----------------------------------------------------------------------
# Field parsing
# ----------------------------------------------------------------------
def _require_object(data: Any, what: str) -> dict[str, Any]:
    if not isinstance(data, dict):
        raise _bad("bad_request", f"{what} must be a JSON object, "
                                  f"got {type(data).__name__}")
    return data


def _parse_bool(data: dict[str, Any], field: str, default: bool) -> bool:
    value = data.get(field, default)
    if not isinstance(value, bool):
        raise _bad("bad_field", f"{field!r} must be a boolean")
    return value


def _parse_number(data: dict[str, Any], field: str, default: float,
                  *, low: float, high: float) -> float:
    value = data.get(field, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _bad("bad_field", f"{field!r} must be a number")
    if not low <= value <= high:
        raise _bad("bad_field",
                   f"{field!r} must be within [{low}, {high}], got {value}")
    return float(value)


def _parse_int(data: dict[str, Any], field: str, default: int,
               *, low: int, high: int) -> int:
    value = data.get(field, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad("bad_field", f"{field!r} must be an integer")
    if not low <= value <= high:
        raise _bad("bad_field",
                   f"{field!r} must be within [{low}, {high}], got {value}")
    return value


def resolve_machine(name: Any) -> Any:
    """A machine config from its registry name (presets + variants).

    Accepts both the CLI preset keys (``numa16``, ``cmp8``,
    ``numa16-bigl2``) and the derived-variant display names the explore
    registry publishes (e.g. ``CC-NUMA-16~l2_size=1M``).
    """
    from repro.core.config import MACHINES
    from repro.explore import machine_registry

    if not isinstance(name, str):
        raise _bad("bad_field", "'machine' must be a string")
    if name in MACHINES:
        return MACHINES[name]
    registry = machine_registry()
    if name in registry:
        return registry[name]
    raise _bad("unknown_machine",
               f"unknown machine {name!r}; presets: "
               f"{', '.join(MACHINES)} (see 'repro-tls list' for "
               f"derived variants)")


def resolve_scheme(name: Any) -> Any:
    """A scheme from its name; ``None``/``"sequential"`` = the baseline."""
    from repro.core.taxonomy import scheme_from_name

    if name is None or name == "sequential":
        return None
    if not isinstance(name, str):
        raise _bad("bad_field", "scheme names must be strings or null")
    try:
        return scheme_from_name(name)
    except (ReproError, KeyError, ValueError) as exc:
        raise _bad("unknown_scheme", f"unknown scheme {name!r}: {exc}")


def workload_spec_from_request(data: dict[str, Any]) -> WorkloadSpec:
    """A :class:`WorkloadSpec` from the request's workload fields."""
    from repro.workloads.apps import APPLICATIONS

    app = data.get("app")
    if not isinstance(app, str):
        raise _bad("bad_field", "'app' must be an application name string")
    if app not in APPLICATIONS:
        raise _bad("unknown_app", f"unknown application {app!r}; known: "
                                  f"{', '.join(APPLICATIONS)}")
    return WorkloadSpec(
        app=app,
        seed=_parse_int(data, "seed", 0, low=0, high=2**31 - 1),
        scale=_parse_number(data, "scale", 1.0, low=0.01, high=MAX_SCALE),
        invocations=_parse_int(data, "invocations", 1, low=1, high=64),
        iterations_per_task=_parse_number(
            data, "iterations_per_task", 1.0, low=0.1, high=64.0),
    )


def _options_from_request(data: dict[str, Any]) -> dict[str, Any]:
    """The engine options shared by job and sweep requests.

    ``traced`` is refused outright: a trace recorder cannot cross the
    wire or any cache tier, so traced jobs are CLI-only — exactly the
    rule the runner itself enforces by forcing them live.
    """
    if data.get("traced"):
        raise ServiceError(
            400, "uncacheable",
            "traced jobs are refused: a trace recorder cannot cross the "
            "HTTP or cache boundary; run traced jobs locally "
            "(repro-tls run / the Python API)")
    granularity = data.get("violation_granularity", "word")
    if granularity not in _GRANULARITIES:
        raise _bad("bad_field",
                   f"'violation_granularity' must be one of "
                   f"{_GRANULARITIES}, got {granularity!r}")
    return {
        "high_level_patterns": _parse_bool(data, "high_level_patterns",
                                           False),
        "violation_granularity": granularity,
        "check_invariants": _parse_bool(data, "check_invariants", False),
        "collect_metrics": _parse_bool(data, "collect_metrics", False),
    }


# ----------------------------------------------------------------------
# Request bodies
# ----------------------------------------------------------------------
def job_from_request(data: Any) -> SimJob:
    """``POST /v1/jobs`` body → one validated :class:`SimJob`.

    Body shape (only ``app`` is required)::

        {"machine": "numa16", "scheme": "MultiT&MV Lazy AMM",
         "app": "Apsi", "seed": 0, "scale": 1.0,
         "collect_metrics": false, ...}
    """
    data = _require_object(data, "job request")
    return SimJob(
        machine=resolve_machine(data.get("machine", "numa16")),
        scheme=resolve_scheme(data.get("scheme")),
        workload=workload_spec_from_request(data),
        **_options_from_request(data),
    )


def _name_list(data: dict[str, Any], field: str,
               default: Sequence[Any]) -> list[Any]:
    value = data.get(field)
    if value is None:
        return list(default)
    if not isinstance(value, list) or not value:
        raise _bad("bad_field", f"{field!r} must be a non-empty list")
    return value


def jobs_from_sweep_request(data: Any) -> list[SimJob]:
    """``POST /v1/sweeps`` body → the validated cartesian job grid.

    Body shape (all fields optional)::

        {"machines": ["numa16"], "schemes": ["MultiT&MV Lazy AMM", null],
         "apps": ["Euler", "Apsi"], "seed": 0, "scale": 1.0,
         "collect_metrics": false, ...}

    ``machine`` (singular) is accepted as shorthand for a one-element
    ``machines`` list; a ``null`` scheme requests the sequential
    baseline. Defaults: machine ``numa16``, the 8 evaluated schemes,
    every registered application. Grid order matches
    :meth:`SimJob.grid` — machines outermost, apps innermost.
    """
    from repro.core.taxonomy import EVALUATED_SCHEMES
    from repro.workloads.apps import APPLICATIONS

    data = _require_object(data, "sweep request")
    if "machines" in data and "machine" in data:
        raise _bad("bad_field", "give either 'machine' or 'machines', "
                                "not both")
    machine_names = _name_list(data, "machines",
                               [data.get("machine", "numa16")])
    machines = [resolve_machine(name) for name in machine_names]
    schemes = [resolve_scheme(name)
               for name in _name_list(data, "schemes",
                                      [s.name for s in EVALUATED_SCHEMES])]
    app_names = _name_list(data, "apps", list(APPLICATIONS))
    seed = _parse_int(data, "seed", 0, low=0, high=2**31 - 1)
    scale = _parse_number(data, "scale", 1.0, low=0.01, high=MAX_SCALE)
    workloads = [
        workload_spec_from_request(
            {"app": app, "seed": seed, "scale": scale})
        for app in app_names
    ]
    options = _options_from_request(data)
    cells = len(machines) * len(schemes) * len(workloads)
    if cells > MAX_SWEEP_CELLS:
        raise ServiceError(
            400, "grid_too_large",
            f"sweep grid has {cells} cells, limit {MAX_SWEEP_CELLS}; "
            f"split the request")
    return SimJob.grid(machines, schemes, workloads, **options)
