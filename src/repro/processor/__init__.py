"""Simplified processor model with cycle-category accounting."""

from repro.processor.processor import (
    CycleAccount,
    CycleCategory,
    Processor,
    STALL_CATEGORIES,
)

__all__ = ["CycleAccount", "CycleCategory", "Processor", "STALL_CATEGORIES"]
