"""Per-processor execution context.

The processor model is deliberately simple — a task-level state machine
executing compute segments at a fixed effective IPC — because the paper's
effects all live in the memory/ordering system (see DESIGN.md). What the
processor *does* model carefully is where its cycles go: the evaluation's
stacked bars (Figures 9-11) need busy time separated from memory stalls,
task/version-support stalls, commit waits, recovery, and end-of-loop idle.
"""

from __future__ import annotations

import enum

from repro.core.config import MachineConfig
from repro.errors import SimulationError
from repro.memsys.cache import VersionCache
from repro.memsys.overflow import OverflowArea
from repro.memsys.undolog import UndoLog
from repro.tls.task import TaskRun


class CycleCategory(enum.Enum):
    """Where a processor's cycles go (for the Figure 9/10/11 bar split)."""

    BUSY = "busy"
    MEMORY = "memory"
    #: Waiting to create a second local speculative version (MultiT&SV).
    SV_STALL = "sv-stall"
    #: SingleT wait for the commit token after finishing a speculative task,
    #: including the eager merge performed while holding it.
    COMMIT_STALL = "commit-stall"
    #: Waiting out a squash recovery (AMM invalidation or FMM log replay).
    RECOVERY = "recovery"
    #: No runnable task (start-up ramp, end-of-loop, final merge waits).
    IDLE = "idle"

    def __str__(self) -> str:
        return self.value


#: Categories that count as "Stall" in the paper's two-way bar split.
STALL_CATEGORIES = (
    CycleCategory.MEMORY,
    CycleCategory.SV_STALL,
    CycleCategory.COMMIT_STALL,
    CycleCategory.RECOVERY,
    CycleCategory.IDLE,
)

#: Dense per-member index: :meth:`CycleAccount.add` runs twice per engine
#: event, and indexing a list by a plain int attribute is markedly cheaper
#: than hashing the enum member into a dict on every charge.
for _index, _category in enumerate(CycleCategory):
    _category.index = _index
_N_CATEGORIES = len(CycleCategory)
_STALL_INDICES = tuple(c.index for c in STALL_CATEGORIES)
_BUSY_INDEX = CycleCategory.BUSY.index
_MEMORY_INDEX = CycleCategory.MEMORY.index


class CycleAccount:
    """Cycle accounting for one processor."""

    __slots__ = ("_cycles",)

    def __init__(self) -> None:
        self._cycles = [0.0] * _N_CATEGORIES

    @property
    def by_category(self) -> dict[CycleCategory, float]:
        """Cycles per category, keyed by the enum (built on demand)."""
        cycles = self._cycles
        return {c: cycles[c.index] for c in CycleCategory}

    def add(self, category: CycleCategory, cycles: float) -> None:
        """Accrue ``cycles`` to ``category``."""
        if cycles < 0:
            raise SimulationError(
                f"negative cycle charge {cycles} for {category}"
            )
        self._cycles[category.index] += cycles

    def add_op(self, busy: float, mem: float) -> None:
        """Accrue one completed operation's busy and memory cycles.

        Fast path for the engine's per-event completion handler: both
        charges are scheduled durations, non-negative by construction, so
        the sanity check of :meth:`add` is skipped.
        """
        cycles = self._cycles
        cycles[_BUSY_INDEX] += busy
        cycles[_MEMORY_INDEX] += mem

    def total(self) -> float:
        """Sum across all categories."""
        return sum(self._cycles)

    def busy(self) -> float:
        """Cycles spent executing instructions."""
        return self._cycles[CycleCategory.BUSY.index]

    def stall(self) -> float:
        """Cycles spent in any stall category."""
        cycles = self._cycles
        return sum(cycles[i] for i in _STALL_INDICES)


class Processor:
    """One processor: caches, overflow area, undo log, and the task it runs."""

    def __init__(self, proc_id: int, machine: MachineConfig) -> None:
        self.proc_id = proc_id
        self.l1 = VersionCache(machine.l1, name=f"P{proc_id}.L1")
        self.l2 = VersionCache(machine.l2, name=f"P{proc_id}.L2")
        self.overflow = OverflowArea(proc_id)
        self.undolog = UndoLog(proc_id)
        self.current: TaskRun | None = None
        #: Tasks claimed by this processor whose state is still buffered
        #: here (running, done-speculative, or committed-but-unmerged).
        self.resident: dict[int, TaskRun] = {}
        #: Bumped on abort; in-flight events with an older epoch are stale.
        self.epoch = 0
        #: Set while parked: the category to charge when resumed.
        self.parked_since: float | None = None
        self.parked_category: CycleCategory | None = None
        #: For SV stalls: the local task whose commit/squash unblocks us.
        self.sv_blocker: int | None = None
        self.account = CycleAccount()

    # ------------------------------------------------------------------
    # Parking / accounting
    # ------------------------------------------------------------------
    def park(self, now: float, category: CycleCategory,
             sv_blocker: int | None = None) -> None:
        """Block the processor until ``unpark`` (SingleT / MultiT&SV stalls).
        """
        if self.parked_since is not None:
            raise SimulationError(
                f"P{self.proc_id} parked twice (already {self.parked_category})"
            )
        self.parked_since = now
        self.parked_category = category
        self.sv_blocker = sv_blocker

    def unpark(self, now: float) -> None:
        """Release a parked processor and account the stalled span."""
        if self.parked_since is None:
            raise SimulationError(f"P{self.proc_id} unparked while not parked")
        if self.parked_category is None:
            raise SimulationError(f"P{self.proc_id} parked without a category")
        self.account.add(self.parked_category, now - self.parked_since)
        self.parked_since = None
        self.parked_category = None
        self.sv_blocker = None

    @property
    def parked(self) -> bool:
        return self.parked_since is not None

    # ------------------------------------------------------------------
    # Residency
    # ------------------------------------------------------------------
    def speculative_resident(self) -> list[TaskRun]:
        """Resident tasks that are still speculative (uncommitted)."""
        from repro.tls.task import TaskState

        return [r for r in self.resident.values()
                if r.state is not TaskState.COMMITTED]

    def drop_resident(self, task_id: int) -> None:
        """Forget a resident task (after commit or squash)."""
        self.resident.pop(task_id, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = self.current.task_id if self.current else None
        return (f"Processor({self.proc_id}, running={running}, "
                f"resident={sorted(self.resident)})")
