"""Runtime invariant checker + differential conformance oracle.

Two things are under test: (1) the checker passes on every evaluated
taxonomy point and observes every event without perturbing the run, and
(2) both layers actually *detect* — a seeded corruption of engine state
raises :class:`InvariantViolation`, and a divergent result surfaces as a
:class:`Divergence` in the conformance report rather than passing
silently.
"""

import pytest

from tests.conftest import (
    WORD_A,
    compute,
    make_task,
    make_workload,
    read,
    write,
)
from repro.analysis.serialization import canonical_result_bytes
from repro.core.config import NUMA_16, scaled_machine
from repro.core.engine import Simulation
from repro.core.hooks import CompositeHook, SimulationHook
from repro.core.taxonomy import (
    EVALUATED_SCHEMES,
    MULTI_T_MV_FMM,
    MULTI_T_MV_LAZY,
    SINGLE_T_EAGER,
)
from repro.memsys.undolog import LogEntry
from repro.runner import SimJob, SweepRunner, WorkloadSpec
from repro.tls.task import TaskState
from repro.validate import (
    InvariantChecker,
    InvariantViolation,
    potential_raw_victims,
    render_conformance_report,
    run_conformance,
)

SPEC = WorkloadSpec("Euler", seed=0, scale=0.1)


def _machine(n_procs=4):
    return scaled_machine(NUMA_16, n_procs)


# ----------------------------------------------------------------------
# Checker on real runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", EVALUATED_SCHEMES,
                         ids=lambda s: s.name)
def test_checker_holds_on_every_evaluated_scheme(scheme):
    checker = InvariantChecker(deep_every=16)
    result = Simulation(_machine(), scheme, SPEC.generate(),
                        hook=checker).run()
    assert checker.events_checked == result.events_processed
    assert checker.deep_sweeps >= result.events_processed // 16


def test_checked_run_is_bit_identical_to_unchecked():
    plain = SimJob(machine=NUMA_16, workload=SPEC, scheme=MULTI_T_MV_LAZY)
    checked = SimJob(machine=NUMA_16, workload=SPEC, scheme=MULTI_T_MV_LAZY,
                     check_invariants=True)
    # The checker is a pure observer of the run...
    runner = SweepRunner(jobs=1, cache=None)
    assert (canonical_result_bytes(runner.run(plain))
            == canonical_result_bytes(runner.run(checked)))
    # ...but a checked run certifies more, so it is cached separately.
    assert plain.cache_key() != checked.cache_key()


def test_hooks_observe_every_event():
    class Recorder(SimulationHook):
        def __init__(self):
            self.starts = self.events = self.finishes = 0

        def on_start(self, sim):
            self.starts += 1

        def after_event(self, sim, now):
            self.events += 1

        def on_finish(self, sim, result):
            self.finishes += 1

    first, second = Recorder(), Recorder()
    result = Simulation(_machine(), MULTI_T_MV_LAZY, SPEC.generate(),
                        hook=CompositeHook([first, second])).run()
    for recorder in (first, second):
        assert recorder.starts == recorder.finishes == 1
        assert recorder.events == result.events_processed


def test_deep_every_must_be_positive():
    with pytest.raises(ValueError):
        InvariantChecker(deep_every=0)


# ----------------------------------------------------------------------
# Detection: seeded corruptions must raise
# ----------------------------------------------------------------------
def _fresh_sim(scheme=MULTI_T_MV_LAZY):
    workload = make_workload(
        "hand",
        make_task(0, write(WORD_A), compute(5)),
        make_task(1, read(WORD_A), compute(5)),
        make_task(2, compute(5), write(WORD_A)),
    )
    return Simulation(_machine(2), scheme, workload)


def test_deep_check_passes_on_untampered_state():
    sim = _fresh_sim()
    InvariantChecker().deep_check(sim)  # must not raise


def test_detects_speculative_version_in_memory():
    sim = _fresh_sim()
    sim.memory.restore_words({WORD_A: 1})  # task 1 never committed
    with pytest.raises(InvariantViolation, match="memory holds version"):
        InvariantChecker().deep_check(sim)


def test_detects_directory_version_of_dead_task():
    sim = _fresh_sim()
    sim.directory.record_write(WORD_A, 2)  # task 2 is PENDING
    with pytest.raises(InvariantViolation, match="squashed task"):
        InvariantChecker().deep_check(sim)


def test_detects_unsorted_version_list():
    sim = _fresh_sim()
    sim.runs[1].state = TaskState.RUNNING
    sim.runs[2].state = TaskState.RUNNING
    sim.directory.record_write(WORD_A, 1)
    sim.directory.record_write(WORD_A, 2)
    for _word, producers, _readers in sim.directory.iter_states():
        producers.reverse()
    with pytest.raises(InvariantViolation, match="not strictly sorted"):
        InvariantChecker().deep_check(sim)


def test_detects_out_of_order_commit():
    sim = _fresh_sim()
    sim.runs[2].state = TaskState.COMMITTED  # but next_to_commit is 0
    with pytest.raises(InvariantViolation, match="strictly sequential"):
        InvariantChecker().deep_check(sim)


def test_detects_undo_log_use_under_amm():
    sim = _fresh_sim(scheme=SINGLE_T_EAGER)
    sim.procs[0].undolog.append(LogEntry(
        line_addr=0, producer_task=0, overwriting_task=1,
        words=((WORD_A, 0),),
    ))
    with pytest.raises(InvariantViolation, match="undo-log"):
        InvariantChecker().deep_check(sim)


def test_detects_overflow_use_under_fmm():
    sim = _fresh_sim(scheme=MULTI_T_MV_FMM)
    sim.runs[1].state = TaskState.RUNNING
    sim.procs[0].overflow.spill(line_addr=0x40, task_id=1, committed=False)
    with pytest.raises(InvariantViolation, match="overflow"):
        InvariantChecker().deep_check(sim)


# ----------------------------------------------------------------------
# Oracle: timing-independent facts
# ----------------------------------------------------------------------
def test_potential_raw_victims_cross_task_read():
    workload = make_workload(
        "raw",
        make_task(0, write(WORD_A)),
        make_task(1, read(WORD_A)),
    )
    assert potential_raw_victims(workload) == {1}


def test_potential_raw_victims_own_write_first_is_safe():
    workload = make_workload(
        "private",
        make_task(0, write(WORD_A)),
        make_task(1, write(WORD_A), read(WORD_A)),
    )
    assert potential_raw_victims(workload) == set()


def test_potential_raw_victims_read_before_any_writer():
    # Task 0 reads architectural state; task 1 writes later. Reading a
    # word only *later* tasks write can never violate.
    workload = make_workload(
        "arch",
        make_task(0, read(WORD_A)),
        make_task(1, write(WORD_A)),
    )
    assert potential_raw_victims(workload) == set()


def test_conformance_passes_on_small_grid():
    report = run_conformance(
        _machine(), [SPEC],
        schemes=(SINGLE_T_EAGER, MULTI_T_MV_LAZY, MULTI_T_MV_FMM),
        runner=SweepRunner(jobs=1, cache=None),
    )
    assert report.passed
    assert len(report.outcomes) == 3
    rendered = render_conformance_report(report)
    assert "PASS" in rendered and "FAIL" not in rendered


def test_conformance_reports_memory_divergence(monkeypatch):
    from repro.workloads.base import Workload

    monkeypatch.setattr(Workload, "sequential_image",
                        lambda self: {0xDEAD: 999})
    report = run_conformance(
        _machine(), [SPEC], schemes=(MULTI_T_MV_LAZY,),
        runner=SweepRunner(jobs=1, cache=None), check_invariants=False,
    )
    assert not report.passed
    assert [d.check for d in report.divergences] == ["memory-image"]
    assert "FAIL" in render_conformance_report(report)


def test_conformance_reports_invariant_violation(monkeypatch):
    def explode(self, sim, now):
        raise InvariantViolation("synthetic failure for the oracle")

    monkeypatch.setattr(InvariantChecker, "after_event", explode)
    report = run_conformance(
        _machine(), [SPEC], schemes=(MULTI_T_MV_LAZY,),
        runner=SweepRunner(jobs=1, cache=None),
    )
    assert not report.passed
    assert report.divergences[0].check == "invariants"
    assert "synthetic failure" in report.divergences[0].detail
