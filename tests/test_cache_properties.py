"""Model-based property tests for the version cache.

A reference model (per-set ordered dicts) mirrors every operation; the
cache must agree with it on residency, LRU victim choice, and bulk
operations for any operation sequence hypothesis generates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CacheGeometry
from repro.memsys.cache import CacheLine, VersionCache

N_SETS = 4
ASSOC = 2
GEOMETRY = CacheGeometry(size_bytes=N_SETS * ASSOC * 64, assoc=ASSOC)

#: Line addresses covering all sets with same-set aliases.
LINES = [0, 1, 2, 3, 4, 5, 8, 12]
TASKS = [0, 1, 2, 3]


class ReferenceModel:
    """Per-set LRU model: list of (line, task, dirty, committed, touch)."""

    def __init__(self) -> None:
        self.sets = {s: [] for s in range(N_SETS)}
        self.clock = 0.0

    def _set(self, line):
        return self.sets[line % N_SETS]

    def find(self, line, task):
        for entry in self._set(line):
            if entry["line"] == line and entry["task"] == task:
                return entry
        return None

    def insert(self, line, task, dirty):
        self.clock += 1
        existing = self.find(line, task)
        if existing is not None:
            existing["dirty"] = existing["dirty"] or dirty
            existing["touch"] = self.clock
            return None
        cache_set = self._set(line)
        victim = None
        if len(cache_set) >= ASSOC:
            victim = min(cache_set, key=lambda e: e["touch"])
            cache_set.remove(victim)
        cache_set.append({"line": line, "task": task, "dirty": dirty,
                          "committed": False, "touch": self.clock})
        return victim

    def touch(self, line, task):
        self.clock += 1
        entry = self.find(line, task)
        if entry is not None:
            entry["touch"] = self.clock
        return entry

    def invalidate_task(self, task):
        dropped = 0
        for cache_set in self.sets.values():
            keep = [e for e in cache_set if e["task"] != task]
            dropped += len(cache_set) - len(keep)
            cache_set[:] = keep
        return dropped

    def mark_committed(self, task):
        marked = 0
        for cache_set in self.sets.values():
            for entry in cache_set:
                if entry["task"] == task and not entry["committed"]:
                    entry["committed"] = True
                    marked += 1
        return marked

    def resident(self):
        return {
            (e["line"], e["task"], e["dirty"], e["committed"])
            for cache_set in self.sets.values() for e in cache_set
        }


operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.sampled_from(LINES),
                  st.sampled_from(TASKS), st.booleans()),
        st.tuples(st.just("touch"), st.sampled_from(LINES),
                  st.sampled_from(TASKS), st.booleans()),
        st.tuples(st.just("invalidate"), st.sampled_from(TASKS),
                  st.just(0), st.just(False)),
        st.tuples(st.just("commit"), st.sampled_from(TASKS),
                  st.just(0), st.just(False)),
    ),
    max_size=60,
)


@given(ops=operations)
@settings(max_examples=120, deadline=None)
def test_cache_agrees_with_reference_model(ops):
    cache = VersionCache(GEOMETRY, name="model")
    model = ReferenceModel()
    now = 0.0
    for op in ops:
        now += 1.0
        if op[0] == "insert":
            _, line, task, dirty = op
            expected_victim = model.insert(line, task, dirty)
            victim = cache.insert(CacheLine(line, task, dirty=dirty), now)
            if expected_victim is None:
                assert victim is None
            else:
                assert victim is not None
                assert victim.line_addr == expected_victim["line"]
                assert victim.task_id == expected_victim["task"]
        elif op[0] == "touch":
            _, line, task, _ = op
            expected = model.touch(line, task)
            entry = cache.find(line, task)
            assert (entry is None) == (expected is None)
            if entry is not None:
                cache.touch(entry, now)
        elif op[0] == "invalidate":
            _, task, _, _ = op
            assert cache.invalidate_task(task) == model.invalidate_task(task)
        elif op[0] == "commit":
            _, task, _, _ = op
            assert len(cache.mark_committed(task)) == model.mark_committed(
                task)
    actual = {
        (e.line_addr, e.task_id, e.dirty, e.committed) for e in cache
    }
    assert actual == model.resident()
    assert len(cache) == len(model.resident())


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_cache_capacity_never_exceeded(ops):
    cache = VersionCache(GEOMETRY, name="cap")
    now = 0.0
    for op in ops:
        now += 1.0
        if op[0] == "insert":
            _, line, task, dirty = op
            cache.insert(CacheLine(line, task, dirty=dirty), now)
    assert len(cache) <= GEOMETRY.n_lines
    for set_index in range(N_SETS):
        resident = [e for e in cache if e.line_addr % N_SETS == set_index]
        assert len(resident) <= ASSOC
