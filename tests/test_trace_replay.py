"""Differential capture -> replay bit-identity: the trace-frontend oracle.

The headline contract of the trace subsystem: capturing a synthetic
app's workload to a ``.tlstrace`` file and replaying that file through
the engine reproduces ``canonical_result_bytes`` **byte for byte** under
every evaluated buffering scheme — while the synthetic job and the
replay job deliberately occupy *different* cache entries (a replayed
trace must never poison the synthetic grid's cache, or vice versa).

Also held here: the capture hook's zero-perturbation contract (a run
that captures is bit-identical to one that does not) and the three
adversarial generators running end-to-end with the squash behaviour
they were designed to provoke.
"""

from __future__ import annotations

import pytest

from repro.analysis.serialization import canonical_result_bytes
from repro.core.config import NUMA_16
from repro.core.engine import Simulation
from repro.core.taxonomy import EVALUATED_SCHEMES, MULTI_T_MV_LAZY
from repro.obs.capture import TraceCaptureHook
from repro.runner import SimJob, SweepRunner, WorkloadSpec
from repro.workloads import (
    APPLICATION_ORDER,
    TraceWorkload,
    generate_trace_file,
    hot_line_reduction,
    pointer_chase,
    squash_storm,
    verify_capture_replay,
)

SCALE = 0.1  # keeps the full 7-app x 8-scheme grid under ~10 s


@pytest.fixture(scope="module")
def runner():
    return SweepRunner(jobs=1, cache=None)


# ----------------------------------------------------------------------
# The full differential grid: every app x every scheme
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def grid_report(tmp_path_factory):
    trace_dir = tmp_path_factory.mktemp("traces")
    return verify_capture_replay(
        NUMA_16, APPLICATION_ORDER, EVALUATED_SCHEMES, trace_dir,
        scale=SCALE, seed=0,
    )


def test_grid_covers_every_app_and_scheme(grid_report):
    cells = grid_report["cells"]
    assert len(cells) == len(APPLICATION_ORDER) * len(EVALUATED_SCHEMES)
    assert {c.app for c in cells} == set(APPLICATION_ORDER)
    assert ({c.scheme for c in cells}
            == {s.name for s in EVALUATED_SCHEMES})


def test_every_replay_is_byte_identical(grid_report):
    bad = [c for c in grid_report["cells"] if not c.ok]
    assert not bad, f"replay diverged in {len(bad)} cells: " + ", ".join(
        f"{c.app}/{c.scheme}" for c in bad)
    assert grid_report["passed"]


def test_synthetic_and_trace_jobs_never_share_cache_entries(grid_report):
    for cell in grid_report["cells"]:
        assert cell.synthetic_key != cell.trace_key, (
            f"{cell.app}/{cell.scheme}: a trace replay and its synthetic "
            f"twin collided on one cache key")


# ----------------------------------------------------------------------
# Capture-hook purity
# ----------------------------------------------------------------------
def test_capture_hook_is_a_pure_observer(tmp_path):
    workload = WorkloadSpec("Euler", scale=SCALE).generate()
    plain = Simulation(NUMA_16, MULTI_T_MV_LAZY, workload).run()
    hook = TraceCaptureHook(tmp_path / "euler.tlstrace")
    captured = Simulation(NUMA_16, MULTI_T_MV_LAZY, workload,
                          hook=hook).run()
    assert canonical_result_bytes(captured) == canonical_result_bytes(plain)
    assert hook.info is not None
    assert hook.counters["trace.capture.tasks"] == workload.n_tasks
    assert hook.counters["trace.capture.bytes"] > 0


def test_capture_stamps_provenance(tmp_path):
    path = tmp_path / "euler.tlstrace"
    hook = TraceCaptureHook(path, meta={"scale": str(SCALE)})
    Simulation(NUMA_16, MULTI_T_MV_LAZY,
               WorkloadSpec("Euler", scale=SCALE).generate(),
               hook=hook).run()
    meta = dict(hook.info.header.meta)
    assert meta["scale"] == str(SCALE)
    assert meta["captured-from"] == f"{NUMA_16.name}/{MULTI_T_MV_LAZY.name}"


# ----------------------------------------------------------------------
# Adversarial generators, end to end
# ----------------------------------------------------------------------
def _replay(runner, workload_file):
    trace = TraceWorkload.open(workload_file)
    return runner.run(SimJob(machine=NUMA_16, workload=trace,
                             scheme=MULTI_T_MV_LAZY))


def test_pointer_chase_end_to_end(runner, tmp_path):
    path = tmp_path / "chase.tlstrace"
    info = generate_trace_file("pointer-chase", path, n_tasks=32)
    assert info.header.n_tasks == 32
    result = _replay(runner, path)
    # Committed-producer links: irregular loads, but no misspeculation.
    assert result.violation_events == 0
    assert result.total_cycles > 0


def test_squash_storm_provokes_squashes(runner, tmp_path):
    path = tmp_path / "storm.tlstrace"
    generate_trace_file("squash-storm", path, n_tasks=48)
    result = _replay(runner, path)
    assert result.violation_events > 0, (
        "a squash storm that squashes nothing is not a storm")


def test_hot_line_reduction_serializes(runner, tmp_path):
    path = tmp_path / "hot.tlstrace"
    generate_trace_file("hot-line", path, n_tasks=48)
    result = _replay(runner, path)
    assert result.violation_events > 0


def test_generators_are_deterministic_in_their_seed():
    from repro.workloads import trace_digest

    assert (trace_digest(squash_storm(24, seed=3))
            == trace_digest(squash_storm(24, seed=3)))
    assert (trace_digest(squash_storm(24, seed=3))
            != trace_digest(squash_storm(24, seed=4)))
    assert (trace_digest(pointer_chase(8, seed=1))
            != trace_digest(pointer_chase(8, seed=2)))
    assert (trace_digest(hot_line_reduction(8, seed=1))
            != trace_digest(hot_line_reduction(8, seed=2)))


def test_generator_traces_replay_bit_identically(runner, tmp_path):
    # The differential contract holds for generated traces too: replaying
    # the same file twice (fresh TraceWorkload each time) is bit-stable.
    path = tmp_path / "storm.tlstrace"
    generate_trace_file("squash-storm", path, n_tasks=32)
    first = _replay(runner, path)
    second = _replay(runner, path)
    assert (canonical_result_bytes(first)
            == canonical_result_bytes(second))
