"""Unit tests for main memory (MTID), overflow area, undo log, addressing."""

import pytest

from repro.errors import ProtocolError
from repro.memsys.address import line_of, word_in_line, words_of_line
from repro.memsys.cache import ARCH_TASK_ID
from repro.memsys.mainmem import MainMemory
from repro.memsys.overflow import OverflowArea
from repro.memsys.undolog import LogEntry, UndoLog


class TestAddress:
    def test_line_of(self):
        assert line_of(0) == 0
        assert line_of(15) == 0
        assert line_of(16) == 1

    def test_word_in_line(self):
        assert word_in_line(17) == 1

    def test_words_of_line_round_trip(self):
        words = list(words_of_line(3))
        assert len(words) == 16
        assert all(line_of(w) == 3 for w in words)
        assert [word_in_line(w) for w in words] == list(range(16))


class TestMainMemoryMTID:
    def test_in_order_writebacks_accepted(self):
        mem = MainMemory(mtid_enabled=True)
        assert mem.writeback_words({100: 1}) == 1
        assert mem.writeback_words({100: 3}) == 1
        assert mem.producer_of(100) == 3

    def test_stale_writeback_rejected(self):
        """MTID discards a write-back older than the resident version."""
        mem = MainMemory(mtid_enabled=True)
        mem.writeback_words({100: 5})
        assert mem.writeback_words({100: 2}) == 0
        assert mem.producer_of(100) == 5
        assert mem.stats.rejected_words == 1
        assert mem.stats.rejected_lines == 1

    def test_equal_producer_rejected(self):
        mem = MainMemory()
        mem.writeback_words({100: 5})
        assert mem.writeback_words({100: 5}) == 0

    def test_partial_line_merge(self):
        mem = MainMemory()
        mem.writeback_words({100: 5, 101: 5})
        updated = mem.writeback_words({100: 7, 101: 3})
        assert updated == 1
        assert mem.producer_of(100) == 7
        assert mem.producer_of(101) == 5

    def test_restore_moves_backwards(self):
        mem = MainMemory(mtid_enabled=True)
        mem.writeback_words({100: 9})
        mem.restore_words({100: 4})
        assert mem.producer_of(100) == 4

    def test_restore_to_arch_clears(self):
        mem = MainMemory()
        mem.writeback_words({100: 9})
        mem.restore_words({100: ARCH_TASK_ID})
        assert mem.producer_of(100) == ARCH_TASK_ID
        assert 100 not in mem.image()

    def test_unwritten_word_is_arch(self):
        assert MainMemory().producer_of(12345) == ARCH_TASK_ID


class TestOverflowArea:
    def test_spill_fetch_cycle(self):
        overflow = OverflowArea(proc_id=0)
        overflow.spill(0x100, 3, committed=False)
        assert overflow.holds(0x100, 3)
        assert overflow.fetch(0x100, 3)
        assert not overflow.holds(0x100, 3)
        assert not overflow.fetch(0x100, 3)
        assert overflow.stats.spills == 1
        assert overflow.stats.fetches == 1

    def test_drain_task(self):
        overflow = OverflowArea(0)
        overflow.spill(0x100, 3, committed=False)
        overflow.spill(0x200, 3, committed=False)
        overflow.spill(0x100, 4, committed=False)
        assert sorted(overflow.drain_task(3)) == [0x100, 0x200]
        assert len(overflow) == 1

    def test_mark_committed_and_committed_lines(self):
        overflow = OverflowArea(0)
        overflow.spill(0x100, 3, committed=False)
        overflow.spill(0x200, 4, committed=False)
        assert overflow.mark_committed(3) == 1
        assert overflow.committed_lines() == [(0x100, 3)]

    def test_lines_of_task(self):
        overflow = OverflowArea(0)
        overflow.spill(0x100, 3, committed=False)
        overflow.spill(0x300, 3, committed=True)
        assert sorted(overflow.lines_of_task(3)) == [0x100, 0x300]

    def test_peak_tracked(self):
        overflow = OverflowArea(0)
        for i in range(5):
            overflow.spill(i, 1, committed=False)
        overflow.fetch(0, 1)
        assert overflow.stats.peak_lines == 5


class TestUndoLog:
    def entry(self, line=0x100, producer=1, overwriter=2):
        return LogEntry(line_addr=line, producer_task=producer,
                        overwriting_task=overwriter,
                        words=((line * 16, producer),))

    def test_append_and_needs(self):
        log = UndoLog(0)
        assert log.needs_entry(2, 0x100)
        log.append(self.entry())
        assert not log.needs_entry(2, 0x100)
        assert log.needs_entry(3, 0x100)
        assert len(log) == 1

    def test_duplicate_rejected(self):
        log = UndoLog(0)
        log.append(self.entry())
        with pytest.raises(ProtocolError, match="duplicate"):
            log.append(self.entry())

    def test_ordering_enforced(self):
        """A saved version must be older than its overwriter."""
        log = UndoLog(0)
        with pytest.raises(ProtocolError):
            log.append(self.entry(producer=5, overwriter=5))

    def test_free_task(self):
        log = UndoLog(0)
        log.append(self.entry(line=0x100, overwriter=2))
        log.append(self.entry(line=0x200, overwriter=2))
        log.append(self.entry(line=0x100, overwriter=3, producer=2))
        assert log.free_task(2) == 2
        assert len(log) == 1
        # Freed keys can be logged again (next speculative section).
        assert log.needs_entry(2, 0x100)

    def test_pop_entries_newest_first(self):
        log = UndoLog(0)
        first = self.entry(line=0x100, overwriter=2)
        second = self.entry(line=0x200, overwriter=2)
        log.append(first)
        log.append(second)
        popped = log.pop_entries_of(2)
        assert popped == [second, first]
        assert len(log) == 0
        assert log.pop_entries_of(2) == []

    def test_arch_producer_allowed(self):
        log = UndoLog(0)
        log.append(LogEntry(0x100, -1, 0, words=((0, -1),)))
        assert len(log.entries_of(0)) == 1

    def test_words_dict(self):
        entry = self.entry()
        assert entry.words_dict() == {0x100 * 16: 1}
