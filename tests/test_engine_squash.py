"""Violation detection, squash cascades, and recovery under AMM and FMM."""

import pytest

from repro.core.engine import Simulation, simulate
from repro.core.taxonomy import (
    EVALUATED_SCHEMES,
    MULTI_T_MV_EAGER,
    MULTI_T_MV_FMM,
    MULTI_T_MV_LAZY,
    SINGLE_T_EAGER,
)
from repro.processor.processor import CycleCategory
from repro.workloads.base import DEP_BASE
from tests.conftest import compute, make_task, make_workload, read, write

W = DEP_BASE


def violation_workload(extra_tasks: int = 0):
    """T0 writes W late; T1 reads W early -> out-of-order RAW at runtime."""
    tasks = [
        make_task(0, compute(40_000), write(W), compute(100)),
        make_task(1, compute(200), read(W), compute(30_000)),
    ]
    for tid in range(2, 2 + extra_tasks):
        tasks.append(make_task(tid, compute(15_000)))
    return make_workload("violation", *tasks)


class TestViolationDetection:
    @pytest.mark.parametrize("scheme", EVALUATED_SCHEMES,
                             ids=lambda s: s.name)
    def test_squash_and_reexecution_restore_semantics(self, tiny_machine,
                                                      scheme):
        workload = violation_workload()
        result = simulate(tiny_machine, scheme, workload)
        assert result.violation_events >= 1
        assert result.squashed_executions >= 1
        # The re-executed read must observe T0's version.
        assert result.observed_reads[(1, W)] == 0
        assert result.memory_image == workload.sequential_image()

    def test_no_violation_when_spaced_out(self, tiny_machine):
        """If the reader starts after the writer finished, no squash."""
        workload = make_workload(
            "spaced",
            make_task(0, write(W), compute(100)),
            make_task(1, compute(60_000), read(W)),
        )
        result = simulate(tiny_machine, MULTI_T_MV_EAGER, workload)
        assert result.violation_events == 0

    def test_wasted_busy_counted(self, tiny_machine):
        result = simulate(tiny_machine, MULTI_T_MV_EAGER,
                          violation_workload())
        assert result.wasted_busy_cycles > 0

    def test_squash_task_timing_counts_attempts(self, tiny_machine):
        result = simulate(tiny_machine, MULTI_T_MV_EAGER,
                          violation_workload())
        squashed = [t for t in result.task_timings if t.squashes > 0]
        assert squashed and squashed[0].task_id == 1


class TestCascade:
    def test_successors_squashed(self, quad_machine):
        """Started tasks after the violated reader are squashed too."""
        workload = violation_workload(extra_tasks=2)
        result = simulate(quad_machine, MULTI_T_MV_EAGER, workload)
        assert result.squashed_executions >= 2
        assert result.memory_image == workload.sequential_image()

    def test_unstarted_tasks_unaffected(self, tiny_machine):
        """Tasks not yet started are not counted as squashed executions."""
        workload = violation_workload(extra_tasks=6)
        result = simulate(tiny_machine, MULTI_T_MV_EAGER, workload)
        # Two processors: at most 2 extra tasks could have started when the
        # violation (early in the run) fires.
        assert result.squashed_executions <= 3


class TestRecoveryCosts:
    def test_fmm_recovery_slower_than_amm(self, tiny_machine):
        """Section 3.3.4: AMM recovers by invalidation, FMM replays logs."""
        # Give the squashed reader a written footprint so FMM has log
        # entries to restore.
        def workload():
            return make_workload(
                "recover",
                make_task(0, compute(40_000), write(W), compute(100)),
                make_task(1, compute(200), read(W),
                          *[write(W + 64 + j * 16) for j in range(20)],
                          compute(30_000)),
            )
        amm = simulate(tiny_machine, MULTI_T_MV_LAZY, workload())
        fmm = simulate(tiny_machine, MULTI_T_MV_FMM, workload())
        amm_rec = amm.cycles_by_category[CycleCategory.RECOVERY]
        fmm_rec = fmm.cycles_by_category[CycleCategory.RECOVERY]
        assert fmm_rec > amm_rec

    def test_fmm_restores_memory_image(self, tiny_machine):
        """A squashed task's versions displaced to memory are rolled back."""
        workload = make_workload(
            "rollback",
            make_task(0, write(W + 100), compute(40_000), write(W),
                      compute(100)),
            make_task(1, compute(200), read(W), write(W + 100),
                      compute(30_000)),
        )
        result = simulate(tiny_machine, MULTI_T_MV_FMM, workload)
        assert result.memory_image == workload.sequential_image()
        assert result.memory_image[W + 100] == 1


class TestSquashInteractions:
    def test_singlet_parked_task_squashed(self, quad_machine):
        """A SingleT processor waiting to commit a squashed task recovers."""
        workload = make_workload(
            "parked",
            make_task(0, compute(50_000), write(W), compute(100)),
            make_task(1, compute(300), read(W), compute(500)),
            make_task(2, compute(400)),
            make_task(3, compute(400)),
        )
        result = simulate(quad_machine, SINGLE_T_EAGER, workload)
        assert result.violation_events >= 1
        assert result.memory_image == workload.sequential_image()

    def test_repeated_violations_converge(self, tiny_machine):
        """Chained dependences squash repeatedly but always converge."""
        workload = make_workload(
            "chain",
            make_task(0, compute(30_000), write(W)),
            make_task(1, read(W), compute(25_000), write(W + 1)),
            make_task(2, read(W + 1), compute(20_000), write(W + 2)),
            make_task(3, read(W + 2), compute(100)),
        )
        result = simulate(tiny_machine, MULTI_T_MV_EAGER, workload)
        assert result.violation_events >= 1
        assert result.observed_reads[(1, W)] == 0
        assert result.observed_reads[(2, W + 1)] == 1
        assert result.observed_reads[(3, W + 2)] == 2

    def test_squashed_tasks_rerun_and_commit(self, quad_machine):
        from repro.tls.task import TaskState

        workload = violation_workload(extra_tasks=4)
        sim = Simulation(quad_machine, MULTI_T_MV_EAGER, workload)
        sim.run()
        assert all(r.state is TaskState.COMMITTED
                   for r in sim.runs.values())


class TestSingleTRecoveryReclaim:
    def test_parked_singlet_proc_reclaims_after_squash(self, tiny_machine):
        """A SingleT processor whose parked speculative task was squashed
        must return to the scheduler pool instead of idling to the end
        (regression: the squash teardown dropped the task from residency
        before the parked processor was examined)."""
        workload = make_workload(
            "reclaim",
            make_task(0, compute(60_000), write(W), compute(100)),
            make_task(1, compute(300), read(W), compute(2_000)),
            make_task(2, compute(2_000)),
            make_task(3, compute(2_000)),
        )
        result = simulate(tiny_machine, SINGLE_T_EAGER, workload)
        assert result.violation_events >= 1
        # The second processor re-executes the squashed task (or at least
        # some task) after recovery rather than stalling forever.
        procs_used = {t.proc_id for t in result.task_timings}
        assert procs_used == {0, 1}
        assert result.memory_image == workload.sequential_image()
