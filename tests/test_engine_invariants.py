"""Property-based correctness invariants on the full engine.

For *any* workload, machine size, and buffering scheme:

1. the final main-memory image equals the sequential last-writer image;
2. every committed task's first read of each word observed exactly the
   version sequential execution would provide;
3. every task commits, and commits happen in task order;
4. per-processor cycle accounting is conserved (categories sum to the
   total execution time).

Hypothesis drives randomized op streams, including ones that provoke
out-of-order RAW violations and squash cascades.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import pytest

from repro.core.config import NUMA_16, CMP_8, scaled_machine
from repro.core.engine import Simulation
from repro.core.taxonomy import EVALUATED_SCHEMES
from repro.tls.task import OP_COMPUTE, OP_READ, OP_WRITE, TaskSpec
from repro.workloads.base import Workload

#: A small word pool guarantees cross-task sharing and conflicts.
WORD_POOL = [0, 1, 15, 16, 17, 64, 100, 1000]


@st.composite
def workloads(draw) -> Workload:
    n_tasks = draw(st.integers(2, 8))
    tasks = []
    for tid in range(n_tasks):
        n_ops = draw(st.integers(1, 10))
        ops = []
        for _ in range(n_ops):
            kind = draw(st.sampled_from([OP_COMPUTE, OP_READ, OP_WRITE]))
            if kind == OP_COMPUTE:
                ops.append((OP_COMPUTE, draw(st.integers(1, 4000))))
            else:
                ops.append((kind, draw(st.sampled_from(WORD_POOL))))
        tasks.append(TaskSpec(task_id=tid, ops=tuple(ops)))
    return Workload(name="random", tasks=tuple(tasks))


_MACHINES = [
    scaled_machine(NUMA_16, 2),
    scaled_machine(NUMA_16, 4),
    scaled_machine(CMP_8, 3),
]


def check_invariants(machine, scheme, workload):
    sim = Simulation(machine, scheme, workload)
    result = sim.run()

    # (1) Memory image equals sequential execution.
    assert result.memory_image == workload.sequential_image()

    # (2) Committed reads observed sequential semantics.
    expected_reads = workload.sequential_reads()
    for key, producer in expected_reads.items():
        assert result.observed_reads[key] == producer, (
            f"{scheme.name}: read {key} saw {result.observed_reads[key]}, "
            f"sequential expects {producer}"
        )

    # (3) All tasks committed, in order.
    committed = [tid for tid, _s, _e in result.commit_wavefront]
    assert committed == sorted(committed) == list(range(workload.n_tasks))

    # (4) Accounting conservation.
    for proc in sim.procs:
        assert proc.account.total() == pytest.approx(result.total_cycles,
                                                     rel=1e-9, abs=1e-6)
    return result


@pytest.mark.parametrize("scheme", EVALUATED_SCHEMES, ids=lambda s: s.name)
@given(workload=workloads(), machine_idx=st.integers(0, len(_MACHINES) - 1))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_engine_preserves_sequential_semantics(scheme, workload, machine_idx):
    check_invariants(_MACHINES[machine_idx], scheme, workload)


@given(workload=workloads())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_all_schemes_agree_on_final_state(workload):
    """Every scheme must compute the same final memory image."""
    machine = _MACHINES[1]
    images = set()
    for scheme in EVALUATED_SCHEMES:
        result = Simulation(machine, scheme, workload).run()
        images.add(tuple(sorted(result.memory_image.items())))
    assert len(images) == 1


@given(workload=workloads(), seed=st.integers(0, 3))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_single_processor_matches_any_processor_count(workload, seed):
    """Even on one processor (pure pipelining), semantics hold."""
    machine = scaled_machine(NUMA_16, 1)
    from repro.core.taxonomy import MULTI_T_MV_LAZY

    result = check_invariants(machine, MULTI_T_MV_LAZY, workload)
    assert result.violation_events == 0  # no concurrency, no violations
