"""Coverage of small utilities not exercised elsewhere."""

import pytest

from repro.analysis.report import render_timeline
from repro.core.config import CacheGeometry
from repro.memsys.cache import CacheLine, CacheStats, VersionCache
from repro.core.taxonomy import MULTI_T_MV_LAZY, MergePolicy, TaskPolicy


class TestRenderTimeline:
    def test_segments_rendered_per_proc(self):
        text = render_timeline(
            {0: [("exec", 0.0, 40.0), ("commit", 40.0, 50.0)],
             1: [("exec", 10.0, 60.0)]},
            total=60.0, title="tl", width=30)
        lines = text.splitlines()
        assert lines[0] == "tl"
        assert lines[1].startswith("P0 |")
        assert "e" in lines[1] and "c" in lines[1]
        assert "e" in lines[2]

    def test_zero_total_does_not_crash(self):
        text = render_timeline({0: []}, total=0.0)
        assert "P0" in text


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.accesses == 4
        assert stats.hit_rate == pytest.approx(0.75)

    def test_hit_rate_no_accesses(self):
        assert CacheStats().hit_rate == 0.0

    def test_cache_hit_miss_counting(self):
        cache = VersionCache(CacheGeometry(512, 2))
        cache.insert(CacheLine(0, 1), now=0)
        entry = cache.find(0, 1)
        cache.touch(entry, now=1)
        cache.record_miss()
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1


class TestEnumStrings:
    def test_policy_strings(self):
        assert str(TaskPolicy.MULTI_T_MV) == "MultiT&MV"
        assert str(MergePolicy.LAZY_AMM) == "Lazy AMM"

    def test_scheme_str_matches_name(self):
        assert str(MULTI_T_MV_LAZY) == MULTI_T_MV_LAZY.name

    def test_cycle_category_strings(self):
        from repro.processor.processor import CycleCategory

        assert str(CycleCategory.SV_STALL) == "sv-stall"

    def test_task_state_strings(self):
        from repro.tls.task import TaskState

        assert str(TaskState.SV_STALLED) == "sv-stalled"

    def test_support_strings(self):
        from repro.core.supports import Support

        assert str(Support.CTID) == "Cache Task ID"

    def test_trace_event_strings(self):
        from repro.core.trace import TraceEvent

        assert str(TraceEvent.TASK_SQUASHED) == "task-squashed"

    def test_limiting_characteristic_strings(self):
        from repro.core.taxonomy import LimitingCharacteristic

        assert "imbalance" in str(LimitingCharacteristic.LOAD_IMBALANCE)


class TestWorkloadRepr:
    def test_region_constants_ordered(self):
        from repro.workloads.base import (
            DEP_BASE,
            OUTPUT_BASE,
            PRIV_BASE,
            SHARED_RO_BASE,
        )

        assert SHARED_RO_BASE < PRIV_BASE < OUTPUT_BASE < DEP_BASE
