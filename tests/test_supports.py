"""Unit tests for the Tables 1-2 support analysis (Section 3.3)."""

from repro.core.supports import (
    SUPPORT_DESCRIPTIONS,
    Support,
    UPGRADE_PATH,
    complexity_score,
    required_supports,
    shaded_region_argument,
)
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_FMM,
    MULTI_T_MV_FMM_SW,
    MULTI_T_MV_LAZY,
    MULTI_T_SV_EAGER,
    MergePolicy,
    SINGLE_T_EAGER,
    SINGLE_T_LAZY,
    Scheme,
    TaskPolicy,
)


class TestRequiredSupports:
    """The support sets asserted against the paper's Table 2."""

    def test_singlet_eager_needs_nothing(self):
        assert required_supports(SINGLE_T_EAGER) == frozenset()

    def test_multit_sv_adds_ctid(self):
        assert required_supports(MULTI_T_SV_EAGER) == {Support.CTID}

    def test_multit_mv_adds_crl(self):
        assert required_supports(MULTI_T_MV_EAGER) == {
            Support.CTID, Support.CRL,
        }

    def test_singlet_lazy_needs_ctid_and_vcl(self):
        assert required_supports(SINGLE_T_LAZY) == {
            Support.CTID, Support.VCL,
        }

    def test_multit_mv_lazy(self):
        assert required_supports(MULTI_T_MV_LAZY) == {
            Support.CTID, Support.CRL, Support.VCL,
        }

    def test_fmm_needs_ctid_mtid_ulog(self):
        assert required_supports(MULTI_T_MV_FMM) == {
            Support.CTID, Support.CRL, Support.MTID, Support.ULOG,
        }

    def test_fmm_sw_drops_ulog_hardware(self):
        supports = required_supports(MULTI_T_MV_FMM_SW)
        assert Support.ULOG not in supports
        assert Support.MTID in supports

    def test_singlet_fmm_still_needs_ctid(self):
        """Section 3.3.4: FMM needs task-ID tags even with one task."""
        singlet_fmm = Scheme(TaskPolicy.SINGLE_T, MergePolicy.FMM)
        assert Support.CTID in required_supports(singlet_fmm)


class TestComplexityOrdering:
    """Section 3.3.5's qualitative complexity claims."""

    def test_multit_mv_eager_simpler_than_singlet_lazy(self):
        assert (complexity_score(MULTI_T_MV_EAGER)
                < complexity_score(SINGLE_T_LAZY))

    def test_lazy_simpler_than_fmm(self):
        assert (complexity_score(MULTI_T_MV_LAZY)
                < complexity_score(MULTI_T_MV_FMM))

    def test_upgrade_path_is_monotonic(self):
        scores = [
            complexity_score(SINGLE_T_EAGER),
            complexity_score(MULTI_T_MV_EAGER),
            complexity_score(MULTI_T_MV_LAZY),
            complexity_score(MULTI_T_MV_FMM),
        ]
        assert scores == sorted(scores)
        assert len(set(scores)) == len(scores)

    def test_shaded_argument_mentions_crl_only(self):
        text = shaded_region_argument()
        assert "CRL" in text


class TestTables:
    def test_table1_covers_all_supports(self):
        assert set(SUPPORT_DESCRIPTIONS) == set(Support)
        for description in SUPPORT_DESCRIPTIONS.values():
            assert description

    def test_table2_rows(self):
        assert len(UPGRADE_PATH) == 4
        by_target = {u.upgrade_to: u for u in UPGRADE_PATH}
        assert by_target["MultiT&SV"].added_supports == {Support.CTID}
        assert by_target["MultiT&MV"].added_supports == {Support.CRL}
        assert by_target["Lazy AMM"].added_supports == {
            Support.CTID, Support.VCL,
        }
        assert by_target["FMM"].added_supports == {
            Support.ULOG, Support.MTID,
        }
