"""Sweep runner + result cache: determinism, dedup, content addressing.

The contract under test (see ``repro.runner.runner``): the execution
mode — serial in-process, fanned out over a chunked process pool,
replayed from the in-memory LRU tier or the on-disk cache, or shared
with a concurrent in-flight computation — can never change a result.
``canonical_result_bytes`` (the full serialization minus the
host-measured wall clock) is the equality we hold all modes to, bit
for bit.
"""

import json
import threading
import time
from collections import Counter

import pytest

from repro.analysis.serialization import canonical_result_bytes
from repro.baselines.sequential import SequentialResult
from repro.core.config import CMP_8, NUMA_16, NUMA_16_BIG_L2
from repro.core.results import SimulationResult
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_FMM,
    MULTI_T_MV_LAZY,
    SINGLE_T_EAGER,
)
from repro.workloads.base import Workload
from repro.runner import (
    MemoryResultCache,
    ResultCache,
    SimJob,
    SweepRunner,
    WorkloadSpec,
    execute_job,
)

SCALE = 0.15  # keeps each simulation fast while exercising every path


def _job(app="Euler", scheme=MULTI_T_MV_LAZY, machine=NUMA_16, seed=0):
    return SimJob(
        machine=machine,
        workload=WorkloadSpec(app, seed=seed, scale=SCALE),
        scheme=scheme,
    )


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
def test_cache_key_is_stable_and_distinguishes_jobs():
    a = _job()
    assert a.cache_key() == _job().cache_key()
    assert a.cache_key() != _job(scheme=MULTI_T_MV_EAGER).cache_key()
    assert a.cache_key() != _job(app="Apsi").cache_key()
    assert a.cache_key() != _job(seed=1).cache_key()
    assert a.cache_key() != _job(machine=CMP_8).cache_key()
    # Sequential baseline is its own job.
    assert a.cache_key() != _job(scheme=None).cache_key()


def test_cache_key_separates_machines_sharing_a_display_name():
    # NUMA_16 and NUMA_16_BIG_L2 are both named "CC-NUMA-16"; the key
    # hashes the full config, so they must never collide.
    assert NUMA_16.name == NUMA_16_BIG_L2.name
    assert (_job(machine=NUMA_16).cache_key()
            != _job(machine=NUMA_16_BIG_L2).cache_key())


def test_cache_key_identity_of_derived_configs():
    # Two independent ParamSpace derivations with identical parameters
    # must land on the same cache entry; any parameter change must miss.
    from repro.explore import ParamSpace

    first = ParamSpace(NUMA_16).variant("l2_size", 1024 * 1024)
    second = ParamSpace(NUMA_16).variant("l2_size", 1024 * 1024)
    assert first.machine == second.machine
    assert (_job(machine=first.machine).cache_key()
            == _job(machine=second.machine).cache_key())

    other_value = ParamSpace(NUMA_16).variant("l2_size", 2 * 1024 * 1024)
    assert (_job(machine=first.machine).cache_key()
            != _job(machine=other_value.machine).cache_key())

    # Same value on a different axis is a different machine even if the
    # timing-relevant knobs could coincide.
    other_axis = ParamSpace(NUMA_16).variant("overflow_capacity", 16)
    assert (_job(machine=first.machine).cache_key()
            != _job(machine=other_axis.machine).cache_key())


def test_base_value_variant_shares_cache_key_with_base():
    # Deriving an axis's base value returns the base config itself, so
    # exploration runs reuse the figure/report pipelines' cache entries.
    from repro.explore import ParamSpace

    variant = ParamSpace(NUMA_16).variant("l2_size", 512 * 1024)
    assert variant.is_base
    assert variant.machine is NUMA_16
    assert (_job(machine=variant.machine).cache_key()
            == _job(machine=NUMA_16).cache_key())


def test_cache_key_includes_engine_version(monkeypatch):
    import repro.runner.jobs as jobs_mod

    before = _job().cache_key()
    monkeypatch.setattr(jobs_mod, "ENGINE_VERSION", "test-bump")
    assert _job().cache_key() != before


# ----------------------------------------------------------------------
# Determinism across execution modes
# ----------------------------------------------------------------------
def test_serial_pool_and_cache_replay_are_bit_identical(tmp_path):
    job = _job()
    sibling = _job(scheme=MULTI_T_MV_EAGER)

    serial = SweepRunner(jobs=1, cache=None).run(job)
    # Two pending jobs + jobs>1 + single-job chunks forces the
    # ProcessPoolExecutor path (larger chunk sizes would fall back to
    # serial for a batch this small).
    pooled = SweepRunner(jobs=2, cache=None,
                         chunk_size=1).run_many([job, sibling])[0]

    cache = ResultCache(tmp_path / "cache")
    SweepRunner(jobs=1, cache=cache).run(job)  # populate
    fresh = SweepRunner(jobs=1, cache=ResultCache(tmp_path / "cache"))
    replayed = fresh.run(job)
    assert fresh.cache.stats.hits == 1

    reference = canonical_result_bytes(serial)
    assert canonical_result_bytes(pooled) == reference
    assert canonical_result_bytes(replayed) == reference
    assert isinstance(replayed, SimulationResult)
    assert replayed.total_cycles == serial.total_cycles
    assert replayed.cycles_by_category == serial.cycles_by_category
    assert replayed.task_timings == serial.task_timings
    assert replayed.memory_image == serial.memory_image


def test_checked_job_is_deterministic_across_runs_and_replay(tmp_path):
    # The validate path: an invariant-checked job run twice in-process
    # and once through cache replay is bit-identical — the checker
    # observes the run without perturbing it.
    job = SimJob(
        machine=NUMA_16,
        workload=WorkloadSpec("Euler", seed=0, scale=SCALE),
        scheme=MULTI_T_MV_LAZY,
        check_invariants=True,
    )
    runner = SweepRunner(jobs=1, cache=None)
    first = canonical_result_bytes(runner.run(job))
    second = canonical_result_bytes(runner.run(job))

    cache = ResultCache(tmp_path)
    SweepRunner(jobs=1, cache=cache).run(job)  # populate
    fresh = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
    replayed = canonical_result_bytes(fresh.run(job))
    assert fresh.cache.stats.hits == 1

    assert first == second == replayed
    # And it matches the unchecked run of the same job bit for bit.
    unchecked = _job(scheme=MULTI_T_MV_LAZY)
    assert job.cache_key() != unchecked.cache_key()
    assert canonical_result_bytes(runner.run(unchecked)) == first


def test_sequential_baseline_round_trips_through_pool_and_cache(tmp_path):
    job = _job(scheme=None)
    other = _job(app="Apsi", scheme=None)
    serial = execute_job(job)
    assert isinstance(serial, SequentialResult)

    pooled = SweepRunner(jobs=2, cache=None,
                         chunk_size=1).run_many([job, other])[0]
    cache = ResultCache(tmp_path)
    SweepRunner(jobs=1, cache=cache).run(job)
    replayed = SweepRunner(jobs=1, cache=cache).run(job)

    for result in (pooled, replayed):
        assert isinstance(result, SequentialResult)
        assert result == serial  # frozen dataclass: full value equality


def test_wall_clock_is_measured_but_excluded_from_canonical_form():
    result = execute_job(_job())
    assert result.wall_clock_seconds > 0
    assert result.events_processed > 0
    assert result.events_per_second() > 0
    payload = json.loads(canonical_result_bytes(result))
    assert "wall_clock_seconds" not in payload
    assert payload["events_processed"] == result.events_processed


# ----------------------------------------------------------------------
# Dedup and cache behavior
# ----------------------------------------------------------------------
def test_run_many_dedupes_identical_jobs(tmp_path):
    cache = ResultCache(tmp_path)
    runner = SweepRunner(jobs=1, cache=cache)
    job = _job()
    results = runner.run_many([job, _job(), job])
    assert len(results) == 3
    assert len(cache) == 1  # computed (and stored) exactly once
    b0 = canonical_result_bytes(results[0])
    assert canonical_result_bytes(results[1]) == b0
    assert canonical_result_bytes(results[2]) == b0


def test_figures_share_one_sequential_baseline(tmp_path):
    from repro.analysis.experiments import ExperimentContext

    ctx = ExperimentContext(scale=SCALE, jobs=1, cache=tmp_path / "c")
    apps = ("Euler",)
    ctx.prefetch(NUMA_16, apps, (SINGLE_T_EAGER,), sequential=True)
    stores_after_first = ctx.runner.cache.stats.stores
    # A second figure over the same (machine, app) pair: baseline and
    # scheme runs come from the memo, nothing is recomputed or restored.
    ctx.prefetch(NUMA_16, apps, (SINGLE_T_EAGER,), sequential=True)
    ctx.sequential(NUMA_16, "Euler")
    assert ctx.runner.cache.stats.stores == stores_after_first == 2


def test_corrupt_cache_entry_is_a_miss_and_recomputed(tmp_path):
    cache = ResultCache(tmp_path)
    job = _job()
    runner = SweepRunner(jobs=1, cache=cache)
    first = runner.run(job)
    path = cache.path_for(job.cache_key())
    path.write_text("{ truncated")
    again = SweepRunner(jobs=1, cache=ResultCache(tmp_path)).run(job)
    assert canonical_result_bytes(again) == canonical_result_bytes(first)
    # The recomputed result was stored back over the corrupt entry.
    assert json.loads(path.read_text())["total_cycles"] > 0


def test_no_cache_runner_recomputes():
    runner = SweepRunner(jobs=1, cache=None)
    job = _job()
    a = runner.run(job)
    b = runner.run(job)
    assert canonical_result_bytes(a) == canonical_result_bytes(b)


def test_experiment_context_no_cache_mode(tmp_path, monkeypatch):
    from repro.analysis.experiments import ExperimentContext

    monkeypatch.chdir(tmp_path)  # any default cache dir would land here
    ctx = ExperimentContext(scale=SCALE, jobs=1, cache=False)
    assert ctx.runner.cache is None
    result = ctx.run(NUMA_16, MULTI_T_MV_LAZY, "Euler")
    assert result.total_cycles > 0
    assert not (tmp_path / ".repro-cache").exists()


# ----------------------------------------------------------------------
# Memory tier (LRU)
# ----------------------------------------------------------------------
def test_memory_cache_lru_eviction_order():
    tier = MemoryResultCache(max_entries=3)
    for key in ("a", "b", "c"):
        tier.store(key, key.encode())
    # Touch "a": it becomes most recent, so "b" is now the LRU victim.
    assert tier.load("a") == b"a"
    tier.store("d", b"d")
    assert "b" not in tier
    assert tier.keys() == ["c", "a", "d"]
    assert tier.stats.evictions == 1
    # Another insert evicts "c" next.
    tier.store("e", b"e")
    assert "c" not in tier
    assert "a" in tier
    assert tier.stats.evictions == 2
    assert tier.load("missing") is None
    assert tier.stats.misses == 1


def test_memory_cache_refresh_does_not_evict():
    tier = MemoryResultCache(max_entries=2)
    tier.store("a", b"1")
    tier.store("b", b"2")
    tier.store("a", b"3")  # overwrite refreshes, never evicts
    assert len(tier) == 2
    assert tier.stats.evictions == 0
    assert tier.load("a") == b"3"
    assert tier.stats.stores == 2  # overwrite is not a new store
    with pytest.raises(ValueError):
        MemoryResultCache(max_entries=0)


def test_memory_disk_and_live_tiers_are_bit_identical(tmp_path):
    cache = ResultCache(tmp_path)
    runner = SweepRunner(jobs=1, cache=cache)
    job = _job()
    live = runner.run(job)  # live computation, stored through both tiers
    assert job.cache_key() in runner.memory_cache

    hits_before = runner.memory_cache.stats.hits
    from_memory = runner.run(job)  # memory-tier hit, disk untouched
    assert runner.memory_cache.stats.hits == hits_before + 1
    disk_hits_before = cache.stats.hits

    fresh = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
    from_disk = fresh.run(job)  # disk-tier replay (fresh memory tier)
    assert fresh.cache.stats.hits == 1
    assert cache.stats.hits == disk_hits_before
    # The disk hit was promoted into the fresh runner's memory tier.
    assert job.cache_key() in fresh.memory_cache

    reference = canonical_result_bytes(live)
    assert canonical_result_bytes(from_memory) == reference
    assert canonical_result_bytes(from_disk) == reference


def test_memory_tier_hit_returns_independent_results():
    # The tier stores serialized bytes, so two replays of the same cell
    # must not share mutable state (metrics deserialization pops keys).
    runner = SweepRunner(jobs=1, cache=None)
    job = _job()
    first = runner.run(job)
    second = runner.run(job)
    assert first is not second
    assert canonical_result_bytes(first) == canonical_result_bytes(second)


# ----------------------------------------------------------------------
# In-flight dedup and dispatch policy
# ----------------------------------------------------------------------
def test_concurrent_run_many_computes_each_cell_once(monkeypatch):
    import repro.runner.runner as runner_mod

    counts = Counter()
    count_lock = threading.Lock()
    real_execute = runner_mod.execute_job

    def counting_execute(job):
        with count_lock:
            counts[job.cache_key()] += 1
        time.sleep(0.05)  # widen the in-flight window
        return real_execute(job)

    monkeypatch.setattr(runner_mod, "execute_job", counting_execute)
    runner = SweepRunner(jobs=1, cache=None)
    batch = [_job(), _job(scheme=MULTI_T_MV_EAGER)]
    barrier = threading.Barrier(2)
    results = [None, None]
    errors = []

    def call(slot):
        try:
            barrier.wait()
            results[slot] = runner.run_many(batch)
        except BaseException as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [threading.Thread(target=call, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # Each distinct cell was simulated exactly once across both callers
    # (the second caller joined the first's in-flight computation or hit
    # the shared memory tier).
    assert len(counts) == 2
    assert all(n == 1 for n in counts.values())
    for a, b in zip(results[0], results[1]):
        assert canonical_result_bytes(a) == canonical_result_bytes(b)


def test_small_batches_skip_pool_startup(monkeypatch):
    import repro.dist.dispatch as dispatch_mod

    class ExplodingPool:
        def __init__(self, *args, **kwargs):
            raise AssertionError("pool started for a batch below one chunk")

    monkeypatch.setattr(dispatch_mod, "ProcessPoolExecutor", ExplodingPool)
    # jobs=1 always stays serial, whatever the batch size.
    runner = SweepRunner(jobs=1, cache=None)
    assert runner.run(_job()) is not None
    # jobs>1 with a batch no larger than one chunk stays serial too.
    runner = SweepRunner(jobs=4, cache=None, chunk_size=4)
    batch = [_job(), _job(scheme=MULTI_T_MV_EAGER),
             _job(scheme=SINGLE_T_EAGER)]
    results = runner.run_many(batch)
    assert len(results) == 3


def test_chunked_pool_dispatch_is_bit_identical_to_serial(tmp_path):
    batch = [
        _job(scheme=scheme, app=app)
        for scheme in (MULTI_T_MV_LAZY, MULTI_T_MV_EAGER, MULTI_T_MV_FMM)
        for app in ("Euler", "Apsi")
    ]
    serial = SweepRunner(jobs=1, cache=None).run_many(batch)
    # Six distinct cells in chunks of two across two workers.
    pooled = SweepRunner(jobs=2, cache=None, chunk_size=2).run_many(batch)
    for a, b in zip(serial, pooled):
        assert canonical_result_bytes(a) == canonical_result_bytes(b)


# ----------------------------------------------------------------------
# Trace workloads: content-addressed identity in the result cache
# ----------------------------------------------------------------------
def _trace_job(path, scheme=MULTI_T_MV_LAZY):
    from repro.workloads import TraceWorkload

    return SimJob(machine=NUMA_16, workload=TraceWorkload.open(path),
                  scheme=scheme)


def _write_storm(path, *, extra_op=False):
    from repro.tls.task import OP_READ, TaskSpec
    from repro.workloads import squash_storm, write_trace

    workload = squash_storm(24, seed=7)
    if extra_op:
        last = workload.tasks[-1]
        tasks = workload.tasks[:-1] + (
            TaskSpec(task_id=last.task_id,
                     ops=last.ops + ((OP_READ, 0x42),)),)
        workload = Workload(
            name=workload.name, tasks=tasks,
            priv_predicate_base=workload.priv_predicate_base,
            priv_predicate_limit=workload.priv_predicate_limit,
            description=workload.description)
    return write_trace(path, workload, meta={"generator": "squash-storm",
                                             "seed": "7"})


def test_trace_identity_is_content_not_filename(tmp_path):
    # Identical content under two different filenames: one cache entry.
    _write_storm(tmp_path / "a.tlstrace")
    _write_storm(tmp_path / "copy-of-a.tlstrace")
    job_a = _trace_job(tmp_path / "a.tlstrace")
    job_b = _trace_job(tmp_path / "copy-of-a.tlstrace")
    assert job_a.cache_key() == job_b.cache_key()

    cache = ResultCache(tmp_path / "cache")
    runner = SweepRunner(jobs=1, cache=cache)
    first = runner.run(job_a)
    hits_before = runner.memory_cache.stats.hits
    second = runner.run(job_b)  # different file, same content: a hit
    assert runner.memory_cache.stats.hits == hits_before + 1
    assert canonical_result_bytes(first) == canonical_result_bytes(second)


def test_one_op_edit_misses_the_cache(tmp_path):
    _write_storm(tmp_path / "a.tlstrace")
    _write_storm(tmp_path / "b.tlstrace", extra_op=True)
    job_a = _trace_job(tmp_path / "a.tlstrace")
    job_b = _trace_job(tmp_path / "b.tlstrace")
    assert job_a.workload.digest != job_b.workload.digest
    assert job_a.cache_key() != job_b.cache_key()
    # And the scheme still differentiates jobs over one trace.
    assert (job_a.cache_key()
            != _trace_job(tmp_path / "a.tlstrace",
                          scheme=MULTI_T_MV_EAGER).cache_key())


def test_warm_cache_trace_replay_is_bit_identical(tmp_path):
    _write_storm(tmp_path / "a.tlstrace")
    job = _trace_job(tmp_path / "a.tlstrace")
    cold = SweepRunner(jobs=1, cache=None).run(job)
    cache = ResultCache(tmp_path / "cache")
    SweepRunner(jobs=1, cache=cache).run(job)  # populate disk tier
    warm_runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path / "cache"))
    warm = warm_runner.run(job)
    assert warm_runner.cache.stats.hits == 1
    assert canonical_result_bytes(warm) == canonical_result_bytes(cold)


def test_trace_job_survives_the_process_pool(tmp_path):
    _write_storm(tmp_path / "a.tlstrace")
    job = _trace_job(tmp_path / "a.tlstrace")
    serial = SweepRunner(jobs=1, cache=None).run(job)
    pooled = SweepRunner(jobs=2, cache=None, chunk_size=1).run_many(
        [job, SimJob(machine=NUMA_16, workload=job.workload,
                     scheme=MULTI_T_MV_EAGER)])
    assert canonical_result_bytes(pooled[0]) == canonical_result_bytes(serial)


def test_stale_trace_reference_is_refused(tmp_path):
    from repro.errors import TraceFormatError
    from repro.workloads.trace import _DECODED

    _write_storm(tmp_path / "a.tlstrace")
    job = _trace_job(tmp_path / "a.tlstrace")
    _write_storm(tmp_path / "a.tlstrace", extra_op=True)  # edited on disk
    _DECODED.clear()  # force re-read: the memo would otherwise serve it
    with pytest.raises(TraceFormatError, match="changed on disk"):
        job.resolve_workload()
