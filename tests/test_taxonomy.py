"""Unit tests for the taxonomy (Figure 2-(a), Figure 4, Figure 8)."""

import pytest

from repro.core.taxonomy import (
    AMM_SCHEMES,
    EVALUATED_SCHEMES,
    LimitingCharacteristic,
    MULTI_T_MV_EAGER,
    MULTI_T_MV_FMM,
    MULTI_T_MV_FMM_SW,
    MULTI_T_MV_LAZY,
    MULTI_T_SV_EAGER,
    MergePolicy,
    PRIOR_SCHEMES,
    PriorScheme,
    SINGLE_T_EAGER,
    SINGLE_T_LAZY,
    Scheme,
    TaskPolicy,
    limiting_characteristics,
    scheme_from_name,
)
from repro.errors import ConfigurationError


class TestScheme:
    def test_names(self):
        assert SINGLE_T_EAGER.name == "SingleT Eager AMM"
        assert MULTI_T_MV_LAZY.name == "MultiT&MV Lazy AMM"
        assert MULTI_T_MV_FMM.name == "MultiT&MV FMM"
        assert MULTI_T_MV_FMM_SW.name == "MultiT&MV FMM.Sw"

    def test_software_log_requires_fmm(self):
        with pytest.raises(ConfigurationError):
            Scheme(TaskPolicy.SINGLE_T, MergePolicy.EAGER_AMM,
                   software_log=True)

    def test_shaded_region(self):
        """SingleT FMM and MultiT&SV FMM are the shaded boxes."""
        assert Scheme(TaskPolicy.SINGLE_T, MergePolicy.FMM).is_shaded
        assert Scheme(TaskPolicy.MULTI_T_SV, MergePolicy.FMM).is_shaded
        assert not MULTI_T_MV_FMM.is_shaded
        for scheme in EVALUATED_SCHEMES:
            assert not scheme.is_shaded

    def test_amm_property(self):
        assert MergePolicy.EAGER_AMM.is_architectural
        assert MergePolicy.LAZY_AMM.is_architectural
        assert not MergePolicy.FMM.is_architectural

    def test_evaluated_schemes_unique(self):
        names = [s.name for s in EVALUATED_SCHEMES]
        assert len(names) == len(set(names)) == 8

    def test_amm_schemes_are_figure9_bars(self):
        assert len(AMM_SCHEMES) == 6
        assert all(s.merge_policy.is_architectural for s in AMM_SCHEMES)

    def test_scheme_is_hashable_and_frozen(self):
        assert len({SINGLE_T_EAGER, SINGLE_T_EAGER, SINGLE_T_LAZY}) == 2
        with pytest.raises(AttributeError):
            SINGLE_T_EAGER.software_log = True  # type: ignore[misc]


class TestSchemeLookup:
    def test_round_trip_all(self):
        for scheme in EVALUATED_SCHEMES:
            assert scheme_from_name(scheme.name) == scheme

    def test_case_insensitive(self):
        assert scheme_from_name("multit&mv fmm.sw") == MULTI_T_MV_FMM_SW

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            scheme_from_name("QuadT Hyper AMM")


class TestPriorSchemes:
    """Figure 4 mapping facts asserted from the paper."""

    def _by_name(self, name: str) -> PriorScheme:
        for prior in PRIOR_SCHEMES:
            if prior.name == name:
                return prior
        raise AssertionError(f"missing prior scheme {name}")

    def test_multiscalar_variants(self):
        arb = self._by_name("Multiscalar (hierarchical ARB)")
        svc = self._by_name("Multiscalar (SVC)")
        assert arb.merge_policy is MergePolicy.EAGER_AMM
        assert svc.merge_policy is MergePolicy.LAZY_AMM
        assert arb.task_policy is svc.task_policy is TaskPolicy.SINGLE_T

    def test_fmm_schemes(self):
        for name in ("Zhang99&T", "Garzaran01"):
            prior = self._by_name(name)
            assert prior.merge_policy is MergePolicy.FMM
            assert prior.task_policy is TaskPolicy.MULTI_T_MV

    def test_prvulovic_is_multit_mv_lazy(self):
        prior = self._by_name("Prvulovic01")
        assert prior.task_policy is TaskPolicy.MULTI_T_MV
        assert prior.merge_policy is MergePolicy.LAZY_AMM

    def test_coarse_recovery_class(self):
        for name in ("LRPD", "SUDS", "DDSM"):
            assert self._by_name(name).is_coarse_recovery

    def test_steffan_has_both_designs(self):
        mv = self._by_name("Steffan97&00")
        sv = self._by_name("Steffan97&00 (SV design)")
        assert mv.task_policy is TaskPolicy.MULTI_T_MV
        assert sv.task_policy is TaskPolicy.MULTI_T_SV


class TestLimitingCharacteristics:
    """Figure 8 facts."""

    def test_singlet_eager(self):
        limits = limiting_characteristics(SINGLE_T_EAGER)
        assert LimitingCharacteristic.LOAD_IMBALANCE in limits
        assert LimitingCharacteristic.COMMIT_WAVEFRONT in limits
        assert LimitingCharacteristic.CACHE_OVERFLOW in limits
        assert LimitingCharacteristic.FREQUENT_RECOVERIES not in limits

    def test_multit_sv_keeps_priv_imbalance(self):
        limits = limiting_characteristics(MULTI_T_SV_EAGER)
        assert (LimitingCharacteristic.LOAD_IMBALANCE_WITH_PRIVATIZATION
                in limits)
        assert LimitingCharacteristic.LOAD_IMBALANCE not in limits

    def test_multit_mv_lazy_only_overflow(self):
        assert limiting_characteristics(MULTI_T_MV_LAZY) == frozenset(
            {LimitingCharacteristic.CACHE_OVERFLOW}
        )

    def test_fmm_only_recoveries(self):
        assert limiting_characteristics(MULTI_T_MV_FMM) == frozenset(
            {LimitingCharacteristic.FREQUENT_RECOVERIES}
        )

    def test_eager_mv_exposes_wavefront(self):
        limits = limiting_characteristics(MULTI_T_MV_EAGER)
        assert LimitingCharacteristic.COMMIT_WAVEFRONT in limits
