"""Tests of the distributed sweep dispatch subsystem (``repro.dist``).

The contracts under test, in roughly the order the ISSUE states them:

* wire protocol framing — roundtrips, oversized/malformed rejection;
* the :class:`Dispatcher` seam — ``LocalPoolDispatcher`` is the
  runner's default and delivers at most once per key;
* fleet-vs-serial byte-identity on the 16-cell machine x scheme grid,
  including with one worker killed mid-sweep (requeue + retry);
* heartbeat-timeout eviction of a silently wedged worker;
* digest-mismatch refusal: a forged worker envelope poisons the fleet,
  which then refuses all further work;
* registration refusal of engine/protocol-version mismatches;
* warm-key short circuits through a worker's shared cache; and
* the ``dispatch`` block of ``/v1/cache/stats``.

Fleet tests run real TCP coordinators on ephemeral localhost ports with
in-thread :class:`WorkerAgent` instances (same code path as the
subprocess agent, without interpreter startup); one end-to-end test
drives the CLI with genuine worker subprocesses.
"""

import socket
import struct
import threading
import time

import pytest

from repro.analysis.serialization import canonical_result_bytes
from repro.core.config import CMP_8, NUMA_16
from repro.core.taxonomy import EVALUATED_SCHEMES
from repro.dist import (
    FleetDispatcher,
    FleetDivergenceError,
    FleetError,
    LocalPoolDispatcher,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    WorkerAgent,
    parse_address,
    worker_fingerprint,
)
from repro.dist.protocol import (
    decode_header,
    decode_preamble,
    encode_frame,
    pack_jobs,
    pack_results,
    recv_frame,
    send_frame,
    unpack_jobs,
    unpack_results,
)
from repro.runner import ResultCache, SimJob, SweepRunner, WorkloadSpec
from repro.runner.runner import canonical_payload_digest

SCALE = 0.05


def _grid(machines=(NUMA_16, CMP_8), n_schemes=8, seed=0, scale=SCALE):
    return SimJob.grid(
        list(machines), list(EVALUATED_SCHEMES)[:n_schemes],
        [WorkloadSpec("Euler", seed=seed, scale=scale)])


def _serial_bytes(jobs):
    return [canonical_result_bytes(r)
            for r in SweepRunner(jobs=1, cache=None).run_many(jobs)]


def _start_agent(dispatcher, **kwargs):
    """Run a WorkerAgent against ``dispatcher`` on a daemon thread."""
    agent = WorkerAgent(dispatcher.address, **kwargs)
    thread = threading.Thread(target=agent.run, daemon=True)
    thread.start()
    return agent, thread


def _wait_workers(dispatcher, n, timeout=10.0):
    dispatcher.coordinator.wait_for_workers(n, timeout)


@pytest.fixture()
def fleet():
    """A started coordinator with test-friendly timeouts; no workers."""
    dispatcher = FleetDispatcher(
        min_workers=1, start_timeout=10, result_timeout=60,
        backoff_base=0.05, backoff_cap=0.2)
    dispatcher.start()
    yield dispatcher
    dispatcher.stop()


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
def test_frame_roundtrip():
    blob = b"\x00\x01payload\xff"
    wire = encode_frame({"type": "chunk", "chunk_id": 7}, blob)
    head_len, blob_len = decode_preamble(wire[:8])
    header = decode_header(wire[8:8 + head_len])
    assert header == {"type": "chunk", "chunk_id": 7}
    assert wire[8 + head_len:8 + head_len + blob_len] == blob


def test_preamble_rejects_oversized_frames():
    huge = struct.pack("!II", MAX_FRAME_BYTES, MAX_FRAME_BYTES)
    with pytest.raises(ProtocolError, match="exceeds"):
        decode_preamble(huge)
    with pytest.raises(ProtocolError, match="preamble"):
        decode_preamble(b"\x00\x01")


@pytest.mark.parametrize("raw", [
    b"not json", b"[1,2]", b'{"no_type": 1}', b'{"type": 3}'])
def test_header_rejects_malformed(raw):
    with pytest.raises(ProtocolError):
        decode_header(raw)


def test_job_chunk_roundtrip():
    jobs = _grid(machines=(NUMA_16,), n_schemes=2)
    assert unpack_jobs(pack_jobs(jobs)) == jobs
    with pytest.raises(ProtocolError, match="undecodable"):
        unpack_jobs(b"garbage")


def test_result_packing_roundtrip_and_overrun():
    envelopes = [("a1" * 32, "d" * 64, "computed", b"one"),
                 ("b2" * 32, "e" * 64, "cache", b"twotwo")]
    entries, blob = pack_results(envelopes)
    assert unpack_results(entries, blob) == envelopes
    entries[1]["length"] = 999
    with pytest.raises(ProtocolError, match="overruns"):
        unpack_results(entries, blob)
    entries[1]["length"] = 2
    with pytest.raises(ProtocolError, match="trailing"):
        unpack_results(entries, blob)


def test_parse_address():
    assert parse_address("127.0.0.1:8422") == ("127.0.0.1", 8422)
    with pytest.raises(ValueError):
        parse_address("8422")


def test_fingerprint_names_the_engine():
    fp = worker_fingerprint()
    from repro.core.engine import ENGINE_VERSION

    assert fp["engine_version"] == ENGINE_VERSION
    assert fp["protocol_version"] == PROTOCOL_VERSION
    assert fp["python"] and fp["platform"] and fp["host"]


# ----------------------------------------------------------------------
# The dispatcher seam
# ----------------------------------------------------------------------
def test_runner_defaults_to_the_local_pool_dispatcher():
    runner = SweepRunner(jobs=3, chunk_size=2)
    assert isinstance(runner.dispatcher, LocalPoolDispatcher)
    assert runner.dispatcher.describe() == "local-pool:3x2"


def test_local_pool_serial_path_delivers_each_key_once():
    jobs = _grid(machines=(NUMA_16,), n_schemes=2)
    dispatcher = LocalPoolDispatcher(jobs=1)
    landed = {}
    dispatcher.compute([(j.cache_key(), j) for j in jobs],
                       lambda key, raw: landed.setdefault(key, raw))
    assert len(landed) == 2
    assert dispatcher.stats.serial_batches == 1
    assert dispatcher.stats.jobs == 2
    reference = _serial_bytes(jobs)
    from repro.runner import result_from_payload
    import json

    assert [canonical_result_bytes(
        result_from_payload(json.loads(landed[j.cache_key()])))
        for j in jobs] == reference


# ----------------------------------------------------------------------
# Fleet byte-identity (the acceptance grid)
# ----------------------------------------------------------------------
def test_fleet_sweep_is_byte_identical_on_the_16_cell_grid(fleet):
    jobs = _grid(seed=11)
    assert len(jobs) == 16
    reference = _serial_bytes(jobs)
    agents = [_start_agent(fleet) for _ in range(2)]
    _wait_workers(fleet, 2)
    results = SweepRunner(cache=None, dispatcher=fleet).run_many(jobs)
    assert [canonical_result_bytes(r) for r in results] == reference
    stats = fleet.stats
    assert stats.workers_registered == 2
    assert stats.results_received == 16
    assert stats.digest_mismatches == 0
    for agent, thread in agents:
        agent.request_drain()
        thread.join(timeout=10)
    # Both workers actually shared the load (4 chunks over 2 pullers).
    assert sum(agent.jobs_done for agent, _t in agents) == 16


def test_fleet_survives_a_worker_killed_mid_sweep(fleet):
    jobs = _grid(seed=12)
    reference = _serial_bytes(jobs)
    # The doomed worker completes one chunk, then dies abruptly while
    # holding its second; the healthy worker absorbs the requeue.
    doomed, doomed_thread = _start_agent(fleet, fail_after_chunks=1)
    healthy, healthy_thread = _start_agent(fleet)
    _wait_workers(fleet, 2)
    results = SweepRunner(cache=None, dispatcher=fleet).run_many(jobs)
    assert [canonical_result_bytes(r) for r in results] == reference
    assert fleet.stats.workers_lost >= 1
    assert fleet.stats.chunks_requeued >= 1
    doomed_thread.join(timeout=10)
    assert doomed.chunks_done == 1
    healthy.request_drain()
    healthy_thread.join(timeout=10)


def test_heartbeat_timeout_evicts_a_wedged_worker():
    dispatcher = FleetDispatcher(
        min_workers=2, start_timeout=10, result_timeout=60,
        backoff_base=0.05, backoff_cap=0.2, heartbeat_timeout=0.8)
    dispatcher.start()
    try:
        jobs = _grid(machines=(NUMA_16,), seed=13)
        reference = _serial_bytes(jobs)
        wedged, wedged_thread = _start_agent(
            dispatcher, stall_after_pull=True, stall_seconds=20)
        healthy, healthy_thread = _start_agent(dispatcher)
        _wait_workers(dispatcher, 2)
        results = SweepRunner(
            cache=None, dispatcher=dispatcher).run_many(jobs)
        assert [canonical_result_bytes(r) for r in results] == reference
        assert dispatcher.stats.workers_lost >= 1
        assert dispatcher.stats.chunks_requeued >= 1
        wedged.request_drain()
        healthy.request_drain()
        wedged_thread.join(timeout=10)
        healthy_thread.join(timeout=10)
    finally:
        dispatcher.stop()


def test_chunk_abandoned_after_max_attempts_fails_the_sweep():
    dispatcher = FleetDispatcher(
        min_workers=1, start_timeout=10, result_timeout=60,
        backoff_base=0.05, backoff_cap=0.1, max_attempts=1)
    dispatcher.start()
    try:
        jobs = _grid(machines=(NUMA_16,), n_schemes=2, seed=14)
        _start_agent(dispatcher, fail_after_chunks=0)
        _wait_workers(dispatcher, 1)
        with pytest.raises(FleetError, match="abandoned"):
            SweepRunner(cache=None, dispatcher=dispatcher).run_many(jobs)
    finally:
        dispatcher.stop()


def test_backoff_delays_are_capped_exponential():
    coordinator = FleetDispatcher(
        backoff_base=0.25, backoff_cap=5.0).coordinator
    delays = [coordinator._backoff_delay(n) for n in range(1, 8)]
    assert delays == [0.25, 0.5, 1.0, 2.0, 4.0, 5.0, 5.0]


# ----------------------------------------------------------------------
# Digest cross-check: divergent fleets are refused
# ----------------------------------------------------------------------
def test_forged_digest_poisons_the_fleet(fleet):
    jobs = _grid(machines=(NUMA_16,), n_schemes=4, seed=15)
    # Sweep 1: a forging worker computes every cell; its bogus digests
    # are recorded (nothing to cross-check against yet, so it passes).
    forger, forger_thread = _start_agent(fleet, forge_digest=True)
    _wait_workers(fleet, 1)
    SweepRunner(cache=None, dispatcher=fleet).run_many(jobs)
    forger.request_drain()
    forger_thread.join(timeout=10)
    # Sweep 2: an honest worker recomputes the same cells; its (real)
    # digests disagree with the registry — the fleet is refused.
    honest, honest_thread = _start_agent(fleet)
    _wait_workers(fleet, 1)
    with pytest.raises(FleetDivergenceError, match="divergence"):
        SweepRunner(cache=None, dispatcher=fleet).run_many(jobs)
    assert fleet.stats.digest_mismatches >= 1
    assert fleet.coordinator.poisoned is not None
    # The poison latches: further work is refused outright.
    with pytest.raises(FleetDivergenceError):
        SweepRunner(cache=None, dispatcher=fleet).run_many(
            _grid(machines=(NUMA_16,), n_schemes=2, seed=16))
    honest.request_drain()
    honest_thread.join(timeout=10)


# ----------------------------------------------------------------------
# Registration gate
# ----------------------------------------------------------------------
def _raw_register(fleet, fingerprint):
    sock = socket.create_connection(
        ("127.0.0.1", fleet.coordinator.port), timeout=5)
    sock.settimeout(5)
    try:
        send_frame(sock, {"type": "register", "fingerprint": fingerprint})
        header, _blob = recv_frame(sock)
        return header
    finally:
        sock.close()


def test_registration_refuses_engine_mismatch(fleet):
    fingerprint = dict(worker_fingerprint(), engine_version="v0-bogus")
    header = _raw_register(fleet, fingerprint)
    assert header["type"] == "refused"
    assert "engine version" in header["reason"]
    assert fleet.stats.workers_refused == 1


def test_registration_refuses_protocol_mismatch(fleet):
    fingerprint = dict(worker_fingerprint(),
                       protocol_version=PROTOCOL_VERSION + 1)
    header = _raw_register(fleet, fingerprint)
    assert header["type"] == "refused"
    assert "protocol version" in header["reason"]


# ----------------------------------------------------------------------
# Cache short circuit + graceful drain
# ----------------------------------------------------------------------
def test_worker_short_circuits_warm_keys(fleet, tmp_path):
    jobs = _grid(machines=(NUMA_16,), n_schemes=2, seed=17)
    cache = ResultCache(tmp_path)
    # Pre-warm the shared tier with a serial run of the same cells.
    SweepRunner(jobs=1, cache=cache).run_many(jobs)
    warm_count = len(cache)
    assert warm_count == 2
    agent, thread = _start_agent(fleet, cache=ResultCache(tmp_path))
    _wait_workers(fleet, 1)
    reference = _serial_bytes(jobs)
    results = SweepRunner(cache=None, dispatcher=fleet).run_many(jobs)
    assert [canonical_result_bytes(r) for r in results] == reference
    assert fleet.stats.cache_short_circuits == warm_count
    agent.request_drain()
    thread.join(timeout=10)
    assert agent.cache_hits == warm_count


def test_idle_worker_drains_gracefully(fleet):
    agent, thread = _start_agent(fleet)
    _wait_workers(fleet, 1)
    agent.request_drain()
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert agent.summary()["drained"]
    deadline = time.monotonic() + 5
    while fleet.coordinator.worker_count and time.monotonic() < deadline:
        time.sleep(0.02)
    assert fleet.coordinator.worker_count == 0


def test_fleet_wide_single_compute_joins_inflight_keys(fleet):
    """Two concurrent sweeps over the same cells compute each cell once."""
    jobs = _grid(machines=(NUMA_16,), n_schemes=4, seed=18)
    agent, thread = _start_agent(fleet)
    _wait_workers(fleet, 1)
    outcomes = []

    def sweep():
        runner = SweepRunner(cache=None, dispatcher=fleet)
        outcomes.append(runner.run_many(jobs))

    first = threading.Thread(target=sweep)
    first.start()
    # Wait until the first sweep's (single) chunk is on the wire, then
    # submit the identical keys from a second runner: they must join the
    # inflight computation rather than dispatch a second chunk.
    deadline = time.monotonic() + 10
    while (fleet.stats.chunks_dispatched < 1
           and time.monotonic() < deadline):
        time.sleep(0.01)
    assert fleet.stats.chunks_dispatched >= 1
    sweep()
    first.join(timeout=120)
    assert len(outcomes) == 2
    a, b = outcomes
    assert ([canonical_result_bytes(r) for r in a]
            == [canonical_result_bytes(r) for r in b])
    # Each key computed once fleet-wide.
    assert fleet.stats.keys_joined == len(jobs)
    assert agent.jobs_done == len(jobs)
    agent.request_drain()
    thread.join(timeout=10)


# ----------------------------------------------------------------------
# Worker-side digest helper
# ----------------------------------------------------------------------
def test_canonical_payload_digest_matches_serialization():
    import hashlib
    import json as _json

    from repro.runner.runner import (
        _encode_payload,
        execute_job,
        payload_from_result,
    )

    job = _grid(machines=(NUMA_16,), n_schemes=1, seed=19)[0]
    result = execute_job(job)
    raw = _encode_payload(payload_from_result(result))
    expected = hashlib.sha256(canonical_result_bytes(result)).hexdigest()
    assert canonical_payload_digest(raw) == expected
    # And the service re-export still points at the same function.
    from repro.service.app import canonical_payload_digest as service_digest

    assert service_digest is canonical_payload_digest


# ----------------------------------------------------------------------
# /v1/cache/stats dispatch block
# ----------------------------------------------------------------------
def test_cache_stats_reports_the_dispatch_backend(tmp_path):
    from repro.service import SimulationService

    service = SimulationService(cache_dir=str(tmp_path), jobs=3)
    body = service.cache_stats()
    assert body["dispatch"]["backend"].startswith("local-pool:")
    assert body["dispatch"]["jobs"] == 0
    assert "singleflight" in body


def test_cache_stats_reports_fleet_counters(tmp_path, fleet):
    from repro.service import SimulationService

    runner = SweepRunner(cache=None, dispatcher=fleet)
    service = SimulationService(runner=runner)
    agent, thread = _start_agent(fleet)
    _wait_workers(fleet, 1)
    runner.run_many(_grid(machines=(NUMA_16,), n_schemes=2, seed=20))
    body = service.cache_stats()
    assert body["dispatch"]["backend"].startswith("fleet:")
    assert body["dispatch"]["workers_connected"] == 1
    assert body["dispatch"]["results_received"] == 2
    assert body["dispatch"]["poisoned"] is None
    agent.request_drain()
    thread.join(timeout=10)


# ----------------------------------------------------------------------
# End-to-end through the CLI with real worker subprocesses
# ----------------------------------------------------------------------
def test_cli_fleet_sweep_with_subprocess_workers(tmp_path, monkeypatch,
                                                 capsys):
    from repro.analysis.cli import main

    monkeypatch.setenv("REPRO_TLS_CACHE", str(tmp_path / "cache"))
    status = main([
        "sweep", "--dispatch", "fleet", "--workers", "2",
        "--apps", "Euler", "--scale", "0.05", "--machine", "cmp8",
        "--schemes", "SingleT Eager AMM,MultiT&MV Lazy AMM",
    ])
    out = capsys.readouterr().out
    assert status == 0
    assert "fleet coordinator on 127.0.0.1:" in out
    assert out.count("Euler") == 2
