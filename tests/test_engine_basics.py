"""Engine fundamentals: completion, accounting, determinism, guards."""

import pytest

from repro.core.engine import Simulation, simulate
from repro.core.taxonomy import (
    EVALUATED_SCHEMES,
    MULTI_T_MV_EAGER,
    MULTI_T_MV_LAZY,
    MergePolicy,
    SINGLE_T_EAGER,
    Scheme,
    TaskPolicy,
)
from repro.errors import ConfigurationError, SimulationError
from repro.processor.processor import CycleCategory
from repro.tls.task import TaskState
from tests.conftest import WORD_A, WORD_B, compute, make_task, make_workload, read, write


class TestSingleTask:
    def test_compute_only_timing(self, tiny_machine, fast_costs):
        machine = tiny_machine.with_costs(fast_costs)
        workload = make_workload("one", make_task(0, compute(100)))
        result = simulate(machine, SINGLE_T_EAGER, workload)
        # 100 instructions at IPC 1, then a commit holding only the token.
        assert result.total_cycles == pytest.approx(100 + 5)
        assert result.busy_cycles == pytest.approx(100)

    def test_eager_commit_charges_writebacks(self, tiny_machine, fast_costs):
        machine = tiny_machine.with_costs(fast_costs)
        workload = make_workload("w", make_task(0, write(WORD_A)))
        eager = simulate(machine, MULTI_T_MV_EAGER, workload)
        lazy = simulate(machine, MULTI_T_MV_LAZY, workload)
        # One dirty line: eager holds the token 10 cycles longer; lazy pays
        # the final merge (2/line) instead.
        assert eager.token_hold_cycles == pytest.approx(5 + 10)
        assert lazy.token_hold_cycles == pytest.approx(5)
        assert (eager.total_cycles - lazy.total_cycles) == pytest.approx(8)

    def test_singlet_commit_factor_applies(self, tiny_machine, fast_costs):
        machine = tiny_machine.with_costs(fast_costs)
        workload = make_workload("w", make_task(0, write(WORD_A)))
        result = simulate(machine, SINGLE_T_EAGER, workload)
        expected = 5 + 10 * fast_costs.singlet_commit_factor
        assert result.token_hold_cycles == pytest.approx(expected)

    def test_empty_ops_task_commits(self, tiny_machine):
        workload = make_workload("empty", make_task(0))
        result = simulate(tiny_machine, MULTI_T_MV_EAGER, workload)
        assert result.n_tasks == 1
        assert result.total_cycles > 0


class TestForwarding:
    def test_reader_receives_predecessor_version(self, tiny_machine):
        """T1 reads a word T0 wrote much earlier: version 0 is forwarded."""
        workload = make_workload(
            "fwd",
            make_task(0, write(WORD_A), compute(50)),
            make_task(1, compute(20_000), read(WORD_A)),
        )
        result = simulate(tiny_machine, MULTI_T_MV_EAGER, workload)
        assert result.observed_reads[(1, WORD_A)] == 0
        assert result.violation_events == 0

    def test_successor_version_invisible_to_predecessor(self, tiny_machine):
        """T0 reads a word only T1 writes: T0 must see architectural data."""
        workload = make_workload(
            "inv",
            make_task(0, compute(30_000), read(WORD_A)),
            make_task(1, write(WORD_A), compute(10)),
        )
        result = simulate(tiny_machine, MULTI_T_MV_EAGER, workload)
        assert result.observed_reads[(0, WORD_A)] == -1
        assert result.violation_events == 0
        assert result.memory_image[WORD_A] == 1


class TestAccounting:
    @pytest.mark.parametrize("scheme", EVALUATED_SCHEMES,
                             ids=lambda s: s.name)
    def test_categories_sum_to_total_per_proc(self, quad_machine, scheme):
        workload = make_workload(
            "acct",
            *[make_task(i, compute(500 + 100 * i), write(WORD_A + 16 * i),
                        read(WORD_A + 16 * i))
              for i in range(8)],
        )
        sim = Simulation(quad_machine, scheme, workload)
        result = sim.run()
        for proc in sim.procs:
            assert proc.account.total() == pytest.approx(
                result.total_cycles, rel=1e-9)

    def test_busy_covers_all_instructions(self, quad_machine):
        instr = [700, 900, 1100, 1300]
        workload = make_workload(
            "busy", *[make_task(i, compute(n)) for i, n in enumerate(instr)])
        result = simulate(quad_machine, MULTI_T_MV_EAGER, workload)
        expected = sum(instr) / quad_machine.costs.ipc
        assert result.busy_cycles == pytest.approx(expected)


class TestDeterminism:
    def test_same_input_same_result(self, quad_machine):
        workload = make_workload(
            "det",
            *[make_task(i, compute(1000), write(WORD_A + i), read(WORD_A + i))
              for i in range(6)],
        )
        first = simulate(quad_machine, MULTI_T_MV_LAZY, workload)
        second = simulate(quad_machine, MULTI_T_MV_LAZY, workload)
        assert first.total_cycles == second.total_cycles
        assert first.memory_image == second.memory_image
        assert first.cycles_by_category == second.cycles_by_category


class TestGuards:
    def test_shaded_scheme_rejected(self, tiny_machine):
        shaded = Scheme(TaskPolicy.SINGLE_T, MergePolicy.FMM)
        workload = make_workload("s", make_task(0, compute(10)))
        with pytest.raises(ConfigurationError, match="shaded"):
            simulate(tiny_machine, shaded, workload)

    def test_shaded_scheme_allowed_explicitly(self, tiny_machine):
        shaded = Scheme(TaskPolicy.SINGLE_T, MergePolicy.FMM)
        workload = make_workload("s", make_task(0, write(WORD_A)))
        result = simulate(tiny_machine, shaded, workload,
                          allow_shaded=True)
        assert result.memory_image == workload.sequential_image()

    def test_max_events_guard(self, tiny_machine):
        workload = make_workload(
            "big", *[make_task(i, *([read(WORD_A)] * 10)) for i in range(4)])
        with pytest.raises(SimulationError, match="events"):
            simulate(tiny_machine, MULTI_T_MV_EAGER, workload, max_events=5)

    def test_all_tasks_committed_at_end(self, quad_machine):
        workload = make_workload(
            "c", *[make_task(i, compute(100)) for i in range(10)])
        sim = Simulation(quad_machine, MULTI_T_MV_EAGER, workload)
        sim.run()
        assert all(r.state is TaskState.COMMITTED for r in sim.runs.values())
        assert sim.commit.all_committed


class TestOccupancyStats:
    def test_spec_task_average_bounded(self, quad_machine):
        workload = make_workload(
            "occ", *[make_task(i, compute(2000)) for i in range(12)])
        result = simulate(quad_machine, MULTI_T_MV_EAGER, workload)
        assert 0 < result.avg_spec_tasks_in_system <= 12
        assert result.avg_spec_tasks_per_proc == pytest.approx(
            result.avg_spec_tasks_in_system / 4)

    def test_footprint_stats(self, tiny_machine):
        from repro.core.config import WORD_BYTES

        workload = make_workload(
            "fp",
            make_task(0, write(WORD_A), write(WORD_B)),
            make_task(1, write(WORD_A)),
        )
        result = simulate(tiny_machine, MULTI_T_MV_EAGER, workload)
        assert result.avg_written_footprint_bytes == pytest.approx(
            1.5 * WORD_BYTES)
