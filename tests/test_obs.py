"""Observability layer: metrics hook, trace export, report claims.

The load-bearing contract: observation is free and invisible. A run with
a metrics hook and/or a trace recorder attached produces bit-identical
results to a plain run (asserted against ``canonical_result_bytes``),
and the exports are deterministic — same records in, same bytes out.
"""

import json

import pytest

from repro.analysis.serialization import canonical_result_bytes
from repro.core.config import NUMA_16
from repro.core.taxonomy import (
    MULTI_T_MV_FMM,
    MULTI_T_MV_LAZY,
    SINGLE_T_EAGER,
)
from repro.core.trace import TraceEvent, TraceRecord
from repro.obs import (
    Histogram,
    MetricsSnapshot,
    aggregate_by_scheme,
    export_chrome_trace,
    export_jsonl,
    load_jsonl,
)
from repro.obs.trace_export import record_from_dict, record_to_dict
from repro.runner import ResultCache, SimJob, SweepRunner, WorkloadSpec

SCALE = 0.15


def _job(scheme=MULTI_T_MV_LAZY, **kwargs):
    return SimJob(
        machine=NUMA_16,
        workload=WorkloadSpec("Euler", seed=0, scale=SCALE),
        scheme=scheme,
        **kwargs,
    )


@pytest.fixture(scope="module")
def runner():
    return SweepRunner(jobs=1, cache=None)


@pytest.fixture(scope="module")
def traced_result(runner):
    return runner.run(_job(traced=True))


# ----------------------------------------------------------------------
# Observation is invisible: bit-identity
# ----------------------------------------------------------------------
def test_instrumented_runs_are_bit_identical_to_plain(runner, traced_result):
    plain = canonical_result_bytes(runner.run(_job()))
    metric = runner.run(_job(collect_metrics=True))
    both = runner.run(_job(collect_metrics=True, traced=True))
    assert canonical_result_bytes(metric) == plain
    assert canonical_result_bytes(traced_result) == plain
    assert canonical_result_bytes(both) == plain


def test_observation_flags_are_part_of_the_cache_identity():
    base = _job().cache_key()
    assert _job(collect_metrics=True).cache_key() != base
    assert _job(traced=True).cache_key() != base
    assert (_job(collect_metrics=True).cache_key()
            != _job(traced=True).cache_key())


def test_traced_jobs_never_touch_the_cache(tmp_path):
    cache = ResultCache(tmp_path)
    runner = SweepRunner(jobs=1, cache=cache)
    result = runner.run(_job(traced=True))
    assert result.trace is not None and len(result.trace) > 0
    assert len(cache) == 0  # nothing stored
    # And a second run re-traces live instead of replaying.
    again = runner.run(_job(traced=True))
    assert again.trace is not None
    assert cache.stats.hits == 0


def test_metrics_survive_pool_and_cache_replay(tmp_path):
    job = _job(collect_metrics=True)
    sibling = _job(scheme=MULTI_T_MV_FMM, collect_metrics=True)
    serial = SweepRunner(jobs=1, cache=None).run(job)
    pooled = SweepRunner(jobs=2, cache=None).run_many([job, sibling])[0]

    cache = ResultCache(tmp_path)
    SweepRunner(jobs=1, cache=cache).run(job)
    replayed = SweepRunner(jobs=1, cache=ResultCache(tmp_path)).run(job)

    assert serial.metrics is not None
    for other in (pooled, replayed):
        assert other.metrics is not None
        assert other.metrics.to_dict() == serial.metrics.to_dict()


# ----------------------------------------------------------------------
# Metrics content
# ----------------------------------------------------------------------
def test_metric_counters_match_result_statistics(runner):
    result = runner.run(_job(collect_metrics=True))
    counters = result.metrics.counters
    assert counters["squash.events"] == result.violation_events
    assert counters["squash.task_executions"] == result.squashed_executions
    assert (counters.get("overflow.spills", 0)
            == result.traffic.overflow_spills)
    assert (counters["network.memory_fetches"]
            == result.traffic.memory_fetches)
    assert counters["cycles.total"] == result.total_cycles
    assert counters["events.processed"] == result.events_processed
    assert counters["commit.completed"] == result.n_tasks
    assert len(result.metrics.per_task) == len(result.task_timings)


def test_directory_lookups_are_counted(runner):
    result = runner.run(_job(collect_metrics=True))
    assert result.metrics.counters["directory.writes"] > 0
    assert result.metrics.counters["directory.reads"] > 0


def test_snapshot_round_trips_through_dict(runner):
    snap = runner.run(_job(collect_metrics=True)).metrics
    clone = MetricsSnapshot.from_dict(
        json.loads(json.dumps(snap.to_dict())))
    assert clone.to_dict() == snap.to_dict()


def test_aggregate_by_scheme_sums_counters(runner):
    a = runner.run(_job(collect_metrics=True))
    b = runner.run(SimJob(
        machine=NUMA_16,
        workload=WorkloadSpec("Apsi", seed=0, scale=SCALE),
        scheme=MULTI_T_MV_LAZY, collect_metrics=True))
    merged = aggregate_by_scheme([a, b])
    assert list(merged) == [MULTI_T_MV_LAZY.name]
    agg = merged[MULTI_T_MV_LAZY.name]
    assert agg.runs == 2
    assert agg.counters["cycles.total"] == pytest.approx(
        a.metrics.counters["cycles.total"]
        + b.metrics.counters["cycles.total"])
    assert len(agg.per_task) == len(a.metrics.per_task) + len(
        b.metrics.per_task)
    # Results without metrics are skipped, not an error.
    assert aggregate_by_scheme([runner.run(_job())]) == {}


def test_histogram_buckets_and_merge():
    hist = Histogram(bounds=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0):
        hist.observe(v)
    assert hist.counts == [1, 1, 1]
    assert hist.mean() == pytest.approx(55.5 / 3)
    other = Histogram(bounds=(1.0, 10.0))
    other.observe(2.0)
    hist.merge(other)
    assert hist.count == 4 and hist.counts == [1, 2, 1]
    with pytest.raises(ValueError):
        hist.merge(Histogram(bounds=(2.0,)))


# ----------------------------------------------------------------------
# Trace export
# ----------------------------------------------------------------------
def test_jsonl_round_trip_is_exact_and_deterministic(traced_result,
                                                     tmp_path):
    records = list(traced_result.trace)
    assert records, "traced run produced no records"
    stats = export_jsonl(records, tmp_path / "a.jsonl")
    assert stats.records_written == len(records)
    assert not stats.truncated
    assert load_jsonl(tmp_path / "a.jsonl") == records
    export_jsonl(records, tmp_path / "b.jsonl")
    assert ((tmp_path / "a.jsonl").read_bytes()
            == (tmp_path / "b.jsonl").read_bytes())


def test_jsonl_sampling_keeps_every_nth(traced_result, tmp_path):
    records = list(traced_result.trace)
    export_jsonl(records, tmp_path / "s.jsonl", sample_every=3)
    sampled = load_jsonl(tmp_path / "s.jsonl")
    assert sampled == records[::3]
    with pytest.raises(ValueError):
        export_jsonl(records, tmp_path / "x.jsonl", sample_every=0)


def test_jsonl_respects_the_byte_cap(traced_result, tmp_path):
    records = list(traced_result.trace)
    cap = 1_000
    stats = export_jsonl(records, tmp_path / "c.jsonl", max_bytes=cap)
    assert stats.truncated
    assert stats.bytes_written <= cap
    assert (tmp_path / "c.jsonl").stat().st_size <= cap
    assert stats.records_dropped > 0
    # Every surviving line is still complete, parseable JSON.
    kept = load_jsonl(tmp_path / "c.jsonl")
    assert kept == records[:stats.records_written]


def test_record_dict_round_trip_covers_optional_fields():
    full = TraceRecord(TraceEvent.VIOLATION, 12.5, 3, proc_id=1, detail=7)
    bare = TraceRecord(TraceEvent.TASK_START, 0.0, 0)
    for record in (full, bare):
        assert record_from_dict(record_to_dict(record)) == record


def test_chrome_trace_pairs_balance_and_cap_holds(traced_result, tmp_path):
    records = list(traced_result.trace)
    path = tmp_path / "t.trace.json"
    stats = export_chrome_trace(records, path, sample_instants_every=2)
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert stats.records_written == len(events)
    # Duration events balance per (tid, name): every B has its E.
    opens = {}
    for ev in events:
        key = (ev["tid"], ev["name"])
        if ev["ph"] == "B":
            opens[key] = opens.get(key, 0) + 1
        elif ev["ph"] == "E":
            assert opens.get(key, 0) > 0, f"E without B: {key}"
            opens[key] -= 1
    assert all(v == 0 for v in opens.values())

    capped = export_chrome_trace(records, tmp_path / "capped.json",
                                 max_bytes=2_000)
    assert capped.truncated
    assert (tmp_path / "capped.json").stat().st_size <= 2_000
    json.loads((tmp_path / "capped.json").read_text())  # still parseable


def test_engine_emits_overflow_and_undolog_trace_events(runner):
    # FMM on a scaled app exercises the undo-log path.
    fmm = runner.run(_job(scheme=MULTI_T_MV_FMM, traced=True))
    assert fmm.trace.count(TraceEvent.UNDOLOG_APPEND) > 0
    # P3m under an AMM scheme overflows the small L2 sets.
    amm = runner.run(SimJob(
        machine=NUMA_16,
        workload=WorkloadSpec("P3m", seed=0, scale=0.25),
        scheme=MULTI_T_MV_LAZY, traced=True))
    spills = amm.trace.count(TraceEvent.OVERFLOW_SPILL)
    assert spills == amm.traffic.overflow_spills > 0


# ----------------------------------------------------------------------
# Claim badges (synthetic figure data; the real grid runs in CI)
# ----------------------------------------------------------------------
def _bars(machine_name, schemes, cells, title="t"):
    from repro.analysis.experiments import SchemeBarsResult

    averages = {
        s.name: sum(per[s.name][0] for per in cells.values()) / len(cells)
        for s in schemes
    }
    return SchemeBarsResult(machine_name=machine_name, schemes=schemes,
                            cells=cells, averages=averages, title=title)


def test_evaluate_claims_on_synthetic_paper_shaped_data():
    from repro.analysis.experiments import Figure10Result
    from repro.core.taxonomy import (
        MULTI_T_MV_EAGER,
        MULTI_T_MV_FMM_SW,
        MULTI_T_SV_EAGER,
    )
    from repro.obs.report import evaluate_claims
    from repro.workloads.apps import APPLICATION_ORDER, APPLICATIONS

    fig9_schemes = (SINGLE_T_EAGER, MULTI_T_SV_EAGER, MULTI_T_MV_EAGER,
                    MULTI_T_MV_LAZY)
    fig9_cells = {}
    for app in APPLICATION_ORDER:
        priv = APPLICATIONS[app].paper.priv_pattern == "High"
        fig9_cells[app] = {
            SINGLE_T_EAGER.name: (1.0, 0.5, 1.0),
            # SV degrades toward SingleT only on high-priv apps.
            MULTI_T_SV_EAGER.name: (0.95 if priv else 0.66, 0.5, 1.0),
            MULTI_T_MV_EAGER.name: (0.65, 0.6, 1.5),
            MULTI_T_MV_LAZY.name: (0.55, 0.7, 1.8),
        }
    fig9 = _bars("NUMA", fig9_schemes, fig9_cells)

    fig10_schemes = (MULTI_T_MV_EAGER, MULTI_T_MV_LAZY, MULTI_T_MV_FMM,
                     MULTI_T_MV_FMM_SW)
    fig10_cells = {}
    for app in APPLICATION_ORDER:
        lazy = 0.80
        fmm = {"P3m": 0.60, "Euler": 0.95}.get(app, 0.81)
        fig10_cells[app] = {
            MULTI_T_MV_EAGER.name: (1.0, 0.6, 1.5),
            MULTI_T_MV_LAZY.name: (lazy, 0.7, 1.8),
            MULTI_T_MV_FMM.name: (fmm, 0.7, 1.8),
            MULTI_T_MV_FMM_SW.name: (fmm * 1.06, 0.7, 1.7),
        }
    fig10 = Figure10Result(
        bars=_bars("NUMA", fig10_schemes, fig10_cells),
        lazy_l2={"P3m": (0.7, 0.6, 1.6)},
    )

    badges = evaluate_claims(fig9, fig10, fig9)
    assert [b.passed for b in badges] == [True, True, True, True]
    assert len({b.key for b in badges}) == 4
