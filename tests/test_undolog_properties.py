"""Property-based tests for the FMM undo log (MHB).

Random write/commit/squash interleavings (seeded stdlib ``random``, so
every failure reproduces) driven against a real :class:`MainMemory` +
per-processor :class:`UndoLog` pair, checked against an independently
computed reference:

* replaying every speculative task's entries in strict reverse task
  order restores memory to exactly the image the surviving (committed)
  prefix would have produced alone — full rollback recovers the exact
  pre-speculation contents;
* commit frees exactly the committing task's entries and nothing else —
  entries are never freed early and never leak.
"""

import random

import pytest

from repro.memsys.cache import ARCH_TASK_ID
from repro.memsys.mainmem import MainMemory
from repro.memsys.undolog import LogEntry, UndoLog

N_TRIALS = 40
N_PROCS = 2


def _random_schedule(rng: random.Random):
    """Tasks (in program order) with random word-write sequences.

    Words are drawn from a small pool so tasks overlap heavily — the
    interesting MHB cases are chains of tasks overwriting each other.
    """
    n_tasks = rng.randint(2, 8)
    words = [0x100 + 4 * i for i in range(rng.randint(2, 10))]
    return [
        (task, [rng.choice(words) for _ in range(rng.randint(0, 6))])
        for task in range(n_tasks)
    ]


def _run_speculation(schedule, logs):
    """Apply every task's writes through memory, logging pre-versions."""
    memory = MainMemory(mtid_enabled=True)
    for task, writes in schedule:
        log = logs[task % N_PROCS]
        for word in writes:
            resident = memory.producer_of(word)
            if resident < task and log.needs_entry(task, word):
                log.append(LogEntry(
                    line_addr=word, producer_task=resident,
                    overwriting_task=task, words=((word, resident),),
                ))
            memory.writeback_words({word: task})
    return memory


def _expected_image(schedule, surviving):
    """Last-writer image of the surviving tasks alone (the reference)."""
    image = {}
    for task, writes in schedule:
        if task in surviving:
            for word in writes:
                image[word] = task
    return image


def _rollback(memory, logs, squashed):
    """Replay the distributed MHB in strict reverse task order."""
    for task in sorted(squashed, reverse=True):
        for log in logs:
            for entry in log.pop_entries_of(task):
                memory.restore_words(entry.words_dict())


@pytest.mark.parametrize("seed", range(N_TRIALS))
def test_full_rollback_restores_pre_speculation_memory(seed):
    rng = random.Random(seed)
    schedule = _random_schedule(rng)
    logs = [UndoLog(p) for p in range(N_PROCS)]
    memory = _run_speculation(schedule, logs)

    _rollback(memory, logs, squashed={task for task, _ in schedule})
    assert memory.image() == {}, (
        "rolling back every task must restore the architectural image"
    )
    assert all(len(log) == 0 for log in logs)


@pytest.mark.parametrize("seed", range(N_TRIALS))
def test_partial_rollback_keeps_exactly_the_committed_prefix(seed):
    rng = random.Random(seed)
    schedule = _random_schedule(rng)
    logs = [UndoLog(p) for p in range(N_PROCS)]
    memory = _run_speculation(schedule, logs)

    # Commit a random prefix (in task order, as the token enforces),
    # then squash everything after it.
    n_tasks = len(schedule)
    n_committed = rng.randint(0, n_tasks)
    for task in range(n_committed):
        logs[task % N_PROCS].free_task(task)
    _rollback(memory, logs, squashed=set(range(n_committed, n_tasks)))

    assert memory.image() == _expected_image(schedule, range(n_committed))
    assert all(len(log) == 0 for log in logs)


@pytest.mark.parametrize("seed", range(N_TRIALS))
def test_commit_frees_exactly_the_committing_tasks_entries(seed):
    rng = random.Random(seed)
    schedule = _random_schedule(rng)
    logs = [UndoLog(p) for p in range(N_PROCS)]
    _run_speculation(schedule, logs)

    for task, _writes in schedule:
        log = logs[task % N_PROCS]
        before = log.entries()
        mine = [e for e in before if e.overwriting_task == task]
        others = [e for e in before if e.overwriting_task != task]
        freed = log.free_task(task)
        assert freed == len(mine)
        # Entries of still-speculative tasks are untouched, in order.
        assert list(log.entries()) == others
        assert not log.entries_of(task)
        # A freed (task, line) pair would need logging again.
        for entry in mine:
            assert log.needs_entry(task, entry.line_addr)


def test_log_rejects_duplicate_and_misordered_entries():
    from repro.errors import ProtocolError

    log = UndoLog(0)
    entry = LogEntry(line_addr=0x100, producer_task=ARCH_TASK_ID,
                     overwriting_task=2, words=((0x100, ARCH_TASK_ID),))
    log.append(entry)
    with pytest.raises(ProtocolError):
        log.append(entry)  # one entry per (task, line) first write
    with pytest.raises(ProtocolError):
        log.append(LogEntry(line_addr=0x200, producer_task=3,
                            overwriting_task=3, words=((0x200, 3),)))
