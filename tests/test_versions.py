"""Unit and property tests for the version directory and violation rules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys.cache import ARCH_TASK_ID
from repro.tls.versions import VersionDirectory


class TestVersionSelection:
    def test_no_version_is_arch(self):
        directory = VersionDirectory()
        assert directory.version_for_read(100, 5) == ARCH_TASK_ID

    def test_latest_not_exceeding_reader(self):
        directory = VersionDirectory()
        for producer in (2, 5, 9):
            directory.record_write(100, producer)
        assert directory.version_for_read(100, 1) == ARCH_TASK_ID
        assert directory.version_for_read(100, 2) == 2
        assert directory.version_for_read(100, 7) == 5
        assert directory.version_for_read(100, 9) == 9
        assert directory.version_for_read(100, 50) == 9

    def test_own_version_readable(self):
        directory = VersionDirectory()
        directory.record_write(100, 4)
        assert directory.version_for_read(100, 4) == 4

    def test_duplicate_write_single_version(self):
        directory = VersionDirectory()
        directory.record_write(100, 4)
        directory.record_write(100, 4)
        assert directory.producers_of(100) == [4]


class TestViolationDetection:
    def test_out_of_order_raw_detected(self):
        """Reader 5 consumed version 1; write by 3 (1 < 3 < 5) violates."""
        directory = VersionDirectory()
        directory.record_write(100, 1)
        directory.record_read(100, 5, 1)
        assert directory.record_write(100, 3) == [5]
        assert directory.stats.violations == 1

    def test_in_order_read_safe(self):
        """Reader 5 consumed version 3; a later write by 2 is older."""
        directory = VersionDirectory()
        directory.record_write(100, 3)
        directory.record_read(100, 5, 3)
        assert directory.record_write(100, 2) == []

    def test_write_by_successor_never_violates(self):
        directory = VersionDirectory()
        directory.record_read(100, 5, ARCH_TASK_ID)
        assert directory.record_write(100, 7) == []

    def test_arch_read_violated_by_any_predecessor_write(self):
        directory = VersionDirectory()
        directory.record_read(100, 5, ARCH_TASK_ID)
        assert directory.record_write(100, 2) == [5]

    def test_own_read_never_recorded(self):
        directory = VersionDirectory()
        directory.record_write(100, 5)
        directory.record_read(100, 5, 5)
        assert directory.record_write(100, 3) == []

    def test_multiple_violated_readers_sorted(self):
        directory = VersionDirectory()
        for reader in (9, 6, 7):
            directory.record_read(100, reader, ARCH_TASK_ID)
        assert directory.record_write(100, 4) == [6, 7, 9]

    def test_min_version_seen_kept(self):
        """Re-reads keep the *oldest* consumed version for safety."""
        directory = VersionDirectory()
        directory.record_read(100, 5, 2)
        directory.record_read(100, 5, 4)
        # Write by 3: reader saw version 2 first, so it is violated.
        assert directory.record_write(100, 3) == [5]

    def test_different_word_no_violation(self):
        """Word granularity: writes to other words never squash."""
        directory = VersionDirectory()
        directory.record_read(100, 5, ARCH_TASK_ID)
        assert directory.record_write(101, 2) == []


class TestBookkeeping:
    def test_purge_task_removes_versions_and_reads(self):
        directory = VersionDirectory()
        directory.record_write(100, 3)
        directory.record_read(200, 3, ARCH_TASK_ID)
        directory.purge_task(3, written={100}, read={200})
        assert directory.version_for_read(100, 9) == ARCH_TASK_ID
        # Reader record gone: a predecessor write no longer violates.
        assert directory.record_write(200, 1) == []

    def test_purge_tasks_full_sweep(self):
        directory = VersionDirectory()
        directory.record_write(100, 3)
        directory.record_write(100, 4)
        directory.purge_tasks({3})
        assert directory.producers_of(100) == [4]

    def test_forget_reader_targeted(self):
        directory = VersionDirectory()
        directory.record_read(100, 5, ARCH_TASK_ID)
        directory.forget_reader(5, read={100})
        assert directory.record_write(100, 2) == []

    def test_forget_reader_full(self):
        directory = VersionDirectory()
        directory.record_read(100, 5, ARCH_TASK_ID)
        directory.forget_reader(5)
        assert directory.record_write(100, 2) == []

    def test_final_image(self):
        directory = VersionDirectory()
        directory.record_write(100, 3)
        directory.record_write(100, 7)
        directory.record_write(200, 1)
        assert directory.final_image() == {100: 7, 200: 1}

    def test_has_version(self):
        directory = VersionDirectory()
        directory.record_write(100, 3)
        assert directory.has_version(100, 3)
        assert not directory.has_version(100, 2)

    def test_forwarded_read_stat(self):
        directory = VersionDirectory()
        directory.record_write(100, 1)
        directory.record_read(100, 5, 1)
        directory.record_read(200, 5, ARCH_TASK_ID)
        assert directory.stats.forwarded_reads == 1


class TestProperties:
    """Hypothesis property tests on version ordering invariants."""

    @given(writes=st.lists(st.tuples(st.integers(0, 7), st.integers(0, 30)),
                           max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_read_version_is_max_producer_at_most_reader(self, writes):
        directory = VersionDirectory()
        model: dict[int, set[int]] = {}
        for word, producer in writes:
            directory.record_write(word, producer)
            model.setdefault(word, set()).add(producer)
        for word in model:
            for reader in range(0, 32):
                expected = max(
                    (p for p in model[word] if p <= reader),
                    default=ARCH_TASK_ID,
                )
                assert directory.version_for_read(word, reader) == expected

    @given(
        producers=st.sets(st.integers(0, 20), min_size=1, max_size=10),
        reader=st.integers(0, 25),
    )
    @settings(max_examples=60, deadline=None)
    def test_violation_iff_intervening_write(self, producers, reader):
        """A later write violates exactly when it lands between the version
        the reader consumed and the reader itself."""
        directory = VersionDirectory()
        for producer in producers:
            directory.record_write(100, producer)
        seen = directory.version_for_read(100, reader)
        directory.record_read(100, reader, seen)
        for writer in range(0, 26):
            fresh = VersionDirectory()
            fresh.record_read(100, reader, seen)
            violated = fresh.record_write(100, writer)
            should = seen < writer < reader
            assert (reader in violated) == should

    @given(ops=st.lists(
        st.tuples(st.sampled_from(["w", "purge"]), st.integers(0, 6),
                  st.integers(0, 5)),
        max_size=30,
    ))
    @settings(max_examples=60, deadline=None)
    def test_purge_matches_model(self, ops):
        directory = VersionDirectory()
        model: dict[int, set[int]] = {}
        for op, task, word in ops:
            if op == "w":
                directory.record_write(word, task)
                model.setdefault(word, set()).add(task)
            else:
                directory.purge_task(task, written={word}, read=set())
                model.get(word, set()).discard(task)
        for word, tasks in model.items():
            assert directory.producers_of(word) == sorted(tasks)
