"""Tests for result containers and derived metrics."""

import pytest

from repro.core.results import SimulationResult, TaskTiming
from repro.core.taxonomy import MULTI_T_MV_EAGER
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.processor.processor import CycleCategory


def make_result(**overrides) -> SimulationResult:
    base = dict(
        scheme=MULTI_T_MV_EAGER,
        machine_name="m",
        workload_name="w",
        n_procs=4,
        n_tasks=2,
        total_cycles=1000.0,
        cycles_by_category={
            CycleCategory.BUSY: 600.0,
            CycleCategory.MEMORY: 200.0,
            CycleCategory.SV_STALL: 0.0,
            CycleCategory.COMMIT_STALL: 100.0,
            CycleCategory.RECOVERY: 0.0,
            CycleCategory.IDLE: 100.0,
        },
        violation_events=0,
        squashed_executions=0,
        commit_wavefront=[(0, 10.0, 20.0), (1, 20.0, 25.0)],
        token_hold_cycles=15.0,
        task_timings=[
            TaskTiming(0, 0, 0.0, 100.0, 100.0, 110.0, 0),
            TaskTiming(1, 1, 0.0, 200.0, 210.0, 230.0, 1),
        ],
        avg_spec_tasks_in_system=8.0,
        avg_written_footprint_bytes=512.0,
        priv_footprint_fraction=0.5,
    )
    base.update(overrides)
    return SimulationResult(**base)


class TestTaskTiming:
    def test_durations(self):
        timing = TaskTiming(0, 1, 10.0, 40.0, 50.0, 65.0, 0)
        assert timing.execution_cycles == 30.0
        assert timing.commit_cycles == 15.0

    def test_clamped_non_negative(self):
        timing = TaskTiming(0, 1, 10.0, 5.0, 0.0, 0.0, 0)
        assert timing.execution_cycles == 0.0


class TestDerivedMetrics:
    def test_busy_stall_split(self):
        result = make_result()
        assert result.busy_cycles == 600.0
        assert result.stall_cycles == 400.0
        assert result.busy_fraction() == pytest.approx(0.6)

    def test_commit_exec_ratio(self):
        result = make_result()
        # Task 0: 10/100; task 1: 20/200 -> mean 0.1.
        assert result.commit_exec_ratio() == pytest.approx(0.1)

    def test_speedup_and_normalization(self):
        result = make_result()
        assert result.speedup_over(4000.0) == pytest.approx(4.0)
        other = make_result(total_cycles=500.0)
        assert other.normalized_to(result) == pytest.approx(0.5)

    def test_per_proc_occupancy(self):
        assert make_result().avg_spec_tasks_per_proc == pytest.approx(2.0)

    def test_summary_mentions_key_fields(self):
        text = make_result().summary()
        assert "MultiT&MV Eager AMM" in text
        assert "w" in text


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigurationError, SimulationError, WorkloadError,
                    ProtocolError):
            assert issubclass(exc, ReproError)

    def test_protocol_is_simulation_error(self):
        assert issubclass(ProtocolError, SimulationError)
