"""Tests for the extension features beyond the paper's base protocol.

Covers: multi-invocation and rechunked workloads, memory-bank contention,
the ORB eager-commit variant (Section 4.1 footnote), High-Level Access
Patterns (the [16] support the paper's base protocol excludes), the
whole-application speedup estimate (Section 4.2), and the seed-sweep
statistics utilities.
"""

from dataclasses import replace

import pytest

from repro.analysis.application import (
    application_speedup,
    overall_speedup,
)
from repro.analysis.stats import (
    SampleStats,
    metric_over_seeds,
    reduction_over_seeds,
    seed_sweep,
)
from repro.core.config import NUMA_16, scaled_machine
from repro.core.engine import Simulation, simulate
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_MV_LAZY,
    SINGLE_T_EAGER,
)
from repro.errors import ConfigurationError, WorkloadError
from repro.workloads.apps import APPLICATIONS, generate_workload
from repro.workloads.base import PRIV_BASE
from tests.conftest import compute, make_task, make_workload, read, write


class TestInvocations:
    def test_invocations_concatenate_tasks(self):
        one = APPLICATIONS["Tree"].generate(scale=0.1)
        three = APPLICATIONS["Tree"].generate(scale=0.1, invocations=3)
        assert three.n_tasks == 3 * one.n_tasks
        # Later invocations repeat the same loop body (same footprint).
        assert (three.written_footprint_lines()
                == pytest.approx(one.written_footprint_lines()))

    def test_multi_invocation_semantics(self, quad_machine):
        workload = APPLICATIONS["Apsi"].generate(scale=0.08, invocations=2)
        result = simulate(quad_machine, MULTI_T_MV_LAZY, workload)
        assert result.memory_image == workload.sequential_image()

    def test_invocations_compose_linearly(self):
        """Two invocations cost ~2x one: no pathological interaction
        between the speculative state of consecutive invocations."""
        one = APPLICATIONS["Bdna"].generate(scale=0.1)
        two = APPLICATIONS["Bdna"].generate(scale=0.1, invocations=2)
        t1 = simulate(NUMA_16, MULTI_T_MV_LAZY, one).total_cycles
        t2 = simulate(NUMA_16, MULTI_T_MV_LAZY, two).total_cycles
        assert 1.7 * t1 < t2 < 2.15 * t1

    def test_invalid_invocations(self):
        with pytest.raises(WorkloadError):
            APPLICATIONS["Tree"].generate(invocations=0)


class TestRechunking:
    def test_chunking_scales_task_shape(self):
        base = APPLICATIONS["Bdna"].generate(scale=0.2)
        chunked = APPLICATIONS["Bdna"].generate(scale=0.2,
                                                iterations_per_task=2.0)
        assert chunked.n_tasks <= base.n_tasks
        assert chunked.mean_instructions() > 1.5 * base.mean_instructions()
        assert (chunked.written_footprint_lines()
                > 1.5 * base.written_footprint_lines())

    def test_chunked_workload_still_correct(self, quad_machine):
        workload = APPLICATIONS["Euler"].generate(scale=0.2,
                                                  iterations_per_task=4.0)
        result = simulate(quad_machine, MULTI_T_MV_EAGER, workload)
        assert result.memory_image == workload.sequential_image()

    def test_invalid_chunking(self):
        with pytest.raises(WorkloadError):
            APPLICATIONS["Tree"].generate(iterations_per_task=0)


class TestContentionModel:
    def contended_workload(self):
        # Every task reads words homed on the same node (line 0 mod 16).
        tasks = []
        for tid in range(8):
            ops = [compute(100)]
            for j in range(10):
                ops.append(read((j * 16 * 16)))  # lines 0, 16, 32, ...: home 0
            ops.append(compute(5_000))
            tasks.append(make_task(tid, *ops))
        return make_workload("hotspot", *tasks)

    def test_bank_queuing_adds_latency(self, quad_machine):
        workload = self.contended_workload()
        free = simulate(quad_machine, MULTI_T_MV_EAGER, workload)
        contended_machine = quad_machine.with_costs(
            replace(quad_machine.costs, memory_bank_service=40))
        contended = simulate(contended_machine, MULTI_T_MV_EAGER, workload)
        assert contended.total_cycles > free.total_cycles

    def test_zero_service_is_noop(self, quad_machine):
        workload = self.contended_workload()
        base = simulate(quad_machine, MULTI_T_MV_EAGER, workload)
        explicit = quad_machine.with_costs(
            replace(quad_machine.costs, memory_bank_service=0))
        again = simulate(explicit, MULTI_T_MV_EAGER, workload)
        assert base.total_cycles == again.total_cycles

    def test_semantics_hold_under_contention(self, quad_machine):
        machine = quad_machine.with_costs(
            replace(quad_machine.costs, memory_bank_service=25))
        workload = generate_workload("Euler", scale=0.1)
        result = simulate(machine, MULTI_T_MV_LAZY, workload)
        assert result.memory_image == workload.sequential_image()


class TestORBCommit:
    def test_orb_cheapens_eager_commit(self, quad_machine):
        workload = generate_workload("Apsi", scale=0.15)
        writeback = simulate(quad_machine, MULTI_T_MV_EAGER, workload)
        orb_machine = quad_machine.with_costs(
            replace(quad_machine.costs, eager_commit_mode="orb"))
        orb = simulate(orb_machine, MULTI_T_MV_EAGER, workload)
        assert orb.token_hold_cycles < writeback.token_hold_cycles
        assert orb.memory_image == workload.sequential_image()

    def test_orb_mode_validated(self):
        from repro.core.config import CostModel

        with pytest.raises(ConfigurationError):
            CostModel(eager_commit_mode="teleport")

    def test_orb_only_affects_eager(self, quad_machine):
        workload = generate_workload("Apsi", scale=0.15)
        orb_machine = quad_machine.with_costs(
            replace(quad_machine.costs, eager_commit_mode="orb"))
        lazy_base = simulate(quad_machine, MULTI_T_MV_LAZY, workload)
        lazy_orb = simulate(orb_machine, MULTI_T_MV_LAZY, workload)
        assert lazy_orb.total_cycles == lazy_base.total_cycles


class TestHighLevelPatterns:
    def test_hlap_speeds_privatization_writes(self, quad_machine):
        workload = generate_workload("Bdna", scale=0.15)
        base = Simulation(quad_machine, MULTI_T_MV_LAZY, workload).run()
        hlap = Simulation(quad_machine, MULTI_T_MV_LAZY, workload,
                          high_level_patterns=True).run()
        assert hlap.total_cycles < base.total_cycles
        assert hlap.memory_image == workload.sequential_image()

    def test_hlap_neutral_without_privatization(self, quad_machine):
        workload = generate_workload("Euler", scale=0.15)
        base = Simulation(quad_machine, MULTI_T_MV_LAZY, workload).run()
        hlap = Simulation(quad_machine, MULTI_T_MV_LAZY, workload,
                          high_level_patterns=True).run()
        assert hlap.total_cycles == pytest.approx(base.total_cycles,
                                                  rel=0.02)

    def test_hlap_preserves_violation_detection(self, tiny_machine):
        """HLAP skips the stale-data fetch, not the dependence tracking:
        a genuine cross-task RAW through the priv region still squashes."""
        x = PRIV_BASE
        workload = make_workload(
            "priv-dep",
            make_task(0, compute(40_000), write(x), compute(100)),
            make_task(1, compute(200), read(x), compute(20_000)),
        )
        result = Simulation(tiny_machine, MULTI_T_MV_EAGER, workload,
                            high_level_patterns=True).run()
        assert result.violation_events >= 1
        assert result.observed_reads[(1, x)] == 0


class TestApplicationSpeedup:
    def test_amdahl_bounds(self):
        assert overall_speedup(8.0, 1.0) == pytest.approx(8.0)
        assert overall_speedup(8.0, 0.0) == pytest.approx(1.0)
        # 50% at 8x, rest sequential: 1/(0.5/8+0.5) = 1.78.
        assert overall_speedup(8.0, 0.5) == pytest.approx(1.0 / (0.5 / 8 + 0.5))

    def test_rest_parallel_upper_bound(self):
        assert (overall_speedup(8.0, 0.5, rest_speedup=16.0)
                > overall_speedup(8.0, 0.5, rest_speedup=1.0))

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            overall_speedup(8.0, 1.5)
        with pytest.raises(ConfigurationError):
            overall_speedup(-1.0, 0.5)

    def test_measured_application_speedup(self):
        machine = scaled_machine(NUMA_16, 4)
        summary = application_speedup(machine, MULTI_T_MV_LAZY, "Tree",
                                      scale=0.1)
        assert summary.loop_speedup > 1.0
        assert (1.0 <= summary.overall_rest_sequential
                <= summary.loop_speedup)
        assert (summary.overall_rest_sequential
                <= summary.overall_rest_parallel)
        # Tree's loops are 92.2% of Tseq, so the overall estimate stays
        # close to the loop speedup.
        assert summary.loop_fraction == pytest.approx(0.922)


class TestSeedStats:
    def test_sample_stats(self):
        stats = SampleStats((1.0, 2.0, 3.0))
        assert stats.mean == 2.0
        assert stats.std == pytest.approx(1.0)
        assert stats.minimum == 1.0 and stats.maximum == 3.0
        assert stats.all_positive()

    def test_single_value_std_zero(self):
        assert SampleStats((5.0,)).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            SampleStats(())

    def test_seed_sweep_distinct_workloads(self):
        machine = scaled_machine(NUMA_16, 4)
        results = seed_sweep(machine, MULTI_T_MV_EAGER, "Track",
                             seeds=(0, 1, 2), scale=0.08)
        totals = {r.total_cycles for r in results}
        assert len(totals) == 3  # different streams, different times

    def test_headline_direction_robust_across_seeds(self):
        """MultiT&MV beats SingleT Eager on Tree for every seed."""
        machine = scaled_machine(NUMA_16, 8)
        stats = reduction_over_seeds(
            machine, MULTI_T_MV_EAGER, SINGLE_T_EAGER, "Tree",
            seeds=(0, 1, 2), scale=0.15)
        assert stats.all_positive()
        assert stats.mean > 0.1

    def test_metric_over_seeds(self):
        machine = scaled_machine(NUMA_16, 4)
        results = seed_sweep(machine, MULTI_T_MV_EAGER, "Tree",
                             seeds=(0, 1), scale=0.08)
        stats = metric_over_seeds(results, lambda r: r.busy_fraction())
        assert 0 < stats.mean < 1
