"""Unit tests for workload base types, patterns, and application profiles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import WORDS_PER_LINE
from repro.errors import WorkloadError
from repro.tls.task import OP_COMPUTE, OP_READ, OP_WRITE
from repro.workloads.apps import (
    APPLICATION_ORDER,
    APPLICATIONS,
    generate_workload,
)
from repro.workloads.base import (
    DEP_BASE,
    OUTPUT_BASE,
    PRIV_BASE,
    Workload,
    region_of,
)
from repro.workloads.patterns import (
    ALIAS_STRIDE_LINES,
    OpListBuilder,
    aliased_shared_word,
    dep_word,
    output_word,
    priv_word,
)
from tests.conftest import compute, make_task, make_workload, read, write


class TestWorkloadValidation:
    def test_empty_rejected(self):
        with pytest.raises(WorkloadError, match="no tasks"):
            Workload(name="empty", tasks=())

    def test_dense_ordered_ids_enforced(self):
        with pytest.raises(WorkloadError, match="dense and ordered"):
            make_workload("gap", make_task(0, compute(1)),
                          make_task(2, compute(1)))

    def test_priv_predicate(self):
        workload = make_workload("w", make_task(0, compute(1)))
        assert workload.is_priv(PRIV_BASE)
        assert not workload.is_priv(PRIV_BASE - 1)
        assert not workload.is_priv(OUTPUT_BASE)

    def test_region_of(self):
        assert region_of(0) == "shared-ro"
        assert region_of(PRIV_BASE) == "priv"
        assert region_of(OUTPUT_BASE) == "output"
        assert region_of(DEP_BASE) == "dep"


class TestSequentialSemantics:
    def test_sequential_image_last_writer_wins(self):
        workload = make_workload(
            "w",
            make_task(0, write(5), write(9)),
            make_task(1, write(5)),
        )
        assert workload.sequential_image() == {5: 1, 9: 0}

    def test_sequential_reads_program_order(self):
        workload = make_workload(
            "w",
            make_task(0, read(5), write(5)),       # reads ARCH, then writes
            make_task(1, read(5), write(5), read(5)),
        )
        expected = workload.sequential_reads()
        assert expected[(0, 5)] == -1
        assert expected[(1, 5)] == 0   # first read sees task 0's version
        # Only the first read per (task, word) is recorded.
        assert len([k for k in expected if k[0] == 1]) == 1

    def test_read_your_writes_validator(self):
        bad = make_workload(
            "bad", make_task(0, read(PRIV_BASE), write(PRIV_BASE)))
        with pytest.raises(WorkloadError, match="before writing"):
            bad.validate_read_your_writes()
        good = make_workload(
            "good", make_task(0, write(PRIV_BASE), read(PRIV_BASE)))
        good.validate_read_your_writes()


class TestWorkloadStats:
    def test_footprints(self):
        workload = make_workload(
            "w",
            make_task(0, write(0), write(1), write(16)),
            make_task(1, write(0)),
        )
        assert workload.written_footprint_words() == 2.0
        assert workload.written_footprint_lines() == 1.5

    def test_priv_write_fraction(self):
        workload = make_workload(
            "w", make_task(0, write(PRIV_BASE), write(0)))
        assert workload.priv_write_fraction() == 0.5

    def test_imbalance_cv_zero_for_equal_tasks(self):
        workload = make_workload(
            "w", make_task(0, compute(100)), make_task(1, compute(100)))
        assert workload.imbalance_cv() == 0.0


class TestOpListBuilder:
    def test_instructions_conserved(self):
        builder = OpListBuilder(instructions=1000)
        builder.add(0.25, OP_WRITE, 5)
        builder.add(0.75, OP_READ, 5)
        ops = builder.build()
        assert sum(v for k, v in ops if k == OP_COMPUTE) == 1000
        kinds = [k for k, _ in ops]
        assert kinds == [OP_COMPUTE, OP_WRITE, OP_COMPUTE, OP_READ,
                         OP_COMPUTE]

    def test_position_ordering(self):
        builder = OpListBuilder(instructions=100)
        builder.add(0.9, OP_READ, 2)
        builder.add(0.1, OP_WRITE, 1)
        ops = [op for op in builder.build() if op[0] != OP_COMPUTE]
        assert ops == [(OP_WRITE, 1), (OP_READ, 2)]

    def test_stable_order_at_same_position(self):
        builder = OpListBuilder(instructions=10)
        builder.add(0.5, OP_WRITE, 1)
        builder.add(0.5, OP_READ, 1)
        ops = [op for op in builder.build() if op[0] != OP_COMPUTE]
        assert ops == [(OP_WRITE, 1), (OP_READ, 1)]

    def test_bad_position_rejected(self):
        builder = OpListBuilder(instructions=10)
        with pytest.raises(WorkloadError):
            builder.add(1.5, OP_READ, 1)

    def test_compute_op_rejected_as_slot(self):
        builder = OpListBuilder(instructions=10)
        with pytest.raises(WorkloadError):
            builder.add(0.5, OP_COMPUTE, 1)

    @given(positions=st.lists(st.floats(0, 1), max_size=20),
           instructions=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_property_instructions_conserved(self, positions, instructions):
        builder = OpListBuilder(instructions=instructions)
        for i, pos in enumerate(positions):
            builder.add(pos, OP_READ, i)
        ops = builder.build()
        assert sum(v for k, v in ops if k == OP_COMPUTE) == instructions
        assert sum(1 for k, _ in ops if k == OP_READ) == len(positions)


class TestPatternAddresses:
    def test_regions_disjoint(self):
        assert priv_word(0, 0) == PRIV_BASE
        assert output_word(0, 0, 4) == OUTPUT_BASE
        assert dep_word(0) == DEP_BASE
        assert priv_word(1000, 15) < OUTPUT_BASE
        assert output_word(500, 3, 40) < DEP_BASE

    def test_output_blocks_disjoint_between_tasks(self):
        stride = 5
        a = {output_word(1, j, stride) for j in range(4)}
        b = {output_word(2, j, stride) for j in range(4)}
        assert not a & b

    def test_aliasing_hits_priv_sets(self):
        """Aliased shared lines map to the same sets as priv lines on any
        cache whose set count divides the stride."""
        import random

        rng = random.Random(7)
        for n_sets in (256, 1024, 2048):
            assert ALIAS_STRIDE_LINES % n_sets == 0
            span = 16
            priv_sets = {(PRIV_BASE // WORDS_PER_LINE + k) & (n_sets - 1)
                         for k in range(span)}
            for _ in range(50):
                word = aliased_shared_word(rng, n_alias_groups=2,
                                           set_span=span)
                line = word // WORDS_PER_LINE
                assert (line & (n_sets - 1)) in priv_sets

    def test_aliasing_spreads_on_big_l2(self):
        """On the 16384-set Lazy.L2, aliased lines escape the priv sets."""
        import random

        rng = random.Random(7)
        n_sets = 16384
        span = 16
        priv_sets = {(PRIV_BASE // WORDS_PER_LINE + k) & (n_sets - 1)
                     for k in range(span)}
        hits = sum(
            ((aliased_shared_word(rng, 2, span) // WORDS_PER_LINE)
             & (n_sets - 1)) in priv_sets
            for _ in range(100)
        )
        assert hits < 100  # at least some lines land elsewhere


class TestApplicationProfiles:
    def test_all_apps_present(self):
        assert set(APPLICATION_ORDER) == set(APPLICATIONS)
        assert len(APPLICATION_ORDER) == 7

    @pytest.mark.parametrize("app", APPLICATION_ORDER)
    def test_generated_workload_valid(self, app):
        workload = generate_workload(app, scale=0.1)
        workload.validate_read_your_writes()
        assert workload.n_tasks >= 8
        assert workload.mean_instructions() > 0

    def test_priv_fractions_match_pattern_classes(self):
        priv = {app: generate_workload(app, scale=0.1).priv_write_fraction()
                for app in APPLICATION_ORDER}
        for app in ("Tree", "Bdna"):
            assert priv[app] > 0.95
        assert 0.4 < priv["Apsi"] < 0.8
        assert priv["P3m"] > 0.7
        for app in ("Track", "Dsmc3d", "Euler"):
            assert priv[app] < 0.05

    def test_scale_controls_task_count(self):
        full = generate_workload("Tree")
        small = generate_workload("Tree", scale=0.25)
        assert small.n_tasks == round(full.n_tasks * 0.25)

    def test_deterministic_per_seed(self):
        a = generate_workload("Track", seed=3, scale=0.1)
        b = generate_workload("Track", seed=3, scale=0.1)
        c = generate_workload("Track", seed=4, scale=0.1)
        assert a.tasks == b.tasks
        assert a.tasks != c.tasks

    def test_unknown_app_rejected(self):
        with pytest.raises(WorkloadError, match="unknown application"):
            generate_workload("Doom")

    def test_bad_scale_rejected(self):
        with pytest.raises(WorkloadError):
            generate_workload("Tree", scale=0)

    def test_dep_pairs_planted_for_euler(self):
        workload = generate_workload("Euler", scale=0.5)
        dep_reads = set()
        dep_writes = set()
        for task in workload.tasks:
            for kind, value in task.ops:
                if value >= DEP_BASE:
                    (dep_reads if kind == OP_READ else dep_writes).add(value)
        assert dep_reads and dep_reads == dep_writes

    def test_p3m_has_giants(self):
        workload = generate_workload("P3m", scale=0.5)
        counts = sorted(t.instructions for t in workload.tasks)
        assert counts[-1] > 8 * counts[len(counts) // 2]

    def test_paper_reference_data_recorded(self):
        for app in APPLICATION_ORDER:
            paper = APPLICATIONS[app].paper
            assert paper.commit_exec_numa_pct > 0
            assert paper.written_footprint_kb > 0

    def test_profile_validation(self):
        from dataclasses import replace

        profile = APPLICATIONS["Tree"]
        with pytest.raises(WorkloadError):
            replace(profile, priv_lines=10, priv_pool_lines=5)
