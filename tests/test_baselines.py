"""Tests for the sequential and coarse-recovery baselines."""

import pytest

from repro.baselines.coarse import simulate_coarse_recovery
from repro.baselines.sequential import simulate_sequential
from repro.core.config import CMP_8, NUMA_16, scaled_machine
from repro.core.engine import simulate
from repro.core.taxonomy import MULTI_T_MV_EAGER
from repro.workloads.apps import generate_workload
from repro.workloads.base import DEP_BASE
from tests.conftest import WORD_A, compute, make_task, make_workload, read, write


class TestSequentialBaseline:
    def test_compute_only(self):
        workload = make_workload("c", make_task(0, compute(1000)))
        result = simulate_sequential(NUMA_16, workload)
        assert result.total_cycles == pytest.approx(500)
        assert result.memory_cycles == 0

    def test_memory_all_local(self):
        """First touch pays local memory; re-access hits the caches."""
        workload = make_workload(
            "m", make_task(0, read(WORD_A), read(WORD_A)))
        result = simulate_sequential(NUMA_16, workload)
        assert result.memory_cycles == pytest.approx(75 + 2)

    def test_cmp_first_touch_then_l3(self):
        workload = make_workload(
            "m", make_task(0, read(WORD_A)), make_task(1, read(WORD_A)))
        result = simulate_sequential(CMP_8, workload)
        # Both reads from the same "processor": second hits L1.
        assert result.memory_cycles == pytest.approx(102 + 2)

    def test_image_is_sequential(self):
        workload = make_workload(
            "w",
            make_task(0, write(WORD_A)),
            make_task(1, write(WORD_A), write(WORD_A + 1)),
        )
        result = simulate_sequential(NUMA_16, workload)
        assert result.memory_image == workload.sequential_image()

    def test_speedup_denominator_sane(self):
        """Parallel execution of a parallel-friendly app beats sequential."""
        workload = generate_workload("Tree", scale=0.15)
        seq = simulate_sequential(NUMA_16, workload)
        par = simulate(NUMA_16, MULTI_T_MV_EAGER, workload)
        speedup = par.speedup_over(seq.total_cycles)
        assert 1.0 < speedup <= NUMA_16.n_procs

    def test_memory_fraction(self):
        workload = make_workload("m", make_task(0, compute(100), read(5)))
        result = simulate_sequential(NUMA_16, workload)
        assert 0 < result.memory_fraction < 1


class TestCoarseRecovery:
    def test_success_pays_copy_out(self, quad_machine):
        workload = make_workload(
            "ok", *[make_task(i, compute(2000), write(WORD_A + 16 * (i + 1)))
                    for i in range(4)])
        result = simulate_coarse_recovery(quad_machine, workload)
        assert result.succeeded
        assert result.copy_out_cycles > 0
        assert result.sequential_fallback_cycles == 0
        assert result.total_cycles == pytest.approx(
            result.attempt_cycles + result.copy_out_cycles)

    def test_violation_falls_back_to_sequential(self, tiny_machine):
        workload = make_workload(
            "bad",
            make_task(0, compute(40_000), write(DEP_BASE)),
            make_task(1, compute(100), read(DEP_BASE), compute(10_000)),
        )
        result = simulate_coarse_recovery(tiny_machine, workload)
        assert result.violated
        assert result.sequential_fallback_cycles > 0
        assert result.total_cycles > result.attempt_cycles

    def test_fine_grained_beats_coarse_under_violations(self, tiny_machine):
        """The taxonomy's point: fine-grained recovery re-runs only the
        offending tasks, coarse recovery re-runs the whole section."""
        workload = make_workload(
            "cmp",
            make_task(0, compute(40_000), write(DEP_BASE)),
            make_task(1, compute(100), read(DEP_BASE), compute(10_000)),
            make_task(2, compute(10_000)),
            make_task(3, compute(10_000)),
        )
        fine = simulate(tiny_machine, MULTI_T_MV_EAGER, workload)
        coarse = simulate_coarse_recovery(tiny_machine, workload)
        assert fine.total_cycles < coarse.total_cycles
