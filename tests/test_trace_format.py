"""Property tests for the binary ``.tlstrace`` format.

Three contracts, each held over hypothesis-generated inputs:

* **Round-trip exactness** — encode/decode reproduces the workload's op
  streams, task ordering, and header fields bit for bit, no matter how
  the encoder coalesced records.
* **Robust rejection** — truncations, bit flips, and structural edits
  raise :class:`~repro.errors.TraceFormatError` (never a bare struct /
  zlib / JSON error, never a silently wrong workload), and the error
  carries the failing byte offset.
* **Content-addressed identity** — the digest is a function of logical
  content only: invariant under re-encode and metadata-free framing
  changes, different for any content change.
"""

from __future__ import annotations

import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceFormatError
from repro.tls.task import OP_COMPUTE, OP_READ, OP_WRITE, TaskSpec
from repro.workloads.base import Workload
from repro.workloads.traceio import (
    FOOTER_MAGIC,
    MAGIC,
    MAX_RECORD_SPAN,
    decode_trace,
    encode_trace,
    peek_trace,
    read_trace,
    trace_digest,
    write_trace,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_op = st.one_of(
    st.tuples(st.just(OP_COMPUTE), st.integers(0, 1 << 40)),
    st.tuples(st.just(OP_READ), st.integers(0, 1 << 34)),
    st.tuples(st.just(OP_WRITE), st.integers(0, 1 << 34)),
)

# Ascending runs exercise the encoder's coalescing path, which random
# addresses almost never hit.
_run = st.tuples(
    st.sampled_from([OP_READ, OP_WRITE]),
    st.integers(0, 1 << 30),
    st.integers(1, 40),
).map(lambda t: [(t[0], t[1] + i) for i in range(t[2])])

_ops = st.lists(
    st.one_of(_op.map(lambda o: [o]), _run), min_size=0, max_size=30,
).map(lambda chunks: tuple(op for chunk in chunks for op in chunk))


@st.composite
def workloads(draw) -> Workload:
    n_tasks = draw(st.integers(1, 6))
    tasks = tuple(
        TaskSpec(task_id=tid, ops=draw(_ops)) for tid in range(n_tasks)
    )
    return Workload(
        name=draw(st.text(min_size=1, max_size=12)),
        tasks=tasks,
        priv_predicate_base=draw(st.integers(0, 1 << 30)),
        priv_predicate_limit=draw(st.integers(0, 1 << 30)),
        description=draw(st.text(max_size=30)),
    )


_meta = st.dictionaries(
    st.text(min_size=1, max_size=8), st.text(max_size=12), max_size=3,
)


def _small_workload() -> Workload:
    tasks = (
        TaskSpec(task_id=0, ops=((OP_COMPUTE, 500), (OP_READ, 0x10),
                                 (OP_READ, 0x11), (OP_WRITE, 0x200))),
        TaskSpec(task_id=1, ops=((OP_READ, 0x200), (OP_COMPUTE, 300),
                                 (OP_WRITE, 0x201))),
    )
    return Workload(name="tiny", tasks=tasks, description="fixture")


# ----------------------------------------------------------------------
# Round-trip exactness
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(workloads(), _meta)
def test_roundtrip_is_exact(workload, meta):
    decoded = decode_trace(encode_trace(workload, meta))
    assert decoded.tasks == workload.tasks
    assert tuple(t.task_id for t in decoded.tasks) == tuple(
        range(workload.n_tasks))
    header = decoded.header
    assert header.name == workload.name
    assert header.description == workload.description
    assert header.priv_base == workload.priv_predicate_base
    assert header.priv_limit == workload.priv_predicate_limit
    assert header.n_tasks == workload.n_tasks
    assert header.meta == tuple(sorted(meta.items()))
    assert decoded.to_workload().tasks == workload.tasks


@settings(max_examples=60, deadline=None)
@given(workloads(), _meta)
def test_digest_invariant_under_reencode(workload, meta):
    first = decode_trace(encode_trace(workload, meta))
    # Re-encode the *decoded* trace: coalescing starts from expanded op
    # streams, so the record framing may differ, the digest must not.
    second = decode_trace(
        encode_trace(first.to_workload(), dict(first.header.meta)))
    assert second.digest == first.digest
    assert second.tasks == first.tasks
    assert first.digest == trace_digest(workload, meta)


@settings(max_examples=40, deadline=None)
@given(workloads())
def test_digest_covers_header_and_content(workload):
    base = trace_digest(workload)
    assert trace_digest(workload, {"k": "v"}) != base
    renamed = Workload(
        name=workload.name + "x", tasks=workload.tasks,
        priv_predicate_base=workload.priv_predicate_base,
        priv_predicate_limit=workload.priv_predicate_limit,
        description=workload.description,
    )
    assert trace_digest(renamed) != base
    edited = Workload(
        name=workload.name,
        tasks=workload.tasks[:-1] + (
            TaskSpec(task_id=workload.tasks[-1].task_id,
                     ops=workload.tasks[-1].ops + ((OP_READ, 0x99),)),
        ),
        priv_predicate_base=workload.priv_predicate_base,
        priv_predicate_limit=workload.priv_predicate_limit,
        description=workload.description,
    )
    assert trace_digest(edited) != base


def test_file_roundtrip_and_peek(tmp_path):
    workload = _small_workload()
    path = tmp_path / "tiny.tlstrace"
    info = write_trace(path, workload, meta={"origin": "test"})
    assert info.file_bytes == path.stat().st_size
    decoded = read_trace(path)
    assert decoded.tasks == workload.tasks
    assert decoded.digest == info.digest

    peeked = peek_trace(path)
    assert peeked.header == decoded.header
    assert peeked.digest == decoded.digest
    assert peeked.n_records == decoded.n_records
    assert peeked.n_ops == -1  # header-only read never expands records


def test_coalescing_is_a_compression_detail():
    # An ascending run and its single-op encoding are the same content.
    run = tuple((OP_READ, 0x40 + i) for i in range(10))
    wl = Workload(name="run", tasks=(TaskSpec(task_id=0, ops=run),))
    decoded = decode_trace(encode_trace(wl))
    assert decoded.n_records == 1
    assert decoded.tasks[0].ops == run
    assert decoded.digest == trace_digest(wl)


# ----------------------------------------------------------------------
# Robust rejection: every mutation raises TraceFormatError
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(workloads(), st.data())
def test_truncation_always_raises_with_offset(workload, data):
    blob = encode_trace(workload)
    cut = data.draw(st.integers(0, len(blob) - 1))
    with pytest.raises(TraceFormatError) as excinfo:
        decode_trace(blob[:cut])
    assert "offset" in str(excinfo.value)
    assert excinfo.value.offset is not None
    assert 0 <= excinfo.value.offset <= cut


@settings(max_examples=120, deadline=None)
@given(workloads(), st.data())
def test_any_byte_flip_never_changes_content_silently(workload, data):
    reference = decode_trace(encode_trace(workload))
    blob = bytearray(encode_trace(workload))
    index = data.draw(st.integers(0, len(blob) - 1))
    flip = data.draw(st.integers(1, 255))
    blob[index] ^= flip
    # Either the flip is rejected (structure no longer parses, or the
    # digest check fires), or it hit bytes with no logical meaning —
    # deflate padding bits — and decoding yields the *identical*
    # content. What can never happen is silently accepting different
    # content.
    try:
        decoded = decode_trace(bytes(blob))
    except TraceFormatError:
        return
    assert decoded.digest == reference.digest
    assert decoded.tasks == reference.tasks
    assert decoded.header == reference.header


def test_bad_magic_version_flags_and_trailing_bytes():
    blob = encode_trace(_small_workload())
    with pytest.raises(TraceFormatError, match="magic"):
        decode_trace(b"NOTTRACE" + blob[8:])
    with pytest.raises(TraceFormatError, match="version"):
        decode_trace(blob[:8] + struct.pack("<H", 99) + blob[10:])
    with pytest.raises(TraceFormatError, match="flags"):
        decode_trace(blob[:10] + struct.pack("<H", 1) + blob[12:])
    with pytest.raises(TraceFormatError, match="trailing"):
        decode_trace(blob + b"\x00")
    assert decode_trace(blob).header.name == "tiny"  # control


def test_digest_mismatch_is_reported():
    blob = bytearray(encode_trace(_small_workload()))
    blob[-1] ^= 0xFF  # last digest byte
    with pytest.raises(TraceFormatError, match="digest mismatch"):
        decode_trace(bytes(blob))


def test_rejects_oversized_and_malformed_records():
    def frame_blob(records: bytes, count: int) -> bytes:
        header = (b'{"meta":{},"n_tasks":1,"name":"x","priv_base":0,'
                  b'"priv_limit":0,"description":""}')
        payload = zlib.compress(records)
        body = (struct.pack("<8sHHI", MAGIC, 1, 0, len(header)) + header
                + struct.pack("<III", 0, count, len(payload)) + payload
                + FOOTER_MAGIC + b"\x00" * 32)
        return body

    too_wide = struct.pack("<BQI", OP_READ, 0, MAX_RECORD_SPAN + 1)
    with pytest.raises(TraceFormatError, match="spans"):
        decode_trace(frame_blob(too_wide, 1))
    zero_span = struct.pack("<BQI", OP_WRITE, 0, 0)
    with pytest.raises(TraceFormatError, match="zero words"):
        decode_trace(frame_blob(zero_span, 1))
    sized_compute = struct.pack("<BQI", OP_COMPUTE, 10, 5)
    with pytest.raises(TraceFormatError, match="compute"):
        decode_trace(frame_blob(sized_compute, 1))
    overflow = struct.pack("<BQI", OP_READ, (1 << 64) - 2, 8)
    with pytest.raises(TraceFormatError, match="overflows"):
        decode_trace(frame_blob(overflow, 1))
    unknown = struct.pack("<BQI", 7, 0, 1)
    with pytest.raises(TraceFormatError, match="unknown op kind"):
        decode_trace(frame_blob(unknown, 1))
    # Record count disagreeing with the payload length.
    ok_record = struct.pack("<BQI", OP_READ, 4, 1)
    with pytest.raises(TraceFormatError, match="payload"):
        decode_trace(frame_blob(ok_record, 2))


def test_rejects_sparse_or_reordered_task_ids():
    wl = _small_workload()
    blob = bytearray(encode_trace(wl))
    # The first frame header sits right after the preamble + header JSON.
    _, _, _, header_len = struct.unpack_from("<8sHHI", blob, 0)
    frame_at = struct.calcsize("<8sHHI") + header_len
    struct.pack_into("<I", blob, frame_at, 5)  # task id 5 where 0 expected
    with pytest.raises(TraceFormatError, match="dense and ordered"):
        decode_trace(bytes(blob))


def test_unencodable_workloads_are_rejected_at_encode_time():
    # TaskSpec itself rejects unknown op kinds, so the only invalid
    # inputs reaching the encoder are values outside the u64 record
    # field.
    bad_value = Workload(
        name="bad", tasks=(TaskSpec(task_id=0, ops=((OP_COMPUTE, 1 << 70),)),))
    with pytest.raises(TraceFormatError, match="does not fit"):
        encode_trace(bad_value)
