"""Tests for the structured trace recorder and its protocol invariants."""

import pytest

from repro.core.config import NUMA_16, scaled_machine
from repro.core.engine import Simulation
from repro.core.taxonomy import (
    MULTI_T_MV_EAGER,
    MULTI_T_SV_EAGER,
    SINGLE_T_EAGER,
)
from repro.core.trace import TraceEvent, TraceRecord, TraceRecorder
from repro.workloads.apps import generate_workload
from repro.workloads.base import DEP_BASE, PRIV_BASE
from tests.conftest import compute, make_task, make_workload, read, write


def traced_run(machine, scheme, workload, **kwargs):
    trace = TraceRecorder()
    result = Simulation(machine, scheme, workload, trace=trace,
                        **kwargs).run()
    return trace, result


class TestRecorder:
    def test_emit_and_filter(self):
        trace = TraceRecorder()
        trace.emit(TraceEvent.TASK_START, 1.0, task_id=3, proc_id=0)
        trace.emit(TraceEvent.TASK_DONE, 5.0, task_id=3, proc_id=0)
        trace.emit(TraceEvent.TASK_START, 2.0, task_id=4, proc_id=1)
        assert trace.count(TraceEvent.TASK_START) == 2
        assert len(trace.records(task_id=3)) == 2
        assert trace.records(TraceEvent.TASK_DONE, task_id=3)[0].time == 5.0
        assert len(trace) == 3
        assert all(isinstance(r, TraceRecord) for r in trace)

    def test_attempts_counts_restarts(self):
        trace = TraceRecorder()
        for _ in range(3):
            trace.emit(TraceEvent.TASK_START, 0.0, task_id=7)
        assert trace.attempts(7) == 3

    def test_verify_rejects_commit_before_done(self):
        trace = TraceRecorder()
        trace.emit(TraceEvent.COMMIT_BEGIN, 1.0, task_id=0)
        with pytest.raises(AssertionError, match="before finishing"):
            trace.verify_protocol_order()

    def test_verify_rejects_out_of_order_commits(self):
        trace = TraceRecorder()
        for tid in (1, 0):
            trace.emit(TraceEvent.TASK_DONE, 1.0, task_id=tid)
            trace.emit(TraceEvent.COMMIT_BEGIN, 2.0, task_id=tid)
            trace.emit(TraceEvent.COMMIT_DONE, 3.0, task_id=tid)
        with pytest.raises(AssertionError, match="out of task order"):
            trace.verify_protocol_order()


class TestEngineEmission:
    def test_lifecycle_events_for_simple_run(self, quad_machine):
        workload = make_workload(
            "w", *[make_task(i, compute(500)) for i in range(6)])
        trace, _result = traced_run(quad_machine, MULTI_T_MV_EAGER, workload)
        trace.verify_protocol_order()
        assert trace.count(TraceEvent.TASK_START) == 6
        assert trace.count(TraceEvent.TASK_DONE) == 6
        assert trace.commit_order() == list(range(6))
        assert trace.count(TraceEvent.VIOLATION) == 0

    def test_violation_and_reexecution_traced(self, tiny_machine):
        workload = make_workload(
            "dep",
            make_task(0, compute(40_000), write(DEP_BASE), compute(100)),
            make_task(1, compute(200), read(DEP_BASE), compute(20_000)),
        )
        trace, result = traced_run(tiny_machine, MULTI_T_MV_EAGER, workload)
        trace.verify_protocol_order()
        assert trace.count(TraceEvent.VIOLATION) == result.violation_events
        assert trace.attempts(1) == 2  # original + re-execution
        squashed = trace.records(TraceEvent.TASK_SQUASHED)
        assert any(r.task_id == 1 for r in squashed)

    def test_sv_stall_events_paired(self, tiny_machine):
        x = PRIV_BASE
        tasks = [make_task(0, compute(60_000))]
        for tid in (1, 2):
            tasks.append(make_task(tid, compute(500), write(x),
                                   compute(3_000)))
        workload = make_workload("sv", *tasks)
        trace, _result = traced_run(tiny_machine, MULTI_T_SV_EAGER, workload)
        stalls = trace.records(TraceEvent.SV_STALL)
        resumes = trace.records(TraceEvent.SV_RESUME)
        assert len(stalls) == len(resumes) >= 1
        # The stall names its blocker; the resume names the same task.
        assert stalls[0].detail == resumes[0].detail == 1
        assert stalls[0].task_id == 2

    def test_commit_token_never_overlaps(self, quad_machine):
        """Between COMMIT_BEGIN and COMMIT_DONE no other commit begins."""
        workload = generate_workload("Bdna", scale=0.1)
        trace, _result = traced_run(quad_machine, SINGLE_T_EAGER, workload)
        holding: int | None = None
        for record in trace:
            if record.event is TraceEvent.COMMIT_BEGIN:
                assert holding is None
                holding = record.task_id
            elif record.event is TraceEvent.COMMIT_DONE:
                assert holding == record.task_id
                holding = None

    def test_protocol_order_holds_on_squash_heavy_run(self, quad_machine):
        workload = generate_workload("Euler", scale=0.25)
        trace, result = traced_run(quad_machine, MULTI_T_MV_EAGER, workload)
        trace.verify_protocol_order()
        assert (trace.count(TraceEvent.TASK_SQUASHED)
                == result.squashed_executions)
        # Every task eventually committed exactly once.
        assert trace.commit_order() == list(range(workload.n_tasks))

    def test_no_trace_by_default(self, quad_machine):
        workload = make_workload("w", make_task(0, compute(100)))
        sim = Simulation(quad_machine, MULTI_T_MV_EAGER, workload)
        sim.run()
        assert sim.trace is None
